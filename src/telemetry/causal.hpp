// Causal event log: the compact happens-before record behind critical-path
// analysis (docs/observability.md).
//
// The simulator records one CausalEvent per virtual-clock advance — compute
// and elapse intervals, send and receive endpoints (with the per-(sender,
// destination) sequence number that pairs them), and instant markers for
// crashes and adaptation decisions. Events carry the machine identity on
// both ends of a message plus the innermost active collective (op, algo), so
// a path walk can attribute every second of the makespan to a machine, a
// link, or a collective algorithm.
//
// Storage is sharded per world rank: each simulated process appends only to
// its own shard (the same single-writer discipline as Proc's clock), so
// recording needs no cross-rank coordination; the per-shard mutex exists
// solely so a snapshot taken while other ranks still run (the host exporting
// a report mid-world) is race-free. Three modes:
//
//   kRing — the default, always on: a fixed-capacity ring per rank,
//           overwriting the oldest events. Cheap enough to leave enabled;
//           the path walk reports `complete = false` when it hits the
//           overwritten horizon.
//   kFull — opt-in (`HMPI_PROF=1` / WorldOptions::prof): unbounded append,
//           the whole run reconstructible.
//   kOff  — recording disabled entirely.
//
// This header lives in telemetry (below mpsim in the build graph) so the
// critical-path analyzer can consume the log without linking the simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace hmpi::telemetry {

/// One recorded causal event. Times are virtual seconds.
struct CausalEvent {
  enum class Kind : std::uint8_t {
    kCompute,  ///< Proc::compute interval.
    kElapse,   ///< Proc::elapse interval (modeled local time).
    kSend,     ///< Send overhead (plus any link-serialization wait).
    kRecv,     ///< Receive: start = clock at entry, end = matched clock.
    kMark,     ///< Instant marker (crash, adaptation decision); not on paths.
  };

  // Flag bits (sends and marks).
  static constexpr std::uint8_t kDropped = 1u << 0;  ///< Message was dropped.
  static constexpr std::uint8_t kDelayed = 1u << 1;  ///< Fault-plan delay.
  static constexpr std::uint8_t kCrash = 1u << 2;    ///< Mark: process death.
  static constexpr std::uint8_t kAdapt = 1u << 3;    ///< Mark: adaptation.

  Kind kind = Kind::kCompute;
  std::uint8_t flags = 0;
  /// Innermost active collective when the event fired; -1 = none. The values
  /// are coll::CollOp / per-op algorithm integers — telemetry stores them
  /// opaquely and the report writer resolves names.
  std::int16_t coll_op = -1;
  std::int16_t coll_algo = 0;
  std::int32_t rank = -1;       ///< World rank (matches the shard index).
  std::int32_t proc = -1;       ///< Machine hosting `rank`.
  std::int32_t peer = -1;       ///< Send: dst rank. Recv: src rank.
  std::int32_t peer_proc = -1;  ///< Machine on the other end.
  std::uint64_t seq = 0;        ///< Per-(sender, dst) sequence; pairs send/recv.
  std::uint64_t bytes = 0;      ///< Logical message bytes.
  double t0 = 0.0;              ///< Virtual start (clock before the advance).
  double t1 = 0.0;              ///< Virtual end (clock after the advance).
  double arrival = 0.0;         ///< Message arrival time (send and recv).
};

/// How much causal history to keep. kAuto resolves via HMPI_PROF.
enum class ProfMode { kAuto, kOff, kRing, kFull };

/// Resolves kAuto against HMPI_PROF: unset -> kRing (the always-on default);
/// "0"/"off"/"false"/"no" -> kOff; "1"/"on"/"true"/"yes"/"full" -> kFull;
/// "ring" -> kRing. Unrecognised spellings keep the ring default. Explicit
/// (non-kAuto) modes pass through untouched.
ProfMode resolve_prof_mode(ProfMode requested);

/// The per-rank-sharded causal log. Construct with the world size; each rank
/// records only its own events.
class CausalLog {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 256;

  CausalLog(int ranks, ProfMode mode,
            std::size_t ring_capacity = kDefaultRingCapacity);

  bool enabled() const noexcept { return mode_ != ProfMode::kOff; }
  ProfMode mode() const noexcept { return mode_; }
  int ranks() const noexcept { return static_cast<int>(shards_.size()); }

  /// Appends to rank `rank`'s shard (ring: overwrites the oldest event once
  /// full). No-op when the log is off or the rank is out of range.
  void record(int rank, const CausalEvent& event);

  /// Rank `rank`'s events in recording order (ring: oldest surviving first).
  std::vector<CausalEvent> events_of(int rank) const;

  /// Events overwritten by the ring on rank `rank` (0 in full mode).
  std::uint64_t dropped_of(int rank) const;

  /// Total events currently retained across all ranks.
  std::size_t size() const;

 private:
  struct Shard {
    mutable std::mutex mutex;  // appender vs snapshot, never appender/appender
    std::vector<CausalEvent> events;
    std::size_t head = 0;  // ring: index of the oldest event
    std::uint64_t dropped = 0;
  };

  ProfMode mode_;
  std::size_t ring_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hmpi::telemetry
