#include "telemetry/sinks.hpp"

#include <cstdlib>

namespace hmpi::telemetry {

namespace {

std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && v[0] != '\0') ? std::string(v) : fallback;
}

}  // namespace

Sinks Sinks::from_env() { return Sinks{}.with_env_overrides(); }

Sinks Sinks::with_env_overrides() const {
  Sinks out = *this;
  out.metrics_json = env_or("HMPI_METRICS_JSON", metrics_json);
  out.trace_json = env_or("HMPI_TRACE_JSON", trace_json);
  out.critpath_json = env_or("HMPI_CRITPATH_JSON", critpath_json);
  return out;
}

}  // namespace hmpi::telemetry
