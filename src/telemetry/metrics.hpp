// Process-wide metrics registry (docs/observability.md).
//
// Counters, gauges, and fixed-bucket histograms, registered by name and
// shared by every subsystem: the runtime observes recon/group_create
// durations, the mapper search routes its cost accounting here, and the
// simulator counts per-machine compute seconds and fault-plan drops. The
// registry is thread-safe (simulated processes are OS threads) and metric
// references stay valid forever: reset() zeroes values but never destroys a
// metric, so call sites may cache `Counter&` across resets.
//
// Snapshots are plain data (sorted by name) and dump as JSON for tools —
// see docs/observability.md for the catalog and the file format.
#pragma once

#include <atomic>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hmpi::telemetry {

/// Monotonically increasing value (double so it can carry seconds and bytes
/// as naturally as event counts).
class Counter {
 public:
  void add(double delta = 1.0) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `upper_bounds` are the inclusive bucket ceilings
/// in ascending order, with an implicit overflow bucket above the last.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> upper_bounds;  ///< One per finite bucket.
    std::vector<long long> counts;     ///< upper_bounds.size() + 1 (overflow last).
    long long count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0.
    double max = 0.0;

    /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside the
    /// bucket holding the ceil(q * count)-th observation: the bucket's lower
    /// edge is the previous ceiling (the recorded min for the first bucket),
    /// its upper edge the ceiling (the recorded max for the overflow
    /// bucket), and the observation's rank within the bucket sets the
    /// interpolation fraction. Results are clamped to [min, max]; NaN when
    /// the histogram is empty.
    double percentile(double q) const;
  };
  Snapshot snapshot() const;

  void reset();

 private:
  mutable std::mutex mutex_;
  std::vector<double> upper_bounds_;
  std::vector<long long> counts_;
  long long count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Default ceilings for duration histograms: 1us .. 100s, one decade plus a
/// 3x midpoint per step (the spans of interest range from microsecond cache
/// lookups to multi-second benchmark loops).
std::span<const double> default_seconds_buckets();

/// Named metrics, created on first use. See file comment for the contract.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` is honoured on first registration only (empty selects
  /// default_seconds_buckets()); later calls return the existing histogram.
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds = {});

  struct Snapshot {
    std::vector<std::pair<std::string, double>> counters;  ///< Sorted by name.
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

    /// Counter value by exact name; 0 when absent.
    double counter_value(std::string_view name) const;
  };
  Snapshot snapshot() const;

  /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`. Histogram
  /// buckets list `{"le": ceiling, "count": n}` with `"le": null` for the
  /// overflow bucket.
  void write_json(std::ostream& os) const;

  /// Zeroes every metric. References handed out earlier remain valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  // std::map: sorted snapshots for free; unique_ptr: stable addresses.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry every subsystem records into.
MetricsRegistry& metrics();

}  // namespace hmpi::telemetry
