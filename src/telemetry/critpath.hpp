// Critical-path extraction and blame attribution over the causal log
// (docs/observability.md).
//
// The analyzer rebuilds the execution DAG implied by a CausalLog — per-rank
// program order plus send->recv cross edges — and walks backward from the
// globally latest event. At a receive whose message arrived after the
// receiver was ready, the path jumps to the matching send on the sender;
// everywhere else it follows local program order (adjacent events share a
// clock value exactly, since the virtual clock only advances inside recorded
// events). The walk telescopes: when it reaches virtual time zero the path
// length equals the simulator makespan bit-identically.
//
// Every path segment is attributed: compute/elapse seconds to the machine
// that ran them, send-overhead and transfer seconds to the directed
// machine-pair link that carried the message, and — when the segment fired
// inside a collective — to that collective's (op, algo). Ring-mode logs can
// truncate history; the walk then stops at the horizon and reports
// `complete = false` with the unattributed remainder as a gap.
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/causal.hpp"
#include "telemetry/chrome_trace.hpp"

namespace hmpi::telemetry {

class MetricsRegistry;

/// One segment of the critical path, in chronological order.
struct PathSegment {
  enum class Kind {
    kCompute,       ///< Machine time (Proc::compute).
    kElapse,        ///< Machine time (Proc::elapse).
    kSendOverhead,  ///< Sender-side overhead + link-serialization wait.
    kTransfer,      ///< In-flight time: send end -> arrival at the receiver.
    kRecvOverhead,  ///< Receiver-side overhead after the match.
    kGap,           ///< Unattributed time (ring horizon reached).
  };
  Kind kind = Kind::kCompute;
  int rank = -1;       ///< Rank whose timeline carries the segment.
  int proc = -1;       ///< Machine blamed (compute/elapse) or link source.
  int peer_proc = -1;  ///< Link destination (send/transfer segments).
  double t0 = 0.0;
  double t1 = 0.0;
  int coll_op = -1;  ///< Enclosing collective, -1 = none.
  int coll_algo = 0;
};

const char* path_segment_kind_name(PathSegment::Kind kind);

/// The analyzer's result: the path, its totals, and the blame tables.
struct CriticalPathReport {
  bool complete = false;      ///< Path walked all the way to virtual t = 0.
  double makespan_s = 0.0;    ///< max over ranks of the last event's end.
  double path_s = 0.0;        ///< End minus path start (== makespan_s when
                              ///< complete; shorter when truncated).
  double compute_s = 0.0;     ///< Machine-attributed seconds on the path.
  double transfer_s = 0.0;    ///< In-flight seconds on the path.
  double overhead_s = 0.0;    ///< Send/recv overhead seconds on the path.
  double gap_s = 0.0;         ///< Unattributed seconds (incomplete logs).
  int end_rank = -1;          ///< Rank whose final event ends the path.
  std::uint64_t events_dropped = 0;  ///< Ring overwrites across all ranks.

  std::vector<PathSegment> segments;  ///< Chronological.
  std::map<int, double> machine_s;    ///< processor -> on-path seconds.
  std::map<std::pair<int, int>, double> link_s;  ///< (src, dst proc) -> s.
  std::map<std::pair<int, int>, double> coll_s;  ///< (op, algo) -> seconds.
};

/// Walks the log. O(total events) matching + O(path length) walk.
CriticalPathReport analyze_critical_path(const CausalLog& log);

/// Resolves a (coll op, algo) pair to human names for the JSON report; the
/// runtime installs coll::op_name/algo_name, tools fall back to numbers.
using CollNamer =
    std::function<std::pair<std::string, std::string>(int op, int algo)>;

/// Writes the `{"critical_path": {...}}` document (docs/observability.md;
/// validated by tools/telemetry_check, read by tools/hmpiprof).
void write_critpath_json(std::ostream& os, const CriticalPathReport& report,
                         const CollNamer& namer = nullptr);

/// Publishes the report as `crit.*` gauges: totals plus
/// `crit.machine.<p>.seconds`, `crit.link.<src>.<dst>.seconds`, and — via
/// `namer` — `crit.coll.<op>.<algo>.seconds`.
void report_to_metrics(const CriticalPathReport& report,
                       MetricsRegistry& registry,
                       const CollNamer& namer = nullptr);

/// Perfetto flow events (phase 's'/'f' pairs sharing an id) for every
/// matched send->recv edge in the log, on the virtual-time pid. Appended to
/// the dual-clock export so Perfetto draws the message arrows.
std::vector<ChromeEvent> causal_flow_events(const CausalLog& log);

}  // namespace hmpi::telemetry
