// Telemetry output sinks: where the JSON dumps land.
//
// Configured on RuntimeConfig (programmatic) and overridable with
// environment variables so examples, benches, and CI opt in without code
// changes: HMPI_METRICS_JSON / HMPI_TRACE_JSON / HMPI_CRITPATH_JSON name the
// destination files. Empty path = sink disabled.
#pragma once

#include <string>

namespace hmpi::telemetry {

struct Sinks {
  std::string metrics_json;   ///< MetricsRegistry::write_json destination.
  std::string trace_json;     ///< Chrome trace_event JSON destination.
  std::string critpath_json;  ///< CriticalPathReport JSON destination.

  /// Sinks built purely from the environment variables.
  static Sinks from_env();

  /// This config with any set environment variable taking precedence.
  Sinks with_env_overrides() const;

  bool any() const noexcept {
    return !metrics_json.empty() || !trace_json.empty() ||
           !critpath_json.empty();
  }
};

}  // namespace hmpi::telemetry
