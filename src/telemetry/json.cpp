#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hmpi::telemetry {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values (the common case for counters and counts) print exactly.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string_view with a depth guard.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue value;
    if (!parse_value(value, 0)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after the document");
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& message) {
    if (error_.empty()) {
      error_ = "json: offset " + std::to_string(pos_) + ": " + message;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.string);
      case 't':
        if (!literal("true")) return fail("invalid literal");
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return true;
      case 'f':
        if (!literal("false")) return fail("invalid literal");
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return true;
      case 'n':
        if (!literal("null")) return fail("invalid literal");
        out.type = JsonValue::Type::kNull;
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape digit");
          }
          // UTF-8 encode the code point (surrogate pairs are passed through
          // as two 3-byte sequences; good enough for a validator).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return fail("invalid number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    out.type = JsonValue::Type::kNumber;
    out.number = std::strtod(token.c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace hmpi::telemetry
