#include "telemetry/span.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>

#include "support/process_local.hpp"
#include "telemetry/json.hpp"

namespace hmpi::telemetry {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point process_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

double wall_now_us() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   process_epoch())
      .count();
}

struct VirtualClockHook {
  VirtualClockScope::ClockFn fn = nullptr;
  const void* ctx = nullptr;
};

// Process-local, not thread_local: under the event engine many simulated
// processes (fibers) share one host thread, and each needs its own clock
// hook and span nesting stack.
constexpr char kVClockKey = 0;
constexpr char kSpanStackKey = 0;

VirtualClockHook& vclock() {
  return support::process_local<VirtualClockHook>(&kVClockKey);
}

double virt_now_s() {
  const VirtualClockHook& hook = vclock();
  if (hook.fn == nullptr) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return hook.fn(hook.ctx);
}

struct OpenSpan {
  std::uint64_t id = 0;
  int track = 0;
};

std::vector<OpenSpan>& span_stack() {
  return support::process_local<std::vector<OpenSpan>>(&kSpanStackKey);
}

std::uint64_t next_span_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void TraceLog::record(SpanRecord record) {
  std::lock_guard lock(mutex_);
  records_.push_back(std::move(record));
}

std::vector<SpanRecord> TraceLog::records() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard lock(mutex_);
    out = records_;
  }
  std::sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.wall_start_us != b.wall_start_us) return a.wall_start_us < b.wall_start_us;
    return a.id < b.id;
  });
  return out;
}

std::size_t TraceLog::size() const {
  std::lock_guard lock(mutex_);
  return records_.size();
}

void TraceLog::clear() {
  std::lock_guard lock(mutex_);
  records_.clear();
}

TraceLog& spans() {
  static TraceLog log;
  return log;
}

VirtualClockScope::VirtualClockScope(ClockFn fn, const void* ctx) {
  VirtualClockHook& hook = vclock();
  saved_fn_ = hook.fn;
  saved_ctx_ = hook.ctx;
  hook = {fn, ctx};
}

VirtualClockScope::~VirtualClockScope() { vclock() = {saved_fn_, saved_ctx_}; }

Span::Span(std::string_view name) { open(name, 0, /*explicit_track=*/false); }

Span::Span(std::string_view name, int track) {
  open(name, track, /*explicit_track=*/true);
}

void Span::open(std::string_view name, int track, bool explicit_track) {
  record_.id = next_span_id();
  record_.name.assign(name);
  std::vector<OpenSpan>& stack = span_stack();
  if (!stack.empty()) {
    record_.parent_id = stack.back().id;
    // Children stay on their parent's track so the flame nests in one row.
    record_.track = stack.back().track;
  } else {
    record_.track = explicit_track ? track : 0;
  }
  record_.wall_start_us = wall_now_us();
  record_.virt_start_s = virt_now_s();
  stack.push_back({record_.id, record_.track});
}

Span::~Span() {
  record_.wall_dur_us = wall_now_us() - record_.wall_start_us;
  record_.virt_end_s = virt_now_s();
  std::vector<OpenSpan>& stack = span_stack();
  if (!stack.empty() && stack.back().id == record_.id) {
    stack.pop_back();
  }
  spans().record(std::move(record_));
}

void Span::arg(std::string_view key, double value) {
  arg_raw(key, json_number(value));
}

void Span::arg(std::string_view key, std::string_view value) {
  arg_raw(key, json_quote(value));
}

void Span::arg_raw(std::string_view key, std::string value) {
  record_.args.emplace_back(std::string(key), std::move(value));
}

}  // namespace hmpi::telemetry
