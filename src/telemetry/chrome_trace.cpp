#include "telemetry/chrome_trace.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "telemetry/json.hpp"

namespace hmpi::telemetry {

ChromeEvent& ChromeEvent::arg(std::string_view key, double value) {
  return arg_raw(key, json_number(value));
}

ChromeEvent& ChromeEvent::arg(std::string_view key, std::string_view value) {
  return arg_raw(key, json_quote(value));
}

ChromeEvent& ChromeEvent::arg_raw(std::string_view key, std::string value) {
  args.emplace_back(std::string(key), std::move(value));
  return *this;
}

std::vector<ChromeEvent> spans_to_chrome(std::span<const SpanRecord> records) {
  std::vector<ChromeEvent> events;
  events.reserve(records.size());
  for (const SpanRecord& r : records) {
    ChromeEvent e;
    e.name = r.name;
    e.ph = 'X';
    e.ts_us = r.wall_start_us;
    e.dur_us = r.wall_dur_us;
    e.pid = kRuntimePid;
    e.tid = r.track;
    e.arg("id", static_cast<double>(r.id));
    if (r.parent_id != 0) e.arg("parent", static_cast<double>(r.parent_id));
    if (std::isfinite(r.virt_start_s)) {
      e.arg("virt_start_s", r.virt_start_s);
      e.arg("virt_end_s", r.virt_end_s);
    }
    for (const auto& [key, value] : r.args) e.arg_raw(key, value);
    events.push_back(std::move(e));
  }
  return events;
}

namespace {

void write_event(std::ostream& os, const ChromeEvent& e) {
  os << "{\"name\": " << json_quote(e.name) << ", \"cat\": "
     << json_quote(e.cat) << ", \"ph\": \"" << e.ph
     << "\", \"ts\": " << json_number(e.ts_us);
  if (e.ph == 'X') os << ", \"dur\": " << json_number(e.dur_us);
  if (e.ph == 's' || e.ph == 'f' || e.ph == 't') {
    os << ", \"id\": " << e.flow_id;
    if (e.ph == 'f') os << ", \"bp\": \"e\"";
  }
  os << ", \"pid\": " << e.pid << ", \"tid\": " << e.tid;
  if (!e.args.empty()) {
    os << ", \"args\": {";
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      if (i > 0) os << ", ";
      os << json_quote(e.args[i].first) << ": " << e.args[i].second;
    }
    os << "}";
  }
  os << "}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, std::vector<ChromeEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const ChromeEvent& a, const ChromeEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_us < b.ts_us;
                   });

  std::vector<ChromeEvent> meta;
  int last_pid = -1;
  for (const ChromeEvent& e : events) {
    if (e.pid != last_pid) {
      last_pid = e.pid;
      ChromeEvent m;
      m.name = "process_name";
      m.ph = 'M';
      m.pid = e.pid;
      m.tid = 0;
      m.arg("name", e.pid == kVirtualPid
                        ? std::string_view("hmpi simulator (virtual time)")
                        : std::string_view("hmpi runtime (wall time)"));
      meta.push_back(std::move(m));
    }
  }

  os << "{\"traceEvents\": [";
  bool first = true;
  for (const ChromeEvent& m : meta) {
    if (!first) os << ",";
    os << "\n  ";
    write_event(os, m);
    first = false;
  }
  for (const ChromeEvent& e : events) {
    if (!first) os << ",";
    os << "\n  ";
    write_event(os, e);
    first = false;
  }
  os << "\n]}\n";
}

}  // namespace hmpi::telemetry
