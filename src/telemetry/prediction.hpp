// Timeof prediction-accuracy ledger (the paper's core claim, measured).
//
// HMPI's whole pitch is that Timeof-derived makespan estimates are accurate
// enough to pick the fastest group. The ledger records, per created group,
// the predicted makespan (at group_create time) and the measured simulated
// execution time (reported by the application after it runs), then
// summarises mean/max relative error per performance model. Exposed to C as
// HMPI_Prediction_error and asserted < 25% in the regression tests.
// Long-running adaptive jobs re-map repeatedly, so the ledger bounds its
// memory: once the number of MATCHED predicted/measured pairs exceeds a
// configurable capacity, the oldest matched pairs are folded into exact
// per-model aggregates (count / error sum / error max) and dropped. The
// summary(), mean_relative_error() and write_json() model statistics stay
// exact over everything ever recorded; only the per-sample listing is
// truncated to the retained window. Unmatched predictions are never pruned
// (they still await their measurement).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hmpi::telemetry {

struct PredictionSample {
  std::string model;   ///< Performance-model name (e.g. "Em3d").
  int group_id = 0;
  double predicted_s = 0.0;
  double measured_s = 0.0;
  bool has_measured = false;
};

class PredictionLedger {
 public:
  /// Called by the runtime when a group is created.
  void record_predicted(std::string_view model, int group_id,
                        double predicted_s);

  /// Called when the algorithm has actually run. `measured_total_s` covers
  /// `runs` repetitions of the modelled computation; the stored value is the
  /// per-run mean. Group ids restart per simulated world, so the sample
  /// matched is the LATEST unmeasured one with this id (latest-wins).
  void record_measured(int group_id, double measured_total_s, int runs = 1);

  struct ModelError {
    std::string model;
    int samples = 0;  ///< Samples with both prediction and measurement.
    double mean_rel_error = 0.0;
    double max_rel_error = 0.0;
  };
  /// Per-model error summary, sorted by model name.
  std::vector<ModelError> summary() const;

  /// Mean relative error over measured samples of `model` (all models when
  /// empty). NaN when no sample matches.
  double mean_relative_error(std::string_view model = {}) const;

  std::vector<PredictionSample> samples() const;

  /// `{"samples": [...], "models": [...]}`.
  void write_json(std::ostream& os) const;

  /// Retained samples (matched window + unmatched predictions).
  std::size_t size() const;

  /// Everything ever recorded, pruned pairs included.
  std::size_t total_recorded() const;

  /// Caps the retained matched pairs at `max_matched_samples` (>= 1),
  /// folding the overflow — oldest first — into exact per-model aggregates.
  /// Applies immediately and to all later recording.
  void set_capacity(std::size_t max_matched_samples);

  /// The default matched-pair capacity of a fresh ledger.
  static constexpr std::size_t kDefaultCapacity = 4096;

  void clear();

 private:
  /// Exact statistics of pruned (matched) samples, per model.
  struct Pruned {
    long long samples = 0;
    double sum_rel_error = 0.0;
    double max_rel_error = 0.0;
  };

  void prune_locked();

  mutable std::mutex mutex_;
  std::vector<PredictionSample> samples_;
  std::map<std::string, Pruned> pruned_;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t total_ = 0;
};

/// The process-wide ledger the runtime records into.
PredictionLedger& predictions();

}  // namespace hmpi::telemetry
