// Timeof prediction-accuracy ledger (the paper's core claim, measured).
//
// HMPI's whole pitch is that Timeof-derived makespan estimates are accurate
// enough to pick the fastest group. The ledger records, per created group,
// the predicted makespan (at group_create time) and the measured simulated
// execution time (reported by the application after it runs), then
// summarises mean/max relative error per performance model. Exposed to C as
// HMPI_Prediction_error and asserted < 25% in the regression tests.
#pragma once

#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hmpi::telemetry {

struct PredictionSample {
  std::string model;   ///< Performance-model name (e.g. "Em3d").
  int group_id = 0;
  double predicted_s = 0.0;
  double measured_s = 0.0;
  bool has_measured = false;
};

class PredictionLedger {
 public:
  /// Called by the runtime when a group is created.
  void record_predicted(std::string_view model, int group_id,
                        double predicted_s);

  /// Called when the algorithm has actually run. `measured_total_s` covers
  /// `runs` repetitions of the modelled computation; the stored value is the
  /// per-run mean. Group ids restart per simulated world, so the sample
  /// matched is the LATEST unmeasured one with this id (latest-wins).
  void record_measured(int group_id, double measured_total_s, int runs = 1);

  struct ModelError {
    std::string model;
    int samples = 0;  ///< Samples with both prediction and measurement.
    double mean_rel_error = 0.0;
    double max_rel_error = 0.0;
  };
  /// Per-model error summary, sorted by model name.
  std::vector<ModelError> summary() const;

  /// Mean relative error over measured samples of `model` (all models when
  /// empty). NaN when no sample matches.
  double mean_relative_error(std::string_view model = {}) const;

  std::vector<PredictionSample> samples() const;

  /// `{"samples": [...], "models": [...]}`.
  void write_json(std::ostream& os) const;

  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<PredictionSample> samples_;
};

/// The process-wide ledger the runtime records into.
PredictionLedger& predictions();

}  // namespace hmpi::telemetry
