// RAII runtime spans with parent/child nesting and dual timelines.
//
// A Span measures a named scope on the wall clock (microseconds since the
// process epoch, steady clock) and — when the current thread runs inside a
// simulated process — on the simulator's virtual clock too. Nesting is
// tracked per thread: a Span opened while another is live becomes its child
// and inherits its track, so `group_respawn` → `group_create` → `mapper:*`
// renders as a proper flame in Perfetto (chrome_trace.hpp).
//
// The virtual clock is injected, not linked: mpsim installs a sampling hook
// via VirtualClockScope around runtime entry points, keeping this library
// dependency-free below hmpi_support.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hmpi::telemetry {

/// One finished span. `args` values are raw JSON fragments (already encoded).
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  ///< 0 for root spans.
  std::string name;
  int track = 0;  ///< Renders as the Chrome-trace tid (usually a world rank).
  double wall_start_us = 0.0;  ///< Microseconds since the process epoch.
  double wall_dur_us = 0.0;
  double virt_start_s = 0.0;  ///< NaN when no virtual clock was installed.
  double virt_end_s = 0.0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Thread-safe store of finished spans.
class TraceLog {
 public:
  void record(SpanRecord record);
  /// All spans, sorted by (wall_start_us, id).
  std::vector<SpanRecord> records() const;
  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> records_;
};

/// The process-wide span log (exported by Runtime::trace_export_json).
TraceLog& spans();

/// Installs a virtual-clock sampler for the current thread for the scope's
/// lifetime; Spans opened on this thread stamp virt_start_s / virt_end_s by
/// calling `fn(ctx)`. Restores the previous hook (nesting-safe).
class VirtualClockScope {
 public:
  using ClockFn = double (*)(const void*);

  VirtualClockScope(ClockFn fn, const void* ctx);
  ~VirtualClockScope();

  VirtualClockScope(const VirtualClockScope&) = delete;
  VirtualClockScope& operator=(const VirtualClockScope&) = delete;

 private:
  ClockFn saved_fn_;
  const void* saved_ctx_;
};

/// RAII measurement scope; records into spans() on destruction.
class Span {
 public:
  explicit Span(std::string_view name);
  /// Explicit track for root spans (children inherit their parent's track).
  Span(std::string_view name, int track);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void arg(std::string_view key, double value);
  void arg(std::string_view key, std::string_view value);
  /// `value` must already be valid JSON (e.g. from json_number).
  void arg_raw(std::string_view key, std::string value);

  std::uint64_t id() const noexcept { return record_.id; }

 private:
  void open(std::string_view name, int track, bool explicit_track);

  SpanRecord record_;
};

// HMPI_SPAN("name") / HMPI_SPAN("name", track) — anonymous scoped span.
#define HMPI_SPAN_CONCAT2(a, b) a##b
#define HMPI_SPAN_CONCAT(a, b) HMPI_SPAN_CONCAT2(a, b)
#define HMPI_SPAN(...) \
  ::hmpi::telemetry::Span HMPI_SPAN_CONCAT(hmpi_span_, __LINE__)(__VA_ARGS__)

}  // namespace hmpi::telemetry
