#include "telemetry/prediction.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <ostream>

#include "telemetry/json.hpp"

namespace hmpi::telemetry {

namespace {

double relative_error(const PredictionSample& s) {
  if (s.measured_s == 0.0) return 0.0;
  return std::abs(s.predicted_s - s.measured_s) / s.measured_s;
}

}  // namespace

void PredictionLedger::record_predicted(std::string_view model, int group_id,
                                        double predicted_s) {
  std::lock_guard lock(mutex_);
  PredictionSample s;
  s.model.assign(model);
  s.group_id = group_id;
  s.predicted_s = predicted_s;
  samples_.push_back(std::move(s));
  ++total_;
}

void PredictionLedger::record_measured(int group_id, double measured_total_s,
                                       int runs) {
  std::lock_guard lock(mutex_);
  for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
    if (it->group_id == group_id && !it->has_measured) {
      it->measured_s = measured_total_s / std::max(runs, 1);
      it->has_measured = true;
      prune_locked();
      return;
    }
  }
}

void PredictionLedger::prune_locked() {
  std::size_t matched = 0;
  for (const PredictionSample& s : samples_) {
    if (s.has_measured) ++matched;
  }
  if (matched <= capacity_) return;
  // Fold the oldest matched pairs into the exact per-model aggregates and
  // drop them; unmatched predictions stay (they await their measurement).
  std::size_t to_drop = matched - capacity_;
  std::vector<PredictionSample> kept;
  kept.reserve(samples_.size() - to_drop);
  for (PredictionSample& s : samples_) {
    if (s.has_measured && to_drop > 0) {
      Pruned& p = pruned_[s.model];
      const double err = relative_error(s);
      p.samples += 1;
      p.sum_rel_error += err;
      p.max_rel_error = std::max(p.max_rel_error, err);
      --to_drop;
    } else {
      kept.push_back(std::move(s));
    }
  }
  samples_ = std::move(kept);
}

void PredictionLedger::set_capacity(std::size_t max_matched_samples) {
  std::lock_guard lock(mutex_);
  capacity_ = std::max<std::size_t>(max_matched_samples, 1);
  prune_locked();
}

std::vector<PredictionLedger::ModelError> PredictionLedger::summary() const {
  std::lock_guard lock(mutex_);
  std::map<std::string, ModelError> by_model;
  // Pruned pairs first: their exact aggregates keep the summary identical
  // to an unbounded ledger's.
  for (const auto& [model, p] : pruned_) {
    ModelError& e = by_model[model];
    e.model = model;
    e.mean_rel_error += p.sum_rel_error;  // Sum for now; divided below.
    e.max_rel_error = std::max(e.max_rel_error, p.max_rel_error);
    e.samples += static_cast<int>(p.samples);
  }
  for (const PredictionSample& s : samples_) {
    if (!s.has_measured) continue;
    ModelError& e = by_model[s.model];
    e.model = s.model;
    const double err = relative_error(s);
    e.mean_rel_error += err;  // Sum for now; divided below.
    e.max_rel_error = std::max(e.max_rel_error, err);
    ++e.samples;
  }
  std::vector<ModelError> out;
  out.reserve(by_model.size());
  for (auto& [name, e] : by_model) {
    e.mean_rel_error /= e.samples;
    out.push_back(std::move(e));
  }
  return out;
}

double PredictionLedger::mean_relative_error(std::string_view model) const {
  std::lock_guard lock(mutex_);
  double sum = 0.0;
  long long n = 0;
  for (const auto& [name, p] : pruned_) {
    if (!model.empty() && name != model) continue;
    sum += p.sum_rel_error;
    n += p.samples;
  }
  for (const PredictionSample& s : samples_) {
    if (!s.has_measured) continue;
    if (!model.empty() && s.model != model) continue;
    sum += relative_error(s);
    ++n;
  }
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  return sum / static_cast<double>(n);
}

std::vector<PredictionSample> PredictionLedger::samples() const {
  std::lock_guard lock(mutex_);
  return samples_;
}

void PredictionLedger::write_json(std::ostream& os) const {
  const std::vector<PredictionSample> all = samples();
  const std::vector<ModelError> models = summary();
  os << "{\n  \"samples\": [";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const PredictionSample& s = all[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"model\": " << json_quote(s.model)
       << ", \"group_id\": " << s.group_id
       << ", \"predicted_s\": " << json_number(s.predicted_s)
       << ", \"measured_s\": "
       << (s.has_measured ? json_number(s.measured_s) : std::string("null"));
    if (s.has_measured) {
      os << ", \"rel_error\": " << json_number(relative_error(s));
    }
    os << "}";
  }
  os << (all.empty() ? "" : "\n  ") << "],\n  \"models\": [";
  for (std::size_t i = 0; i < models.size(); ++i) {
    const ModelError& e = models[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"model\": " << json_quote(e.model)
       << ", \"samples\": " << e.samples
       << ", \"mean_rel_error\": " << json_number(e.mean_rel_error)
       << ", \"max_rel_error\": " << json_number(e.max_rel_error) << "}";
  }
  os << (models.empty() ? "" : "\n  ") << "]\n}\n";
}

std::size_t PredictionLedger::size() const {
  std::lock_guard lock(mutex_);
  return samples_.size();
}

std::size_t PredictionLedger::total_recorded() const {
  std::lock_guard lock(mutex_);
  return total_;
}

void PredictionLedger::clear() {
  std::lock_guard lock(mutex_);
  samples_.clear();
  pruned_.clear();
  total_ = 0;
}

PredictionLedger& predictions() {
  static PredictionLedger ledger;
  return ledger;
}

}  // namespace hmpi::telemetry
