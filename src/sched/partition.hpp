// Partitions and reservations — the slurmctld resource-carving vocabulary.
//
// A Partition names the subset of the cluster a scheduler instance manages
// and how many concurrent leases each machine inside it accepts. Slots are
// the residual-capacity twist on slurm's exclusive node allocation: a
// machine with S slots can host S tenant processes at proportionally
// degraded speed (capacity.hpp), so leased machines stay candidates instead
// of leaving the pool. A Reservation is the conservative-backfill shadow:
// the earliest time the blocked queue head is guaranteed to fit, which
// lower-priority jobs must not delay (scheduler.cpp).
#pragma once

#include <string>
#include <vector>

#include "hnoc/cluster.hpp"
#include "sched/job.hpp"
#include "support/error.hpp"

namespace hmpi::sched {

/// The slice of the cluster one scheduler manages.
struct Partition {
  std::string name = "all";
  /// Physical machine indices (into the Cluster); empty = every machine.
  std::vector<int> machines;
  /// Concurrent leases a machine accepts (1 = slurm-style exclusive nodes).
  int slots_per_machine = 2;

  /// Resolves an empty machine list to the whole cluster and validates
  /// indices/slots against it.
  static Partition resolve(Partition partition, const hnoc::Cluster& cluster) {
    support::require(partition.slots_per_machine >= 1,
                     "partition needs at least one slot per machine");
    if (partition.machines.empty()) {
      partition.machines.resize(static_cast<std::size_t>(cluster.size()));
      for (int p = 0; p < cluster.size(); ++p) {
        partition.machines[static_cast<std::size_t>(p)] = p;
      }
    }
    for (int p : partition.machines) {
      support::require(p >= 0 && p < cluster.size(),
                       "partition machine index out of range");
    }
    return partition;
  }
};

/// The queue head's backfill shadow: `job` is guaranteed `slots` free slots
/// at virtual time `start_s`; backfilled jobs may not push that back.
struct Reservation {
  JobId job = -1;
  double start_s = 0.0;
  int slots = 0;
};

}  // namespace hmpi::sched
