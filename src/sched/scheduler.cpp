#include "sched/scheduler.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <utility>

#include "support/error.hpp"
#include "telemetry/metrics.hpp"

namespace hmpi::sched {
namespace {

// Virtual waits/turnarounds span milliseconds to days; the default seconds
// buckets stop at 100 s, so the sched histograms get their own ceilings.
std::span<const double> sched_seconds_buckets() {
  static const std::vector<double> buckets{0.1,   0.3,   1.0,    3.0,    10.0,
                                           30.0,  100.0, 300.0,  1000.0, 3000.0,
                                           10000.0, 30000.0, 100000.0};
  return buckets;
}

bool env_flag(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return !(value[0] == '0' || value[0] == 'n' || value[0] == 'N' ||
           value[0] == 'f' || value[0] == 'F');
}

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atof(value);
}

std::unique_ptr<map::Mapper> make_mapper(const std::string& name) {
  if (name.empty() || name == "greedy") return std::make_unique<map::GreedyMapper>();
  if (name == "swap-refine") return std::make_unique<map::SwapRefineMapper>();
  if (name == "annealing") return std::make_unique<map::AnnealingMapper>();
  if (name == "exhaustive") return std::make_unique<map::ExhaustiveMapper>();
  if (name == "portfolio") return std::make_unique<map::PortfolioMapper>();
  if (name == "beam") return std::make_unique<map::BeamMapper>();
  if (name == "annealing-ws") {
    return std::make_unique<map::WorkStealingAnnealingMapper>();
  }
  throw InvalidArgument("unknown scheduler mapper: " + name);
}

SchedConfig normalize(SchedConfig config) {
  if (config.policy == SchedPolicy::kFifo) {
    // The A13 baseline: slurm-style exclusive nodes, arrival order only.
    config.slots_per_machine = 1;
    config.backfill = false;
    config.preempt = false;
    config.aging_weight = 0.0;
  }
  support::require(config.slots_per_machine >= 1,
                   "scheduler needs at least one slot per machine");
  support::require(config.backfill_depth >= 0, "negative backfill depth");
  return config;
}

}  // namespace

const char* policy_name(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kPriority: return "priority";
  }
  return "?";
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kPending: return "pending";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

SchedConfig sched_config_with_env(SchedConfig base) {
  if (const char* policy = std::getenv("HMPI_SCHED_POLICY");
      policy != nullptr && *policy != '\0') {
    std::string name(policy);
    for (char& c : name) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (name == "fifo") {
      base.policy = SchedPolicy::kFifo;
    } else if (name == "priority") {
      base.policy = SchedPolicy::kPriority;
    } else {
      throw InvalidArgument("HMPI_SCHED_POLICY must be fifo|priority");
    }
  }
  base.slots_per_machine = env_int("HMPI_SCHED_SLOTS", base.slots_per_machine);
  base.backfill = env_flag("HMPI_SCHED_BACKFILL", base.backfill);
  base.backfill_depth = env_int("HMPI_SCHED_BACKFILL_DEPTH", base.backfill_depth);
  base.preempt = env_flag("HMPI_SCHED_PREEMPT", base.preempt);
  base.preempt_priority_gap =
      env_int("HMPI_SCHED_PREEMPT_GAP", base.preempt_priority_gap);
  base.aging_weight = env_double("HMPI_SCHED_AGING", base.aging_weight);
  return base;
}

Scheduler::Scheduler(const hnoc::Cluster& cluster, SchedConfig config,
                     Partition partition)
    : cluster_(&cluster),
      config_(normalize(std::move(config))),
      ledger_(cluster,
              [&] {
                partition.slots_per_machine = config_.slots_per_machine;
                return std::move(partition);
              }()),
      mapper_(make_mapper(config_.mapper)),
      selector_(mapper_.get(), config_.estimate),
      busy_since_(static_cast<std::size_t>(cluster.size()), -1.0),
      busy_total_s_(static_cast<std::size_t>(cluster.size()), 0.0) {}

map::SearchContext Scheduler::search_context() {
  map::SearchContext context;
  context.cache = &estimate_cache_;
  context.plans = &plan_cache_;
  context.delta = true;
  return context;
}

JobId Scheduler::submit(JobSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  support::require(spec.model != nullptr, "job needs a performance model");

  Record rec;
  rec.instance = spec.model->instantiate(
      std::span<const pmdl::ParamValue>(spec.params));
  const int capacity = static_cast<int>(ledger_.partition().machines.size()) *
                       ledger_.partition().slots_per_machine;
  support::require(rec.instance->size() <= capacity,
                   "job needs more processors than the partition has slots");

  const JobId id = next_id_++;
  rec.info.id = id;
  rec.info.name = spec.name.empty() ? spec.model->name() : spec.name;
  rec.info.priority = spec.priority;
  rec.info.arrival_s = std::max(spec.arrival_s, now_);
  rec.spec = std::move(spec);

  push_event(Event{.time = rec.info.arrival_s,
                   .type = Event::Type::kArrival,
                   .job = id});
  jobs_.emplace(id, std::move(rec));

  ++totals_.submitted;
  telemetry::metrics().counter("sched.submitted").add(1);
  return id;
}

std::optional<JobInfo> Scheduler::poll(JobId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.info;
}

bool Scheduler::cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Record& rec = it->second;
  switch (rec.info.state) {
    case JobState::kCompleted:
    case JobState::kCancelled:
      return false;
    case JobState::kRunning:
      ++rec.generation;  // orphan the in-flight completion event
      release_leases(rec);
      --totals_.running;
      break;
    case JobState::kPending:
      std::erase(pending_, id);
      break;
  }
  rec.info.state = JobState::kCancelled;
  ++totals_.cancelled;
  telemetry::metrics().counter("sched.cancelled").add(1);
  return true;
}

double Scheduler::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_;
}

std::optional<Reservation> Scheduler::reservation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reservation_;
}

void Scheduler::refresh_speeds(const std::vector<double>& speeds) {
  std::lock_guard<std::mutex> lock(mutex_);
  ledger_.refresh_base(speeds);
}

bool Scheduler::step() {
  std::lock_guard<std::mutex> lock(mutex_);
  return step_locked();
}

void Scheduler::run_until_idle() {
  std::lock_guard<std::mutex> lock(mutex_);
  while (step_locked()) {
  }
  publish_gauges();
}

bool Scheduler::step_locked() {
  while (!events_.empty()) {
    const Event event = events_.top();
    events_.pop();
    auto it = jobs_.find(event.job);
    if (it == jobs_.end()) continue;
    Record& rec = it->second;
    if (event.type == Event::Type::kCompletion &&
        (rec.generation != event.generation ||
         rec.info.state != JobState::kRunning)) {
      continue;  // preempted or cancelled since this event was scheduled
    }
    now_ = std::max(now_, event.time);
    if (event.type == Event::Type::kArrival) {
      if (rec.info.state != JobState::kPending) continue;  // cancelled
      pending_.push_back(event.job);
      totals_.queue_depth_peak =
          std::max(totals_.queue_depth_peak, static_cast<int>(pending_.size()));
    } else {
      complete_job(rec);
    }
    schedule_pass();
    return true;
  }
  return false;
}

double Scheduler::effective_priority(const Record& rec) const {
  if (config_.policy == SchedPolicy::kFifo) return 0.0;
  return static_cast<double>(rec.info.priority) +
         config_.aging_weight * (now_ - rec.info.arrival_s);
}

std::vector<JobId> Scheduler::sorted_pending() const {
  std::vector<JobId> order = pending_;
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    const Record& ra = jobs_.at(a);
    const Record& rb = jobs_.at(b);
    const double pa = effective_priority(ra);
    const double pb = effective_priority(rb);
    if (pa != pb) return pa > pb;
    if (ra.info.arrival_s != rb.info.arrival_s) {
      return ra.info.arrival_s < rb.info.arrival_s;
    }
    return a < b;
  });
  return order;
}

void Scheduler::schedule_pass() {
  reservation_.reset();
  bool progressed = true;
  while (progressed) {
    progressed = false;
    const std::vector<JobId> order = sorted_pending();
    if (order.empty()) break;
    Record& head = jobs_.at(order.front());

    if (try_dispatch(head, /*backfilled=*/false)) {
      progressed = true;
      continue;
    }

    // Head is blocked. Preemption: revoke just enough strictly-lower-
    // priority running work to make it feasible, lowest priority first.
    if (config_.preempt) {
      std::vector<JobId> victims;
      for (const auto& [id, rec] : jobs_) {
        if (rec.info.state != JobState::kRunning) continue;
        if (rec.info.priority + config_.preempt_priority_gap >
            head.info.priority) {
          continue;
        }
        if (rec.info.preemptions >= config_.max_preemptions_per_job) continue;
        victims.push_back(id);
      }
      std::sort(victims.begin(), victims.end(), [&](JobId a, JobId b) {
        const Record& ra = jobs_.at(a);
        const Record& rb = jobs_.at(b);
        if (ra.info.priority != rb.info.priority) {
          return ra.info.priority < rb.info.priority;  // least important first
        }
        if (ra.seg_start_s != rb.seg_start_s) {
          return ra.seg_start_s > rb.seg_start_s;  // least progress lost
        }
        return a > b;
      });
      const int needed = head.instance->size();
      int reclaimable = ledger_.total_free_slots();
      std::size_t take = 0;
      while (take < victims.size() && reclaimable < needed) {
        reclaimable += jobs_.at(victims[take]).instance->size();
        ++take;
      }
      if (reclaimable >= needed && take > 0) {
        for (std::size_t i = 0; i < take; ++i) preempt_job(jobs_.at(victims[i]));
        if (try_dispatch(head, /*backfilled=*/false)) {
          progressed = true;
          continue;
        }
      }
    }

    // Still blocked: compute the head's shadow — the completion time at
    // which enough slots are guaranteed free — and reserve it.
    const int needed = head.instance->size();
    struct Finish {
      double time;
      int slots;
    };
    std::vector<Finish> finishes;
    for (const auto& [id, rec] : jobs_) {
      if (rec.info.state != JobState::kRunning) continue;
      finishes.push_back(Finish{rec.seg_start_s + rec.seg_service_s,
                                rec.instance->size()});
    }
    std::sort(finishes.begin(), finishes.end(),
              [](const Finish& a, const Finish& b) { return a.time < b.time; });
    double shadow_start = now_;
    int shadow_free = ledger_.total_free_slots();
    for (const Finish& f : finishes) {
      if (shadow_free >= needed) break;
      shadow_free += f.slots;
      shadow_start = f.time;
    }
    reservation_ = Reservation{
        .job = head.info.id, .start_s = shadow_start, .slots = needed};

    // Conservative backfill: a lower-priority job may start now only if it
    // cannot delay the reservation — it either finishes before the shadow
    // or leaves the head's slots untouched at shadow time.
    if (config_.backfill) {
      int scanned = 0;
      for (std::size_t i = 1; i < order.size(); ++i) {
        if (scanned >= config_.backfill_depth) break;
        ++scanned;
        Record& rec = jobs_.at(order[i]);
        if (rec.info.state != JobState::kPending) continue;
        const int p = rec.instance->size();
        if (p > ledger_.total_free_slots()) continue;
        const auto placement =
            selector_.place(*rec.instance, ledger_, search_context());
        if (!placement) continue;
        const double bound = rec.spec.walltime_estimate_s > 0.0
                                 ? rec.spec.walltime_estimate_s
                                 : placement->estimated_s;
        const bool fits_before_shadow =
            now_ + bound <= shadow_start + 1e-12;
        const bool spare_at_shadow = shadow_free - p >= needed;
        if (!fits_before_shadow && !spare_at_shadow) continue;
        if (!fits_before_shadow) shadow_free -= p;
        dispatch(rec, *placement, /*backfilled=*/true);
        ++totals_.backfilled;
        telemetry::metrics().counter("sched.backfilled").add(1);
      }
    }
    break;  // head stays blocked until the next event
  }
  totals_.queue_depth = static_cast<int>(pending_.size());
  telemetry::metrics().gauge("sched.queue_depth").set(totals_.queue_depth);
  telemetry::metrics().gauge("sched.running").set(totals_.running);
}

bool Scheduler::try_dispatch(Record& rec, bool backfilled) {
  if (rec.instance->size() > ledger_.total_free_slots()) return false;
  const auto placement =
      selector_.place(*rec.instance, ledger_, search_context());
  if (!placement) return false;
  dispatch(rec, *placement, backfilled);
  return true;
}

void Scheduler::dispatch(Record& rec, const Placement& placement,
                         bool backfilled) {
  std::erase(pending_, rec.info.id);
  rec.info.machines = placement.machines;
  for (int machine : placement.machines) note_lease(machine, rec.info.id);

  const bool first_dispatch = rec.info.start_s < 0.0;
  if (first_dispatch) {
    rec.info.start_s = now_;
    const double wait = now_ - rec.info.arrival_s;
    wait_sum_s_ += wait;
    ++waits_observed_;
    telemetry::metrics()
        .histogram("sched.wait_seconds", sched_seconds_buckets())
        .observe(wait);
  }
  rec.info.backfilled = backfilled;
  rec.info.state = JobState::kRunning;

  // Service time: a measured simulated run when executing, else the
  // estimator's prediction on the residual overlay.
  if (config_.execute && rec.spec.body) {
    rec.info.result = execute_body(rec);
  } else {
    rec.full_service_s = std::max(placement.estimated_s, 1e-9);
  }

  double resume_cost = 0.0;
  if (!first_dispatch && rec.spec.checkpoint_bytes >= 0) {
    resume_cost = cluster_->default_link().transfer_time(
        static_cast<double>(rec.spec.checkpoint_bytes));
  }
  rec.seg_start_s = now_;
  rec.seg_service_s = rec.remaining_frac * rec.full_service_s + resume_cost;
  ++rec.generation;
  push_event(Event{.time = now_ + rec.seg_service_s,
                   .type = Event::Type::kCompletion,
                   .job = rec.info.id,
                   .generation = rec.generation});

  ++totals_.dispatched;
  ++totals_.running;
  telemetry::metrics().counter("sched.dispatched").add(1);
  record_trace(mp::TraceEvent::Kind::kSchedDispatch, rec, rec.seg_service_s,
               0.0);
}

std::uint64_t Scheduler::execute_body(Record& rec) {
  // The measured run happens on a clone whose machine speeds carry the
  // lease-proportional share this job actually gets (its own leases are
  // already counted, so a sole tenant sees the full base speed).
  const hnoc::Cluster clone = contended_clone(rec.info.machines);
  std::vector<std::uint64_t> tokens(
      static_cast<std::size_t>(rec.instance->size()), 0);
  mp::WorldOptions options;
  options.engine = config_.engine;
  const JobBody& body = rec.spec.body;
  const auto result = mp::World::run(
      clone, rec.info.machines,
      [&](mp::Proc& proc) {
        tokens[static_cast<std::size_t>(proc.rank())] = body(proc);
      },
      options);
  rec.full_service_s = std::max(result.makespan, 1e-9);
  return tokens.empty() ? 0 : tokens.front();
}

hnoc::Cluster Scheduler::contended_clone(const std::vector<int>& machines) const {
  (void)machines;
  std::vector<hnoc::Processor> processors = cluster_->processors();
  for (int p = 0; p < cluster_->size(); ++p) {
    const int tenants = std::max(1, ledger_.leases(p));
    processors[static_cast<std::size_t>(p)].speed =
        ledger_.base_speed(p) / tenants;
  }
  return hnoc::Cluster(std::move(processors), cluster_->default_link(),
                       cluster_->self_link(), cluster_->link_overrides(),
                       cluster_->two_level_topology());
}

void Scheduler::preempt_job(Record& rec) {
  const double progress =
      rec.seg_service_s > 0.0
          ? std::clamp((now_ - rec.seg_start_s) / rec.seg_service_s, 0.0, 1.0)
          : 1.0;
  ++rec.generation;  // orphan the in-flight completion event
  release_leases(rec);
  rec.info.machines.clear();  // pending again; the next dispatch re-places it
  rec.info.service_s += now_ - rec.seg_start_s;
  if (rec.spec.checkpoint_bytes >= 0) {
    // Checkpointed: completed work survives; only the remainder is owed.
    rec.remaining_frac *= 1.0 - progress;
  } else {
    rec.remaining_frac = 1.0;  // restart from scratch
  }
  rec.info.state = JobState::kPending;
  ++rec.info.preemptions;
  pending_.push_back(rec.info.id);
  --totals_.running;
  ++totals_.preempted;
  telemetry::metrics().counter("sched.preempted").add(1);
  record_trace(mp::TraceEvent::Kind::kSchedPreempt, rec, rec.seg_service_s,
               progress);
}

void Scheduler::complete_job(Record& rec) {
  release_leases(rec);
  rec.info.state = JobState::kCompleted;
  rec.info.finish_s = now_;
  rec.info.service_s += rec.seg_service_s;
  last_finish_s_ = std::max(last_finish_s_, now_);
  const double turnaround = now_ - rec.info.arrival_s;
  turnaround_sum_s_ += turnaround;
  --totals_.running;
  ++totals_.completed;
  telemetry::metrics().counter("sched.completed").add(1);
  telemetry::metrics()
      .histogram("sched.turnaround_seconds", sched_seconds_buckets())
      .observe(turnaround);
  telemetry::metrics()
      .histogram("sched.service_seconds", sched_seconds_buckets())
      .observe(rec.info.service_s);
}

void Scheduler::release_leases(Record& rec) {
  // The placement stays in rec.info.machines: completed/cancelled jobs keep
  // reporting where they ran (poll, stats_json); a re-dispatch overwrites it.
  for (int machine : rec.info.machines) note_release(machine, rec.info.id);
}

void Scheduler::note_lease(int machine, JobId job) {
  ledger_.lease(machine, job);
  if (ledger_.leases(machine) == 1) {
    busy_since_[static_cast<std::size_t>(machine)] = now_;
  }
}

void Scheduler::note_release(int machine, JobId job) {
  ledger_.release(machine, job);
  if (ledger_.leases(machine) == 0) {
    auto& since = busy_since_[static_cast<std::size_t>(machine)];
    busy_total_s_[static_cast<std::size_t>(machine)] += now_ - since;
    since = -1.0;
  }
}

double Scheduler::busy_seconds_closed_at(double t) const {
  double total = 0.0;
  for (std::size_t p = 0; p < busy_total_s_.size(); ++p) {
    total += busy_total_s_[p];
    if (busy_since_[p] >= 0.0) total += t - busy_since_[p];
  }
  return total;
}

void Scheduler::push_event(Event event) {
  event.seq = next_seq_++;
  events_.push(event);
}

void Scheduler::record_trace(mp::TraceEvent::Kind kind, const Record& rec,
                             double predicted_s, double progress) const {
  if (config_.tracer == nullptr) return;
  mp::TraceEvent event;
  event.kind = kind;
  event.start_time = now_;
  event.end_time = now_;
  event.sched.job = rec.info.id;
  event.sched.priority = rec.info.priority;
  event.sched.procs = rec.instance->size();
  event.sched.predicted_s = predicted_s;
  event.sched.progress = progress;
  config_.tracer->record(event);
}

SchedStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SchedStats out = totals_;
  out.queue_depth = static_cast<int>(pending_.size());
  out.now_s = now_;
  out.makespan_s = last_finish_s_;
  const int machines = static_cast<int>(ledger_.partition().machines.size());
  if (last_finish_s_ > 0.0 && machines > 0) {
    out.utilization =
        busy_seconds_closed_at(now_) / (machines * last_finish_s_);
    out.throughput_jobs_per_s =
        static_cast<double>(totals_.completed) / last_finish_s_;
  }
  if (totals_.completed > 0) {
    out.mean_turnaround_s =
        turnaround_sum_s_ / static_cast<double>(totals_.completed);
  }
  if (waits_observed_ > 0) {
    out.mean_wait_s = wait_sum_s_ / static_cast<double>(waits_observed_);
  }
  return out;
}

void Scheduler::publish_gauges() {
  auto& registry = telemetry::metrics();
  registry.gauge("sched.queue_depth").set(pending_.size());
  registry.gauge("sched.queue_depth_peak").set(totals_.queue_depth_peak);
  registry.gauge("sched.running").set(totals_.running);
  registry.gauge("sched.makespan_s").set(last_finish_s_);
  const int machines = static_cast<int>(ledger_.partition().machines.size());
  if (last_finish_s_ > 0.0 && machines > 0) {
    registry.gauge("sched.utilization")
        .set(busy_seconds_closed_at(now_) / (machines * last_finish_s_));
    registry.gauge("sched.throughput_jobs_per_s")
        .set(static_cast<double>(totals_.completed) / last_finish_s_);
  }
}

void Scheduler::stats_json(std::ostream& os) const {
  const SchedStats s = stats();
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"scheduler\": {"
     << "\"policy\": \"" << policy_name(config_.policy) << "\", "
     << "\"machines\": " << ledger_.partition().machines.size() << ", "
     << "\"slots_per_machine\": " << ledger_.partition().slots_per_machine
     << ", "
     << "\"submitted\": " << s.submitted << ", "
     << "\"dispatched\": " << s.dispatched << ", "
     << "\"completed\": " << s.completed << ", "
     << "\"preempted\": " << s.preempted << ", "
     << "\"backfilled\": " << s.backfilled << ", "
     << "\"cancelled\": " << s.cancelled << ", "
     << "\"queue_depth\": " << s.queue_depth << ", "
     << "\"running\": " << s.running << ", "
     << "\"now_s\": " << s.now_s << ", "
     << "\"makespan_s\": " << s.makespan_s << ", "
     << "\"utilization\": " << s.utilization << ", "
     << "\"mean_wait_s\": " << s.mean_wait_s << ", "
     << "\"mean_turnaround_s\": " << s.mean_turnaround_s << ", "
     << "\"throughput_jobs_per_s\": " << s.throughput_jobs_per_s << ", "
     << "\"jobs\": [";
  bool first = true;
  for (const auto& [id, rec] : jobs_) {
    if (!first) os << ", ";
    first = false;
    os << "{\"id\": " << id << ", \"name\": \"" << rec.info.name
       << "\", \"state\": \"" << job_state_name(rec.info.state)
       << "\", \"priority\": " << rec.info.priority
       << ", \"arrival_s\": " << rec.info.arrival_s
       << ", \"start_s\": " << rec.info.start_s
       << ", \"finish_s\": " << rec.info.finish_s
       << ", \"service_s\": " << rec.info.service_s
       << ", \"preemptions\": " << rec.info.preemptions
       << ", \"backfilled\": " << (rec.info.backfilled ? "true" : "false")
       << ", \"result\": " << rec.info.result << "}";
  }
  os << "]}}";
}

std::uint64_t Scheduler::uncontended_run(const hnoc::Cluster& cluster,
                                         const JobSpec& spec,
                                         mp::sim::SimEngine engine) {
  if (!spec.body) return 0;
  support::require(spec.model != nullptr, "job needs a performance model");
  const pmdl::ModelInstance instance = spec.model->instantiate(
      std::span<const pmdl::ParamValue>(spec.params));

  // Idle-cluster placement: the same selection the scheduler would make on
  // an empty ledger (full base speeds, every slot free).
  CapacityLedger ledger(cluster, Partition{});
  Selector selector(nullptr, est::EstimateOptions{});
  const auto placement =
      selector.place(instance, ledger, map::SearchContext{});
  support::require(placement.has_value(),
                   "job does not fit the cluster even when idle");

  std::vector<std::uint64_t> tokens(
      static_cast<std::size_t>(instance.size()), 0);
  mp::WorldOptions options;
  options.engine = engine;
  mp::World::run(
      cluster, placement->machines,
      [&](mp::Proc& proc) {
        tokens[static_cast<std::size_t>(proc.rank())] = spec.body(proc);
      },
      options);
  return tokens.front();
}

}  // namespace hmpi::sched
