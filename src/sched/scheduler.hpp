// hmpictld — the multi-tenant scheduler service (docs/scheduler.md).
//
// Modeled on the slurmctld split: a job queue (job.hpp), partitions and
// backfill reservations (partition.hpp), and a selection layer (selector.hpp
// over capacity.hpp) that reuses the HMPI group-selection pipeline against
// residual capacity. The Scheduler itself is a discrete-event simulator over
// virtual time: arrivals and completions are heap events, and after every
// event a scheduling pass runs priority aging, conservative backfill, and
// preemption. Jobs with a body execute as real simulated HMPI runs on the
// event engine (their measured makespan is the service time); jobs without
// one are serviced for the estimator's predicted makespan.
//
// Thread safety: one coarse mutex guards every public operation, so
// simulated processes (OS threads under the thread engine) can share one
// scheduler through the C API.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "estimator/estimate_cache.hpp"
#include "estimator/plan.hpp"
#include "mpsim/trace.hpp"
#include "mpsim/world.hpp"
#include "sched/capacity.hpp"
#include "sched/job.hpp"
#include "sched/partition.hpp"
#include "sched/selector.hpp"

namespace hmpi::sched {

/// Queueing discipline.
enum class SchedPolicy {
  kFifo,      ///< Arrival order, exclusive leases, no backfill/preemption —
              ///< the slurm-without-plugins baseline A13 compares against.
  kPriority,  ///< Priority + aging, conservative backfill, preemption.
};

const char* policy_name(SchedPolicy policy);

/// Tunables (RuntimeConfig::sched; HMPI_SCHED_* overrides).
struct SchedConfig {
  SchedPolicy policy = SchedPolicy::kPriority;
  /// Concurrent leases per machine (1 = exclusive nodes). kFifo forces 1.
  int slots_per_machine = 2;
  /// Conservative backfill: low-priority jobs slide into holes that cannot
  /// delay the queue head's reservation. kFifo forces off.
  bool backfill = true;
  /// Pending jobs (beyond the head) considered per backfill scan.
  int backfill_depth = 16;
  /// Preemption of lower-priority running jobs for a blocked head. kFifo
  /// forces off.
  bool preempt = true;
  /// A running job is a victim only when its priority + gap <= the blocked
  /// head's static priority.
  int preempt_priority_gap = 1;
  /// Preemptions one job can suffer before it becomes un-preemptable.
  int max_preemptions_per_job = 2;
  /// Priority units a pending job gains per virtual second waited (aging
  /// prevents starvation under a stream of high-priority arrivals).
  double aging_weight = 0.01;
  /// Run job bodies as simulated HMPI runs (measured service). Off inside
  /// the HMPI runtime: a nested World::run cannot start from a simulated
  /// process, so the C API schedules on estimates only.
  bool execute = false;
  /// Mapper for placement: "" or "greedy" (default; the scheduler prices
  /// thousands of placements per trace), "swap-refine", "annealing",
  /// "exhaustive", "portfolio".
  std::string mapper;
  /// Estimator overheads for placement pricing.
  est::EstimateOptions estimate;
  /// Engine for executed jobs (kAuto resolves HMPI_SIM_ENGINE).
  mp::sim::SimEngine engine = mp::sim::SimEngine::kAuto;
  /// Optional recorder of kSchedDispatch/kSchedPreempt instants (borrowed).
  mp::Tracer* tracer = nullptr;
};

/// Applies HMPI_SCHED_POLICY / _SLOTS / _BACKFILL / _BACKFILL_DEPTH /
/// _PREEMPT / _PREEMPT_GAP / _AGING over `base` (unset vars keep base).
SchedConfig sched_config_with_env(SchedConfig base);

/// Aggregate accounting (sched.* metrics mirror this).
struct SchedStats {
  long long submitted = 0;
  long long dispatched = 0;  ///< Dispatch events (re-dispatches included).
  long long completed = 0;
  long long preempted = 0;
  long long backfilled = 0;
  long long cancelled = 0;
  int queue_depth = 0;       ///< Pending jobs now.
  int queue_depth_peak = 0;
  int running = 0;
  double now_s = 0.0;             ///< Scheduler virtual clock.
  double makespan_s = 0.0;        ///< Last completion time (0 when none).
  double utilization = 0.0;       ///< Time-weighted busy-machine fraction.
  double mean_wait_s = 0.0;       ///< arrival -> first dispatch.
  double mean_turnaround_s = 0.0; ///< arrival -> completion.
  double throughput_jobs_per_s = 0.0;  ///< completed / makespan.
};

/// The scheduler service. See file comment.
class Scheduler {
 public:
  /// The cluster must outlive the scheduler. `partition.slots_per_machine`
  /// is taken from the (policy-normalised) config.
  explicit Scheduler(const hnoc::Cluster& cluster, SchedConfig config = {},
                     Partition partition = {});

  /// Enqueues a job; its arrival fires at max(spec.arrival_s, now). Throws
  /// InvalidArgument when the model is null or the instance can never fit
  /// the partition.
  JobId submit(JobSpec spec);

  /// Status of a job; nullopt for an unknown id.
  std::optional<JobInfo> poll(JobId id) const;

  /// Cancels a pending or running job; false when unknown or completed.
  bool cancel(JobId id);

  /// Processes the next event (arrival or completion) and runs a scheduling
  /// pass; false when no events remain.
  bool step();

  /// Drains the event heap, then publishes the sched.* gauges.
  void run_until_idle();

  /// Scheduler virtual time (seconds).
  double now() const;

  SchedStats stats() const;

  /// `{"scheduler": {...}}` — summary + per-job records; the document shape
  /// tools/telemetry_check validates.
  void stats_json(std::ostream& os) const;

  const SchedConfig& config() const noexcept { return config_; }

  /// Lease/overlay state; read at quiescent points (tests, reporting).
  const CapacityLedger& ledger() const noexcept { return ledger_; }

  /// Queue head's backfill shadow from the last scheduling pass (nullopt
  /// when the head dispatched).
  std::optional<Reservation> reservation() const;

  /// Re-seeds the overlay's base speeds from a recon-refreshed estimate
  /// vector (Runtime integration).
  void refresh_speeds(const std::vector<double>& speeds);

  /// Reference result of `spec` run alone on an idle cluster: selects a
  /// placement at base speeds and runs the body; 0 when the spec has no
  /// body. The determinism oracle for the preempt->requeue->re-dispatch
  /// property (tests/sched/preempt_determinism_test.cpp).
  static std::uint64_t uncontended_run(const hnoc::Cluster& cluster,
                                       const JobSpec& spec,
                                       mp::sim::SimEngine engine = mp::sim::SimEngine::kAuto);

 private:
  struct Record {
    JobSpec spec;
    JobInfo info;
    /// Instantiated once at submit (optional only because ModelInstance is
    /// not default-constructible; always engaged after submit).
    std::optional<pmdl::ModelInstance> instance;
    double remaining_frac = 1.0;   ///< Fraction of full service still owed.
    double full_service_s = 0.0;   ///< Uninterrupted service length.
    double seg_start_s = 0.0;      ///< Current segment's dispatch time.
    double seg_service_s = 0.0;    ///< Current segment's length.
    std::uint64_t generation = 0;  ///< Invalidates stale completion events.
  };

  struct Event {
    enum class Type { kArrival, kCompletion };
    double time = 0.0;
    std::uint64_t seq = 0;  ///< Deterministic tie-break for equal times.
    Type type = Type::kArrival;
    JobId job = -1;
    std::uint64_t generation = 0;  ///< kCompletion: must match the record.
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  bool step_locked();
  void schedule_pass();
  std::vector<JobId> sorted_pending() const;
  double effective_priority(const Record& rec) const;
  bool try_dispatch(Record& rec, bool backfilled);
  void dispatch(Record& rec, const Placement& placement, bool backfilled);
  void preempt_job(Record& rec);
  void complete_job(Record& rec);
  void release_leases(Record& rec);
  void note_lease(int machine, JobId job);
  void note_release(int machine, JobId job);
  double busy_seconds_closed_at(double t) const;
  void push_event(Event event);
  void record_trace(mp::TraceEvent::Kind kind, const Record& rec,
                    double predicted_s, double progress) const;
  std::uint64_t execute_body(Record& rec);
  hnoc::Cluster contended_clone(const std::vector<int>& machines) const;
  void publish_gauges();
  map::SearchContext search_context();

  mutable std::mutex mutex_;
  const hnoc::Cluster* cluster_;
  SchedConfig config_;
  CapacityLedger ledger_;
  std::unique_ptr<map::Mapper> mapper_;
  Selector selector_;
  est::EstimateCache estimate_cache_;
  est::PlanCache plan_cache_;

  double now_ = 0.0;
  JobId next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::map<JobId, Record> jobs_;
  std::vector<JobId> pending_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::optional<Reservation> reservation_;

  SchedStats totals_;
  long long waits_observed_ = 0;
  double wait_sum_s_ = 0.0;
  double turnaround_sum_s_ = 0.0;
  double last_finish_s_ = 0.0;
  std::vector<double> busy_since_;  ///< Per machine; <0 when idle.
  std::vector<double> busy_total_s_;
};

}  // namespace hmpi::sched
