// Group selection against residual capacity.
//
// The Selector is the bridge between the scheduler and the PR 2/5 selection
// machinery: it turns the ledger's free slots into a mapper Candidate list
// (one candidate per free slot, so a machine with two free slots can host
// two abstract processors), picks the parent candidate, and calls the
// configured map::Mapper verbatim against the residual-priced overlay. The
// mapper/estimator pipeline — estimate cache, plan cache, delta replay —
// is reused unchanged; residual pricing is entirely the overlay's job.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "estimator/estimator.hpp"
#include "mapper/mapper.hpp"
#include "sched/capacity.hpp"

namespace hmpi::sched {

/// One placement decision.
struct Placement {
  /// Physical machine per abstract processor (mapping vector).
  std::vector<int> machines;
  /// Estimator's predicted makespan on the residual overlay.
  double estimated_s = 0.0;
  /// Search cost accounting (merged into sched metrics by the caller).
  map::SearchStats stats;
};

/// Runs the mapper/estimator pipeline over the ledger's free slots.
class Selector {
 public:
  /// `mapper` is borrowed and must outlive the selector; null selects
  /// GreedyMapper (linear-time — the scheduler prices thousands of
  /// placements per trace, see docs/scheduler.md).
  explicit Selector(const map::Mapper* mapper = nullptr,
                    est::EstimateOptions options = {});

  /// Places `instance` on the ledger's free slots; nullopt when the free
  /// slots cannot host it. Deterministic for fixed ledger state.
  std::optional<Placement> place(const pmdl::ModelInstance& instance,
                                 const CapacityLedger& ledger,
                                 const map::SearchContext& context) const;

  const map::Mapper& mapper() const noexcept { return *mapper_; }

 private:
  std::unique_ptr<map::Mapper> owned_;  ///< The default when none injected.
  const map::Mapper* mapper_;
  est::EstimateOptions options_;
};

}  // namespace hmpi::sched
