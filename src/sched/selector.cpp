#include "sched/selector.hpp"

namespace hmpi::sched {

Selector::Selector(const map::Mapper* mapper, est::EstimateOptions options)
    : options_(options) {
  if (mapper == nullptr) {
    owned_ = std::make_unique<map::GreedyMapper>();
    mapper_ = owned_.get();
  } else {
    mapper_ = mapper;
  }
}

std::optional<Placement> Selector::place(const pmdl::ModelInstance& instance,
                                         const CapacityLedger& ledger,
                                         const map::SearchContext& context) const {
  const int needed = instance.size();
  if (needed > ledger.total_free_slots()) return std::nullopt;

  // One candidate per free slot, in machine order: the mapper's injective
  // selection over candidates then allows up to `free_slots` abstract
  // processors per machine. world_rank is a synthetic id (candidate index)
  // — the scheduler has no real processes, only machines.
  std::vector<map::Candidate> candidates;
  candidates.reserve(static_cast<std::size_t>(ledger.total_free_slots()));
  int parent_candidate = -1;
  double parent_speed = -1.0;
  for (int machine : ledger.partition().machines) {
    const int free = ledger.free_slots(machine);
    if (free <= 0) continue;
    // The parent goes to the fastest residual machine (ties to the lowest
    // machine id, which candidate order already delivers via strict >).
    if (ledger.residual_speed(machine) > parent_speed) {
      parent_speed = ledger.residual_speed(machine);
      parent_candidate = static_cast<int>(candidates.size());
    }
    for (int s = 0; s < free; ++s) {
      candidates.push_back(map::Candidate{
          .world_rank = static_cast<int>(candidates.size()),
          .processor = machine});
    }
  }
  if (static_cast<int>(candidates.size()) < needed) return std::nullopt;

  const map::MappingResult result = mapper_->select(
      instance, candidates, parent_candidate, ledger.overlay(), options_,
      context);

  Placement placement;
  placement.machines.resize(static_cast<std::size_t>(needed));
  for (int a = 0; a < needed; ++a) {
    const int c = result.candidate_for_abstract[static_cast<std::size_t>(a)];
    placement.machines[static_cast<std::size_t>(a)] =
        candidates[static_cast<std::size_t>(c)].processor;
  }
  placement.estimated_s = result.estimated_time;
  placement.stats = result.stats;
  return placement;
}

}  // namespace hmpi::sched
