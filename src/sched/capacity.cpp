#include "sched/capacity.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace hmpi::sched {

CapacityLedger::CapacityLedger(const hnoc::Cluster& cluster, Partition partition)
    : cluster_(&cluster),
      partition_(Partition::resolve(std::move(partition), cluster)),
      overlay_(cluster),
      base_(static_cast<std::size_t>(cluster.size()), 0.0),
      holders_(static_cast<std::size_t>(cluster.size())),
      in_partition_(static_cast<std::size_t>(cluster.size()), false) {
  for (int p = 0; p < cluster.size(); ++p) {
    base_[static_cast<std::size_t>(p)] = cluster.processor(p).speed;
  }
  for (int p : partition_.machines) {
    in_partition_[static_cast<std::size_t>(p)] = true;
  }
  total_free_ = static_cast<int>(partition_.machines.size()) *
                partition_.slots_per_machine;
}

void CapacityLedger::lease(int machine, JobId job) {
  support::require(machine >= 0 && machine < cluster_->size() &&
                       in_partition_[static_cast<std::size_t>(machine)],
                   "lease on a machine outside the partition");
  std::vector<JobId>& holders = holders_[static_cast<std::size_t>(machine)];
  support::require(static_cast<int>(holders.size()) <
                       partition_.slots_per_machine,
                   "lease on a machine with no free slot");
  if (holders.empty()) ++busy_machines_;
  holders.push_back(job);
  --total_free_;
  reprice(machine);
}

void CapacityLedger::release(int machine, JobId job) {
  support::require(machine >= 0 && machine < cluster_->size() &&
                       in_partition_[static_cast<std::size_t>(machine)],
                   "release on a machine outside the partition");
  std::vector<JobId>& holders = holders_[static_cast<std::size_t>(machine)];
  const auto it = std::find(holders.begin(), holders.end(), job);
  support::require(it != holders.end(),
                   "release of a lease the job does not hold");
  holders.erase(it);
  if (holders.empty()) --busy_machines_;
  ++total_free_;
  reprice(machine);
}

int CapacityLedger::leases(int machine) const {
  return static_cast<int>(holders_.at(static_cast<std::size_t>(machine)).size());
}

int CapacityLedger::free_slots(int machine) const {
  support::require(in_partition_.at(static_cast<std::size_t>(machine)),
                   "machine outside the partition");
  return partition_.slots_per_machine - leases(machine);
}

double CapacityLedger::base_speed(int machine) const {
  return base_.at(static_cast<std::size_t>(machine));
}

double CapacityLedger::residual_speed(int machine) const {
  return base_speed(machine) / (1.0 + leases(machine));
}

void CapacityLedger::refresh_base(const std::vector<double>& speeds) {
  for (int p : partition_.machines) {
    const auto idx = static_cast<std::size_t>(p);
    if (idx < speeds.size() && speeds[idx] > 0.0) base_[idx] = speeds[idx];
    reprice(p);
  }
}

void CapacityLedger::reprice(int machine) {
  // set_speed re-stamps the overlay's version, so every cached estimate
  // priced under the previous lease state becomes unreachable.
  overlay_.set_speed(machine, residual_speed(machine));
}

}  // namespace hmpi::sched
