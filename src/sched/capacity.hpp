// Residual-capacity accounting: the scheduler-owned NetworkModel overlay.
//
// The interesting scheduling problem on a heterogeneous network is placement
// against *residual* capacity (ISSUE 9; cf. steady-state master-worker
// scheduling, PAPERS.md): a machine leased to a running job is not removed
// from the candidate pool, it is re-priced. The ledger owns a NetworkModel
// whose speed for machine p is base_speed(p) / (1 + leases(p)) — exactly
// what a *new* tenant would get if it landed there, since the processor
// share is split evenly among tenants. Every lease/release mutates the
// overlay through NetworkModel::set_speed, which re-stamps the model's
// version from the process-wide counter, so the EstimateCache can never
// serve an estimate priced against stale lease state (the same invariant a
// recon relies on; tests/estimator/estimate_cache_test.cpp pins it for
// lease/release cycles).
#pragma once

#include <vector>

#include "hnoc/cluster.hpp"
#include "hnoc/network_model.hpp"
#include "sched/job.hpp"
#include "sched/partition.hpp"

namespace hmpi::sched {

/// Lease bookkeeping + the residual-priced NetworkModel overlay.
class CapacityLedger {
 public:
  /// The cluster must outlive the ledger. `partition` is resolved against it.
  CapacityLedger(const hnoc::Cluster& cluster, Partition partition);

  const Partition& partition() const noexcept { return partition_; }

  /// The residual-priced model the Selector searches against. Mutated by
  /// lease/release/refresh_base only (version-bumped each time).
  const hnoc::NetworkModel& overlay() const noexcept { return overlay_; }

  /// Takes one slot on `machine` for `job`. Requires a free slot. A job may
  /// hold several slots on one machine (one per abstract processor placed
  /// there).
  void lease(int machine, JobId job);

  /// Returns one of `job`'s slots on `machine`. Throws when `job` holds no
  /// lease there.
  void release(int machine, JobId job);

  /// Active leases on `machine` (0..slots_per_machine).
  int leases(int machine) const;

  /// Free slots on `machine`.
  int free_slots(int machine) const;

  /// Free slots across the partition (cheap feasibility pre-check).
  int total_free_slots() const noexcept { return total_free_; }

  /// Machines with at least one active lease.
  int busy_machines() const noexcept { return busy_machines_; }

  /// Idle-machine base speed for `machine` (recon-refreshed, not the
  /// cluster's installation-time figure once refresh_base was called).
  double base_speed(int machine) const;

  /// What a new tenant would get on `machine` now: base / (1 + leases).
  double residual_speed(int machine) const;

  /// Re-seeds base speeds from a recon-refreshed estimate vector (indexed by
  /// physical machine; entries outside the partition are ignored) and
  /// re-prices every partition machine under its current lease count.
  void refresh_base(const std::vector<double>& speeds);

 private:
  void reprice(int machine);

  const hnoc::Cluster* cluster_;
  Partition partition_;
  hnoc::NetworkModel overlay_;
  std::vector<double> base_;       ///< Indexed by physical machine.
  /// Per-machine lease holders (one entry per slot taken); indexed by
  /// physical machine. Attribution makes release validate ownership.
  std::vector<std::vector<JobId>> holders_;
  std::vector<bool> in_partition_; ///< Indexed by physical machine.
  int total_free_ = 0;
  int busy_machines_ = 0;
};

}  // namespace hmpi::sched
