// Job descriptors for the hmpictld scheduler (docs/scheduler.md).
//
// A job is what a tenant submits to the multi-tenant scheduler: the
// performance model + parameters that HMPI_Group_create would receive, plus
// the queueing attributes slurmctld attaches to a batch job — priority,
// walltime estimate, arrival time, and (optionally) a checkpoint size that
// makes the job resumable after preemption. The scheduler never inspects the
// model; it instantiates it once at submit time and feeds the instance to the
// same mapper/estimator pipeline HMPI_Group_create uses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mpsim/world.hpp"
#include "pmdl/model.hpp"

namespace hmpi::sched {

/// Scheduler-assigned job identity (monotonic per Scheduler).
using JobId = long long;

enum class JobState {
  kPending,    ///< Queued, waiting for a dispatch.
  kRunning,    ///< Leases held; a completion event is in flight.
  kCompleted,  ///< Finished; result and turnaround recorded.
  kCancelled,  ///< Removed by HMPI_Sched_cancel before completion.
};

/// Stable lower-case name ("pending", "running", ...).
const char* job_state_name(JobState state);

/// Optional executable payload: runs on every process of the job's simulated
/// HMPI run and returns a result token. Tokens must be placement-independent
/// (derived from rank + problem data, never from processor identity or
/// virtual timestamps) so a preempted/re-dispatched job reproduces the
/// uncontended result bit for bit.
using JobBody = std::function<std::uint64_t(mp::Proc&)>;

/// What a tenant submits.
struct JobSpec {
  /// Performance model + parameters (as HMPI_Group_create takes them).
  std::shared_ptr<const pmdl::Model> model;
  std::vector<pmdl::ParamValue> params;

  /// Larger runs first (after aging); ties broken by (arrival, id).
  int priority = 0;

  /// Tenant's walltime estimate in virtual seconds; used as the backfill
  /// feasibility bound when positive, else the estimator's prediction is.
  double walltime_estimate_s = 0.0;

  /// Virtual arrival time of the job (trace-driven submission).
  double arrival_s = 0.0;

  /// Checkpoint size in bytes: >= 0 makes the job resumable (preemption
  /// keeps completed progress and pays a checkpoint transfer on resume);
  /// negative means a preempted job restarts from scratch.
  long long checkpoint_bytes = -1;

  /// Optional simulated-run payload (see JobBody). When the scheduler's
  /// `execute` knob is on and a body is present, the job really runs on the
  /// event engine and the measured makespan is its service time.
  JobBody body;

  /// Diagnostic label (defaults to the model name).
  std::string name;
};

/// Observable job status (HMPI_Sched_poll).
struct JobInfo {
  JobId id = -1;
  JobState state = JobState::kPending;
  std::string name;
  int priority = 0;
  double arrival_s = 0.0;
  double start_s = -1.0;    ///< First dispatch (virtual); -1 before it.
  double finish_s = -1.0;   ///< Completion (virtual); -1 before it.
  double service_s = 0.0;   ///< Total virtual service received.
  int preemptions = 0;      ///< Times the job was revoked and requeued.
  bool backfilled = false;  ///< Last dispatch slid past the queue head.
  std::uint64_t result = 0; ///< Rank-0 result token (executed jobs).
  std::vector<int> machines;  ///< Physical machine per abstract processor.
};

}  // namespace hmpi::sched
