#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace hmpi::support {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  require(!columns_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == columns_.size(),
          "Table row has " + std::to_string(cells.size()) + " cells, expected " +
              std::to_string(columns_.size()));
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  os << "== " << title_ << "\n";
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << "\n";
  };
  line(columns_);
  std::vector<std::string> rule(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    rule[c] = std::string(width[c], '-');
  }
  line(rule);
  for (const auto& row : rows_) line(row);
}

void Table::print_csv(std::ostream& os) const {
  auto csv_line = [&](const std::vector<std::string>& cells) {
    os << "csv:";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : ",") << cells[c];
    }
    os << "\n";
  };
  csv_line(columns_);
  for (const auto& row : rows_) csv_line(row);
}

}  // namespace hmpi::support
