#include "support/thread_pool.hpp"

#include "support/error.hpp"

namespace hmpi::support {

ThreadPool::ThreadPool(int threads) : threads_(threads) {
  require(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::drain_job() {
  for (;;) {
    int index;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (job_.next >= job_.count) return;
      index = job_.next++;
    }
    try {
      (*job_.task)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (job_.error_index < 0 || index < job_.error_index) {
        job_.error = std::current_exception();
        job_.error_index = index;
      }
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (generation_ != seen && job_.next < job_.count);
      });
      if (shutdown_) return;
      seen = generation_;
      ++job_.active;
    }
    drain_job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --job_.active;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(int count, const std::function<void(int)>& task) {
  require(count >= 0, "parallel_for needs a non-negative count");
  require(static_cast<bool>(task), "parallel_for needs a task");
  if (count == 0) return;

  std::lock_guard<std::mutex> submit(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_.task = &task;
    job_.count = count;
    job_.next = 0;
    job_.active = 0;
    job_.error = nullptr;
    job_.error_index = -1;
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller is a worker too: a pool of size 1 runs everything inline.
  drain_job();

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job_.active == 0; });
    error = job_.error;
    job_.task = nullptr;
    job_.count = 0;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace hmpi::support
