// Per-simulated-process storage.
//
// The thread engine runs each simulated process on its own OS thread, so
// thread_local is a perfectly good "per process" qualifier. The event engine
// multiplexes many process fibers over one host thread, where a plain
// thread_local would be shared — and clobbered — across processes. This
// header is the engine-agnostic replacement: storage keyed by the *simulated
// process*, whatever happens to be hosting it.
//
// The execution engine installs the running fiber's slot table around every
// resume via ProcessLocalsGuard; when no table is installed the calling
// thread itself is the process and a thread_local table is used. Keys are
// addresses of translation-unit-local tag objects, so independent users
// cannot collide.
#pragma once

#include <memory>
#include <unordered_map>

namespace hmpi::support {

/// Slot table: one type-erased value per key.
using ProcessLocals = std::unordered_map<const void*, std::shared_ptr<void>>;

/// Installs `locals` as the calling thread's process-local table for the
/// guard's lifetime; restores the previous table on destruction. Engine use
/// only (pass the table owned by the fiber being resumed).
class ProcessLocalsGuard {
 public:
  explicit ProcessLocalsGuard(ProcessLocals* locals) noexcept;
  ~ProcessLocalsGuard();
  ProcessLocalsGuard(const ProcessLocalsGuard&) = delete;
  ProcessLocalsGuard& operator=(const ProcessLocalsGuard&) = delete;

 private:
  ProcessLocals* saved_;
};

/// The slot for `key` in the current simulated process's table. The returned
/// reference is invalidated by other process_local_slot calls (rehash); use
/// it immediately.
std::shared_ptr<void>& process_local_slot(const void* key);

/// Typed convenience: the current process's value for `key`, default-
/// constructed on first access.
template <typename T>
T& process_local(const void* key) {
  std::shared_ptr<void>& slot = process_local_slot(key);
  if (slot == nullptr) slot = std::make_shared<T>();
  return *static_cast<T*>(slot.get());
}

}  // namespace hmpi::support
