// Deterministic random number generation for workload generators and tests.
//
// All randomness in the library flows through SplitMix64 so that every
// experiment is reproducible from a single seed, independent of the standard
// library's distribution implementations.
#pragma once

#include <cstdint>

namespace hmpi::support {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG with trivially
/// serialisable state. Used instead of std::mt19937 so that generated
/// workloads are identical across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Multiply-shift rejection-free mapping (slight bias negligible for
    // workload generation purposes).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double_in(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Derives an independent child stream (for per-process generators).
  Rng split() noexcept { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  std::uint64_t state_;
};

}  // namespace hmpi::support
