// A small chunked thread pool for the group-selection search.
//
// The parallel mappers (mapper/mapper.hpp) partition their search space into
// independent chunks and reduce the per-chunk results in a fixed order, so
// the *scheduling* of chunks onto workers is free to be nondeterministic —
// all determinism lives in the reduction. This pool provides exactly that
// contract: parallel_for(count, task) runs task(0..count-1) across the
// workers, blocks until every index completed, and rethrows the
// lowest-index exception if any task threw.
//
// ThreadPool(n) keeps n-1 background workers; the calling thread acts as the
// n-th worker inside parallel_for, so a pool of size 1 runs everything
// inline on the caller (no threads, no synchronisation overhead) — which is
// what makes "search_threads = 1" byte-identical to the pre-parallel code.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hmpi::support {

class ThreadPool {
 public:
  /// Starts `threads - 1` background workers (`threads` >= 1).
  explicit ThreadPool(int threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins the workers. Must not race an in-flight parallel_for.
  ~ThreadPool();

  /// Total workers, including the calling thread (>= 1).
  int size() const noexcept { return threads_; }

  /// Runs task(i) for every i in [0, count), distributed over the workers,
  /// and blocks until all complete. Indices are claimed dynamically (a slow
  /// chunk does not hold up idle workers). If tasks throw, the exception of
  /// the lowest index is rethrown after every task finished. Safe to call
  /// from several threads; concurrent calls are serialised. Must not be
  /// called from inside one of its own tasks (no nesting).
  void parallel_for(int count, const std::function<void(int)>& task);

 private:
  struct Job {
    const std::function<void(int)>* task = nullptr;
    int count = 0;
    int next = 0;       // next index to claim (under mutex_)
    int active = 0;     // workers currently inside the job
    std::exception_ptr error;
    int error_index = -1;
  };

  void worker_loop();
  /// Claims and runs indices of the current job until none remain.
  void drain_job();

  std::mutex submit_mutex_;  // serialises parallel_for callers

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: a job arrived / shutdown
  std::condition_variable done_cv_;  // caller: the job finished
  Job job_;
  std::uint64_t generation_ = 0;  // bumped per job so workers never re-enter
  bool shutdown_ = false;

  int threads_ = 1;
  std::vector<std::thread> workers_;
};

}  // namespace hmpi::support
