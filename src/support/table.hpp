// Plain-text table printer shared by the benchmark harnesses.
//
// Every bench binary prints the series a paper figure reports as an aligned
// table plus a machine-readable CSV block, so results can be eyeballed and
// re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hmpi::support {

/// Column-aligned text table with a CSV emitter.
class Table {
 public:
  /// `title` is printed above the table; `columns` are the header names.
  Table(std::string title, std::vector<std::string> columns);

  /// Appends one row; the cell count must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string num(double v, int precision = 4);
  static std::string num(long long v);

  /// Writes the aligned human-readable table.
  void print(std::ostream& os) const;

  /// Writes a `csv:`-prefixed machine-readable block (one line per row).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

  const std::string& title() const noexcept { return title_; }
  const std::vector<std::string>& columns() const noexcept { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hmpi::support
