// Small owning 2-D array used throughout the library (dependency matrices,
// dense matrix blocks, link-volume tables, ...).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/error.hpp"

namespace hmpi::support {

/// Row-major owning 2-D array with bounds-checked element access.
///
/// Kept deliberately minimal: the library needs a safe rectangular container,
/// not a linear-algebra type. Arithmetic lives with the users (e.g. the
/// matmul app's block kernels operate on spans of rows).
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix with every element set to `init`.
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  /// Bounds-checked element access.
  T& at(std::size_t r, std::size_t c) {
    check(r, c);
    return data_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    check(r, c);
    return data_[r * cols_ + c];
  }

  /// Unchecked element access for hot loops.
  T& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// View of one row.
  std::span<T> row(std::size_t r) {
    check(r, 0);
    return std::span<T>(data_).subspan(r * cols_, cols_);
  }
  std::span<const T> row(std::size_t r) const {
    check(r, 0);
    return std::span<const T>(data_).subspan(r * cols_, cols_);
  }

  /// Whole storage, row-major.
  std::span<T> flat() noexcept { return data_; }
  std::span<const T> flat() const noexcept { return data_; }

  void fill(const T& value) { data_.assign(data_.size(), value); }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || (cols_ == 0 ? c != 0 : c >= cols_)) {
      throw InvalidArgument("Matrix index out of range");
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace hmpi::support
