#include "support/process_local.hpp"

namespace hmpi::support {

namespace {

// The table for threads that are themselves a simulated process (thread
// engine) or are no process at all (host threads, e.g. a mapper pool worker).
thread_local ProcessLocals tls_locals;

// Overrides tls_locals while a fiber is resumed on this thread.
thread_local ProcessLocals* tl_current = nullptr;

}  // namespace

ProcessLocalsGuard::ProcessLocalsGuard(ProcessLocals* locals) noexcept
    : saved_(tl_current) {
  tl_current = locals;
}

ProcessLocalsGuard::~ProcessLocalsGuard() { tl_current = saved_; }

std::shared_ptr<void>& process_local_slot(const void* key) {
  ProcessLocals& table = tl_current != nullptr ? *tl_current : tls_locals;
  return table[key];
}

}  // namespace hmpi::support
