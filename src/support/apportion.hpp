// Proportional integer apportionment (largest-remainder method).
//
// The workhorse of heterogeneous data distribution: split `total` indivisible
// units across parties proportionally to their (real-valued) shares so that
// the result sums to `total` exactly. Used by the matmul generalised-block
// partition and the Jacobi row distribution.
#pragma once

#include <span>
#include <vector>

namespace hmpi::support {

/// Largest-remainder apportionment with deterministic tie-breaking by index.
/// Shares must be non-negative with a positive sum; a zero share receives 0.
std::vector<int> apportion(int total, std::span<const double> shares);

}  // namespace hmpi::support
