#include "support/apportion.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/error.hpp"

namespace hmpi::support {

std::vector<int> apportion(int total, std::span<const double> shares) {
  support::require(total >= 0, "apportion: negative total");
  support::require(!shares.empty(), "apportion: no shares");
  double sum = 0.0;
  for (double s : shares) {
    support::require(s >= 0.0, "apportion: negative share");
    sum += s;
  }
  support::require(sum > 0.0, "apportion: all shares zero");

  std::vector<int> result(shares.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  int assigned = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const double exact = total * shares[i] / sum;
    result[i] = static_cast<int>(std::floor(exact));
    assigned += result[i];
    remainders.push_back({exact - std::floor(exact), i});
  }
  // Largest remainder first; ties broken by lower index (determinism).
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (int leftover = total - assigned; leftover > 0; --leftover) {
    result[remainders[static_cast<std::size_t>(total - assigned - leftover)]
               .second] += 1;
  }
  return result;
}

}  // namespace hmpi::support
