// Error types shared across the HMPI library.
//
// Every subsystem throws a subclass of hmpi::Error so that callers can catch
// library failures distinctly from std exceptions while still getting a
// std::exception-compatible what() string.
#pragma once

#include <stdexcept>
#include <string>

namespace hmpi {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid argument or configuration supplied by the caller.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Misuse of the message-passing layer (bad rank, tag, communicator, ...).
class MpError : public Error {
 public:
  explicit MpError(const std::string& what) : Error(what) {}
};

/// The simulated world detected that every runnable process is blocked.
class DeadlockError : public MpError {
 public:
  explicit DeadlockError(const std::string& what) : MpError(what) {}
};

/// A receive was posted against a peer that has (injected-fault) crashed and
/// can never satisfy it. Raised in O(ms) of wall time instead of waiting out
/// the deadlock timeout.
class PeerFailedError : public MpError {
 public:
  PeerFailedError(const std::string& what, int peer_world_rank,
                  double failure_time)
      : MpError(what),
        peer_world_rank_(peer_world_rank),
        failure_time_(failure_time) {}

  /// World rank of the crashed peer.
  int peer_world_rank() const noexcept { return peer_world_rank_; }
  /// Virtual time at which the peer crashed.
  double failure_time() const noexcept { return failure_time_; }

 private:
  int peer_world_rank_ = -1;
  double failure_time_ = 0.0;
};

/// A blocked operation was interrupted because its communicator's context was
/// revoked (a surviving group member declared the group failed). The ULFM
/// MPI_Comm_revoke analogue: it propagates failure knowledge to members that
/// were blocked on healthy-but-escaped peers.
class RevokedError : public MpError {
 public:
  explicit RevokedError(const std::string& what) : MpError(what) {}
};

/// Internal control-flow exception that unwinds the body of a process killed
/// by an injected FaultPlan crash. World::run treats it as an expected event
/// (the run continues with the surviving processes), never as a failure.
class ProcessKilledError : public MpError {
 public:
  explicit ProcessKilledError(const std::string& what) : MpError(what) {}
};

/// Error in the performance-model definition language (lex/parse/sema/eval).
class PmdlError : public Error {
 public:
  PmdlError(const std::string& what, int line, int column)
      : Error("pmdl:" + std::to_string(line) + ":" + std::to_string(column) +
              ": " + what),
        line_(line),
        column_(column) {}
  explicit PmdlError(const std::string& what) : Error("pmdl: " + what) {}

  /// 1-based source line of the offending token, or 0 if not applicable.
  int line() const noexcept { return line_; }
  /// 1-based source column of the offending token, or 0 if not applicable.
  int column() const noexcept { return column_; }

 private:
  int line_ = 0;
  int column_ = 0;
};

/// Failure in the HMPI runtime proper (group management, recon, ...).
class RuntimeError : public Error {
 public:
  explicit RuntimeError(const std::string& what) : Error(what) {}
};

namespace support {

/// Throws InvalidArgument with `what` unless `cond` holds.
inline void require(bool cond, const std::string& what) {
  if (!cond) throw InvalidArgument(what);
}

}  // namespace support
}  // namespace hmpi
