// Cross-layer fidelity: the estimator and the mpsim execution engine share
// one cost model (DESIGN.md §4), so for a program that executes exactly the
// schedule a model describes, the predicted makespan must equal the
// simulated makespan to the last bit — not approximately.
//
// Property-style: randomly generated schedules (volumes, links, phase
// sequences) over randomly generated heterogeneous clusters, swept over
// seeds with TEST_P.
#include <gtest/gtest.h>

#include <vector>

#include "estimator/estimator.hpp"
#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"
#include "support/rng.hpp"

namespace hmpi::est {
namespace {

using pmdl::InstanceBuilder;
using pmdl::ModelInstance;
using pmdl::ScheduleSink;

/// One generated schedule: volumes per abstract processor, link volumes,
/// and an ordered list of phases.
struct Phase {
  enum Kind { kParCompute, kTransfer } kind;
  double percent = 0.0;  // of the actor's total volume / link volume
  int src = 0;           // kTransfer
  int dst = 0;           // kTransfer
};

struct Schedule {
  int p = 0;
  std::vector<double> volumes;
  std::vector<std::vector<double>> link_bytes;  // [src][dst]
  std::vector<Phase> phases;
};

Schedule generate_schedule(std::uint64_t seed) {
  support::Rng rng(seed);
  Schedule s;
  s.p = static_cast<int>(rng.next_in(2, 5));
  for (int a = 0; a < s.p; ++a) {
    s.volumes.push_back(rng.next_double_in(10.0, 500.0));
  }
  s.link_bytes.assign(static_cast<std::size_t>(s.p),
                      std::vector<double>(static_cast<std::size_t>(s.p), 0.0));
  for (int a = 0; a < s.p; ++a) {
    for (int b = 0; b < s.p; ++b) {
      if (a != b && rng.next_double() < 0.6) {
        // Whole hundreds of bytes so that percent * bytes / 100 is integral
        // for the percent values below (mpsim messages carry whole bytes).
        s.link_bytes[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
            static_cast<double>(rng.next_in(10, 20000)) * 100.0;
      }
    }
  }
  const double percents[] = {10.0, 20.0, 25.0, 50.0};
  const int phase_count = static_cast<int>(rng.next_in(3, 12));
  for (int i = 0; i < phase_count; ++i) {
    Phase phase;
    if (rng.next_double() < 0.5) {
      phase.kind = Phase::kParCompute;
      phase.percent = rng.next_double_in(5.0, 40.0);  // compute stays double
    } else {
      phase.kind = Phase::kTransfer;
      phase.src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(s.p)));
      do {
        phase.dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(s.p)));
      } while (phase.dst == phase.src);
      phase.percent = percents[rng.next_below(4)];
    }
    s.phases.push_back(phase);
  }
  return s;
}

hnoc::Cluster generate_cluster(std::uint64_t seed, int machines) {
  support::Rng rng(seed ^ 0xabcdef);
  hnoc::ClusterBuilder b;
  for (int i = 0; i < machines; ++i) {
    b.add("m" + std::to_string(i), rng.next_double_in(5.0, 200.0));
  }
  b.network(rng.next_double_in(5e-5, 5e-4), rng.next_double_in(1e6, 5e7));
  return b.build();
}

ModelInstance instance_for(const Schedule& s) {
  InstanceBuilder b("generated");
  b.shape({s.p});
  for (int a = 0; a < s.p; ++a) {
    b.node_volume(a, s.volumes[static_cast<std::size_t>(a)]);
  }
  for (int a = 0; a < s.p; ++a) {
    for (int c = 0; c < s.p; ++c) {
      const double bytes = s.link_bytes[static_cast<std::size_t>(a)][static_cast<std::size_t>(c)];
      if (bytes > 0.0) b.link(a, c, bytes);
    }
  }
  const Schedule schedule = s;  // captured by value
  b.scheme([schedule](ScheduleSink& sink) {
    for (const Phase& phase : schedule.phases) {
      if (phase.kind == Phase::kParCompute) {
        sink.par_begin();
        for (long long a = 0; a < schedule.p; ++a) {
          sink.par_iter_begin();
          const long long c[1] = {a};
          sink.compute(c, phase.percent);
        }
        sink.par_end();
      } else {
        const long long src[1] = {phase.src};
        const long long dst[1] = {phase.dst};
        sink.transfer(src, dst, phase.percent);
      }
    }
  });
  return b.build();
}

class FidelityP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FidelityP, EstimateEqualsSimulatedMakespan) {
  const std::uint64_t seed = GetParam();
  const Schedule schedule = generate_schedule(seed);
  const hnoc::Cluster cluster = generate_cluster(seed, schedule.p);
  hnoc::NetworkModel net(cluster);

  // Identity mapping: abstract processor a on machine a.
  std::vector<int> mapping(static_cast<std::size_t>(schedule.p));
  for (int a = 0; a < schedule.p; ++a) mapping[static_cast<std::size_t>(a)] = a;

  const ModelInstance instance = instance_for(schedule);
  mp::World::Options options;  // default overheads, matching the estimator
  const double predicted =
      estimate_time(instance, mapping, net,
                    EstimateOptions{options.send_overhead_s,
                                    options.recv_overhead_s});

  // Execute the same schedule for real: one process per abstract processor.
  auto result = mp::World::run_one_per_processor(
      cluster,
      [&](mp::Proc& proc) {
        mp::Comm comm = proc.world_comm();
        const int me = proc.rank();
        int transfer_seq = 0;
        for (const Phase& phase : schedule.phases) {
          if (phase.kind == Phase::kParCompute) {
            proc.compute(phase.percent / 100.0 *
                         schedule.volumes[static_cast<std::size_t>(me)]);
          } else {
            const int tag = 100 + transfer_seq++;
            if (me == phase.src) {
              const double bytes =
                  phase.percent / 100.0 *
                  schedule.link_bytes[static_cast<std::size_t>(phase.src)]
                                     [static_cast<std::size_t>(phase.dst)];
              comm.send_placeholder(static_cast<std::size_t>(bytes), phase.dst,
                                    tag);
            } else if (me == phase.dst) {
              comm.recv_placeholder(phase.src, tag);
            }
          }
        }
      },
      options);

  EXPECT_NEAR(result.makespan, predicted, 1e-9 + 1e-12 * predicted)
      << "seed " << seed << ": the shared cost model diverged";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FidelityP,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233, 377, 610, 987));

}  // namespace
}  // namespace hmpi::est
