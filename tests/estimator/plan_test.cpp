// Tests of the compiled cost IR (estimator/plan.hpp): the compiled
// evaluator and the delta evaluator must be BIT-IDENTICAL to the
// tree-walking interpreter — that invariant is what lets the runtime enable
// the compiled path by default without perturbing group selection.
#include "estimator/plan.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "estimator/estimate_cache.hpp"
#include "estimator/estimator.hpp"
#include "estimator/fingerprint.hpp"
#include "hnoc/cluster.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace hmpi::est {
namespace {

using pmdl::InstanceBuilder;
using pmdl::ModelInstance;
using pmdl::ScheduleSink;

#define EXPECT_BIT_EQ(a, b)                              \
  EXPECT_EQ(std::bit_cast<std::uint64_t>((double)(a)),   \
            std::bit_cast<std::uint64_t>((double)(b)))   \
      << "values " << (a) << " vs " << (b)

#define ASSERT_BIT_EQ(a, b)                              \
  ASSERT_EQ(std::bit_cast<std::uint64_t>((double)(a)),   \
            std::bit_cast<std::uint64_t>((double)(b)))   \
      << "values " << (a) << " vs " << (b)

/// An EM3D-like scheme instance on `p` abstract processors with a boundary
/// exchange ring followed by a parallel compute phase.
ModelInstance ring_instance(int p, support::Rng& rng) {
  InstanceBuilder b("ring");
  b.shape({p});
  for (int i = 0; i < p; ++i) b.node_volume(i, 50.0 + rng.next_double() * 1e4);
  for (int i = 0; i < p; ++i) {
    b.link(i, (i + 1) % p, 100.0 + rng.next_double() * 1e6);
  }
  b.scheme([p](ScheduleSink& s) {
    s.par_begin();
    for (long long i = 0; i < p; ++i) {
      s.par_iter_begin();
      const long long src[1] = {i};
      const long long dst[1] = {(i + 1) % p};
      s.transfer(src, dst, 100.0);
    }
    s.par_end();
    s.par_begin();
    for (long long i = 0; i < p; ++i) {
      s.par_iter_begin();
      const long long c[1] = {i};
      s.compute(c, 100.0);
    }
    s.par_end();
  });
  return b.build();
}

/// A randomly generated, valid-by-construction scheme: sequences of
/// compute/transfer activations with nested par blocks. Exercises op
/// orderings (and checkpoint placements) no hand-written model would.
ModelInstance random_instance(int p, std::uint64_t seed) {
  support::Rng rng(seed);
  InstanceBuilder b("random");
  b.shape({p});
  for (int i = 0; i < p; ++i) b.node_volume(i, rng.next_double() * 1e4);
  const int links = 2 * p;
  for (int i = 0; i < links; ++i) {
    const int src =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(p)));
    const int dst =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(p)));
    if (src == dst) continue;  // the builder rejects self links
    b.link(src, dst, rng.next_double() * 1e6);
  }
  // The generator lambda gets its own deterministic stream so the builder's
  // draws above do not shift the scheme shape.
  b.scheme([p, seed](ScheduleSink& s) {
    support::Rng r(seed ^ 0x5eedULL);
    auto emit_leaf = [&] {
      const long long a = static_cast<long long>(
          r.next_below(static_cast<std::uint64_t>(p)));
      if (r.next_below(2) == 0) {
        const long long c[1] = {a};
        s.compute(c, 25.0 + r.next_double() * 75.0);
      } else {
        const long long d = static_cast<long long>(
            r.next_below(static_cast<std::uint64_t>(p)));
        const long long src[1] = {a}, dst[1] = {d};  // s==d sometimes: must drop
        s.transfer(src, dst, 25.0 + r.next_double() * 75.0);
      }
    };
    auto emit_block = [&](auto&& self, int depth) -> void {
      const int items = 2 + static_cast<int>(r.next_below(5));
      for (int i = 0; i < items; ++i) {
        if (depth < 2 && r.next_below(4) == 0) {
          const int iters = 1 + static_cast<int>(r.next_below(3));
          s.par_begin();
          for (int it = 0; it < iters; ++it) {
            s.par_iter_begin();
            self(self, depth + 1);
          }
          s.par_end();
        } else {
          emit_leaf();
        }
      }
    };
    emit_block(emit_block, 0);
  });
  return b.build();
}

/// Scheme-less instance: the aggregate fallback bound.
ModelInstance fallback_instance(int p, std::uint64_t seed) {
  support::Rng rng(seed);
  InstanceBuilder b("fallback");
  b.shape({p});
  for (int i = 0; i < p; ++i) b.node_volume(i, rng.next_double() * 1e4);
  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < p; ++j) {
      if (i != j && rng.next_below(3) == 0) {
        b.link(i, j, rng.next_double() * 1e6);
      }
    }
  }
  return b.build();
}

std::vector<int> random_mapping(int p, int machines, support::Rng& rng) {
  std::vector<int> m(static_cast<std::size_t>(p));
  for (int& x : m) {
    x = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(machines)));
  }
  return m;
}

TEST(Plan, CompiledMatchesInterpreterBitForBit) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  support::Rng rng(7);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const ModelInstance inst =
        seed % 3 == 0 ? ring_instance(9, rng) : random_instance(6, seed);
    const Plan plan(inst);
    EXPECT_TRUE(plan.from_scheme());
    for (int trial = 0; trial < 8; ++trial) {
      const auto m = random_mapping(inst.size(), net.size(), rng);
      ASSERT_BIT_EQ(plan.evaluate(m, net),
                    estimate_time(inst, m, net, EstimateOptions()));
    }
  }
}

TEST(Plan, FallbackMatchesInterpreterBitForBit) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  support::Rng rng(11);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const ModelInstance inst = fallback_instance(7, seed);
    const Plan plan(inst);
    EXPECT_FALSE(plan.from_scheme());
    for (int trial = 0; trial < 8; ++trial) {
      const auto m = random_mapping(inst.size(), net.size(), rng);
      ASSERT_BIT_EQ(plan.evaluate(m, net),
                    estimate_time(inst, m, net, EstimateOptions()));
    }
  }
}

TEST(Plan, LoweringDropsSelfTransfersAndFoldsPercent) {
  auto inst = InstanceBuilder("t")
                  .shape({2})
                  .node_volume(0, 100.0)
                  .link(0, 1, 1e6)
                  .scheme([](ScheduleSink& s) {
                    const long long a[1] = {0}, b[1] = {1};
                    s.compute(a, 50.0);
                    s.transfer(a, a, 100.0);  // self: dropped at compile
                    s.transfer(a, b, 25.0);
                  })
                  .build();
  const Plan plan(inst);
  ASSERT_EQ(plan.ops().size(), 2u);
  EXPECT_EQ(plan.ops()[0].kind, PlanOp::Kind::kCompute);
  EXPECT_BIT_EQ(plan.ops()[0].value, 100.0 * 50.0 / 100.0);
  EXPECT_EQ(plan.ops()[1].kind, PlanOp::Kind::kTransfer);
  EXPECT_BIT_EQ(plan.ops()[1].value, 1e6 * 25.0 / 100.0);
  EXPECT_EQ(plan.first_touch(0), 0u);
  EXPECT_EQ(plan.first_touch(1), 1u);
}

TEST(Plan, EvaluateValidatesMapping) {
  auto inst = InstanceBuilder("t").shape({2}).build();
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  const Plan plan(inst);
  const int too_short[1] = {0};
  EXPECT_THROW(plan.evaluate(too_short, net), hmpi::InvalidArgument);
  const int bad_proc[2] = {0, 99};
  EXPECT_THROW(plan.evaluate(bad_proc, net), hmpi::InvalidArgument);
}

/// The tentpole invariant: a staged-move replay is bit-identical to a full
/// evaluation of the staged mapping, across random swap/substitution
/// sequences with commits, rejections, and memoised values interleaved.
void run_delta_invariant(const ModelInstance& inst, std::uint64_t seed) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  support::Rng rng(seed);
  const Plan plan(inst);
  DeltaEvaluator delta(plan, net, EstimateOptions());

  std::vector<int> mapping = random_mapping(inst.size(), net.size(), rng);
  ASSERT_BIT_EQ(delta.reset(mapping), plan.evaluate(mapping, net));

  for (int step = 0; step < 200; ++step) {
    std::vector<DeltaEvaluator::Move> moves;
    if (rng.next_below(2) == 0) {
      // Swap two slots' processors (the SwapRefine move).
      const int i = static_cast<int>(rng.next_below(mapping.size()));
      const int j = static_cast<int>(rng.next_below(mapping.size()));
      moves.push_back({i, mapping[static_cast<std::size_t>(j)]});
      moves.push_back({j, mapping[static_cast<std::size_t>(i)]});
    } else {
      // Substitute one slot's processor (the annealing move).
      const int i = static_cast<int>(rng.next_below(mapping.size()));
      const int p = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(net.size())));
      moves.push_back({i, p});
    }
    const auto staged = delta.stage(moves);
    const std::vector<int> staged_copy(staged.begin(), staged.end());
    const double full = plan.evaluate(staged_copy, net);

    const bool memoised = rng.next_below(4) == 0;
    if (memoised) {
      delta.set_staged_value(full);  // simulate an EstimateCache hit
    } else {
      ASSERT_BIT_EQ(delta.replay(), full);
    }
    if (rng.next_below(2) == 0) {
      delta.commit();
      mapping = staged_copy;
      ASSERT_BIT_EQ(delta.committed_time(), full);
    }
    // A rejected proposal leaves the committed state untouched.
    ASSERT_BIT_EQ(delta.committed_time(), plan.evaluate(mapping, net));
  }
}

TEST(DeltaEvaluator, SchemeReplayMatchesFullEvaluationBitForBit) {
  support::Rng rng(3);
  run_delta_invariant(ring_instance(9, rng), 101);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    run_delta_invariant(random_instance(6, seed), 200 + seed);
  }
}

TEST(DeltaEvaluator, FallbackReplayMatchesFullEvaluationBitForBit) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    run_delta_invariant(fallback_instance(7, seed), 300 + seed);
  }
}

TEST(DeltaEvaluator, UntouchedSlotShortCircuits) {
  // Processor 2 exists in the arrangement but no scheme op touches it:
  // moving it must answer from the committed value without any replay.
  auto inst = InstanceBuilder("t")
                  .shape({3})
                  .node_volume(0, 100.0)
                  .link(0, 1, 1e6)
                  .scheme([](ScheduleSink& s) {
                    const long long a[1] = {0}, b[1] = {1};
                    s.compute(a, 100.0);
                    s.transfer(a, b, 100.0);
                  })
                  .build();
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  const Plan plan(inst);
  EXPECT_EQ(plan.first_touch(2), Plan::kNeverTouched);

  DeltaEvaluator delta(plan, net, EstimateOptions());
  const std::vector<int> m{0, 1, 2};
  const double t0 = delta.reset(m);
  const DeltaEvaluator::Move move[] = {{2, 5}};
  delta.stage(move);
  EXPECT_BIT_EQ(delta.replay(), t0);
  EXPECT_EQ(delta.replays(), 0);
  delta.commit();
  EXPECT_EQ(delta.mapping()[2], 5);
  EXPECT_BIT_EQ(delta.committed_time(), t0);
  // And the committed mapping update must feed later diffs correctly.
  const std::vector<int> expect{0, 1, 5};
  EXPECT_BIT_EQ(plan.evaluate(expect, net), t0);
}

TEST(DeltaEvaluator, SuffixReplayIsShorterThanFullEvaluation) {
  support::Rng rng(5);
  const ModelInstance inst = ring_instance(9, rng);
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  const Plan plan(inst);
  DeltaEvaluator delta(plan, net, EstimateOptions());
  const std::vector<int> m{0, 1, 2, 3, 4, 5, 6, 7, 8};
  delta.reset(m);
  // Slot 8 first appears late in the op stream; a stream of slot-8 proposals
  // must replay strictly fewer ops than full evaluations would.
  ASSERT_GT(plan.first_touch(8), 0u);
  const int proposals = 50;
  for (int i = 0; i < proposals; ++i) {
    // Never propose the committed processor (8): that would short-circuit.
    const DeltaEvaluator::Move move[] = {{8, i % (net.size() - 1)}};
    delta.stage(move);
    delta.replay();
  }
  EXPECT_EQ(delta.replays(), proposals);
  EXPECT_LT(delta.ops_replayed(),
            static_cast<long long>(plan.op_count()) * proposals);
}

TEST(PlanCache, CompilesOnceAndCounts) {
  support::Rng rng(9);
  const ModelInstance inst = ring_instance(5, rng);
  PlanCache cache;
  bool compiled = false;
  double seconds = -1.0;
  const auto p1 = cache.get(inst, &compiled, &seconds);
  EXPECT_TRUE(compiled);
  EXPECT_GE(seconds, 0.0);
  const auto p2 = cache.get(inst, &compiled, &seconds);
  EXPECT_FALSE(compiled);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(EstimateCache, PlanBackedMissesMatchInterpreterEntries) {
  support::Rng rng(13);
  const ModelInstance inst = ring_instance(6, rng);
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  const Plan plan(inst);
  const EstimateOptions options;
  const std::uint64_t fp = estimate_fingerprint(inst, options);

  EstimateCache via_plan;
  EstimateCache via_interp;
  for (int trial = 0; trial < 10; ++trial) {
    const auto m = random_mapping(inst.size(), net.size(), rng);
    bool hit = true;
    const double a = via_plan.estimate(fp, inst, m, net, options, &hit, &plan);
    const double b = via_interp.estimate(inst, m, net, options);
    ASSERT_BIT_EQ(a, b);
    // And a plan-backed hit returns the same stored bits.
    ASSERT_BIT_EQ(via_plan.estimate(fp, inst, m, net, options, &hit, &plan), a);
    EXPECT_TRUE(hit);
  }
}

}  // namespace
}  // namespace hmpi::est
