#include "estimator/estimate_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "hnoc/cluster.hpp"
#include "sched/capacity.hpp"
#include "support/rng.hpp"

namespace hmpi::est {
namespace {

using pmdl::InstanceBuilder;
using pmdl::ModelInstance;
using pmdl::ScheduleSink;

/// Model with computation and a communication ring, so estimates depend on
/// both speeds and links.
ModelInstance ring_model(int p) {
  InstanceBuilder b("ring");
  b.shape({p});
  for (int a = 0; a < p; ++a) {
    b.node_volume(a, 10.0 * (a + 1));
    b.link(a, (a + 1) % p, 1e5 * (a + 1));
  }
  b.scheme([p](ScheduleSink& s) {
    s.par_begin();
    for (long long a = 0; a < p; ++a) {
      s.par_iter_begin();
      const long long c[1] = {a};
      s.compute(c, 100.0);
    }
    s.par_end();
    for (long long a = 0; a < p; ++a) {
      const long long src[1] = {a}, dst[1] = {(a + 1) % p};
      s.transfer(src, dst, 100.0);
    }
  });
  return b.build();
}

TEST(EstimateCache, AgreesBitForBitWithUncachedOnRandomMappings) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  ModelInstance inst = ring_model(5);
  EstimateCache cache;
  support::Rng rng(0xcafe);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> mapping(5);
    for (int& p : mapping) {
      p = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(net.size())));
    }
    const double plain = estimate_time(inst, mapping, net, EstimateOptions{});
    const double cached = cache.estimate(inst, mapping, net, EstimateOptions{});
    EXPECT_EQ(plain, cached);  // exact, not approximate
    // A second lookup must hit and return the identical bits.
    bool hit = false;
    EXPECT_EQ(cache.estimate(inst, mapping, net, EstimateOptions{}, &hit), plain);
    EXPECT_TRUE(hit);
  }
  EXPECT_GT(cache.hits(), 0);
  EXPECT_GT(cache.misses(), 0);
}

TEST(EstimateCache, RepeatLookupsHit) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(4);
  hnoc::NetworkModel net(cluster);
  ModelInstance inst = ring_model(3);
  EstimateCache cache;
  const std::vector<int> mapping{0, 1, 2};
  bool hit = true;
  cache.estimate(inst, mapping, net, EstimateOptions{}, &hit);
  EXPECT_FALSE(hit);
  cache.estimate(inst, mapping, net, EstimateOptions{}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(EstimateCache, SetSpeedInvalidatesThroughTheVersionCounter) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(4, 50.0);
  hnoc::NetworkModel net(cluster);
  ModelInstance inst = ring_model(3);
  EstimateCache cache;
  const std::vector<int> mapping{0, 1, 2};
  const double before = cache.estimate(inst, mapping, net, EstimateOptions{});

  net.set_speed(1, 5.0);  // recon: processor 1 is 10x slower than believed
  bool hit = true;
  const double after = cache.estimate(inst, mapping, net, EstimateOptions{}, &hit);
  EXPECT_FALSE(hit);  // the old entry is unreachable, not served stale
  EXPECT_EQ(after, estimate_time(inst, mapping, net, EstimateOptions{}));
  EXPECT_NE(before, after);
}

TEST(EstimateCache, SnapshotCopiesShareTheVersion) {
  // The runtime estimates against snapshot copies of the shared model; the
  // copy must keep hitting entries produced by (copies of) the same state.
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(4);
  hnoc::NetworkModel net(cluster);
  ModelInstance inst = ring_model(3);
  EstimateCache cache;
  const std::vector<int> mapping{0, 1, 2};
  cache.estimate(inst, mapping, net, EstimateOptions{});

  hnoc::NetworkModel snapshot = net;
  EXPECT_EQ(snapshot.version(), net.version());
  bool hit = false;
  cache.estimate(inst, mapping, snapshot, EstimateOptions{}, &hit);
  EXPECT_TRUE(hit);

  // Mutating the snapshot diverges it from every other model.
  snapshot.set_speed(0, 123.0);
  EXPECT_NE(snapshot.version(), net.version());
  cache.estimate(inst, mapping, snapshot, EstimateOptions{}, &hit);
  EXPECT_FALSE(hit);
}

TEST(EstimateCache, DistinguishesInstancesAndOptions) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(4);
  hnoc::NetworkModel net(cluster);
  ModelInstance a = ring_model(3);
  ModelInstance b = ring_model(4);
  EstimateCache cache;
  const std::vector<int> map3{0, 1, 2};
  const std::vector<int> map4{0, 1, 2, 3};

  EXPECT_EQ(cache.estimate(a, map3, net, EstimateOptions{}),
            estimate_time(a, map3, net, EstimateOptions{}));
  EXPECT_EQ(cache.estimate(b, map4, net, EstimateOptions{}),
            estimate_time(b, map4, net, EstimateOptions{}));

  EstimateOptions heavy;
  heavy.send_overhead_s = 1.0;
  heavy.recv_overhead_s = 2.0;
  bool hit = true;
  EXPECT_EQ(cache.estimate(a, map3, net, heavy, &hit),
            estimate_time(a, map3, net, heavy));
  EXPECT_FALSE(hit);  // different options, different entry
  EXPECT_EQ(cache.size(), 3u);
}

TEST(EstimateCache, ClearDropsEntriesButKeepsCounters) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(3);
  hnoc::NetworkModel net(cluster);
  ModelInstance inst = ring_model(3);
  EstimateCache cache;
  const std::vector<int> mapping{0, 1, 2};
  cache.estimate(inst, mapping, net, EstimateOptions{});
  cache.estimate(inst, mapping, net, EstimateOptions{});
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  bool hit = true;
  cache.estimate(inst, mapping, net, EstimateOptions{}, &hit);
  EXPECT_FALSE(hit);
}

TEST(EstimateCache, NeverStaleAcrossSchedulerLeaseReleaseCycles) {
  // Regression for the hmpictld overlay (docs/scheduler.md): the scheduler
  // prices placements against CapacityLedger::overlay(), whose speeds change
  // on every lease/release. Each mutation must re-stamp the overlay version
  // so a cached estimate from a previous lease state is unreachable — a
  // release that restored the original speeds but kept a stale version would
  // let the cache quote contended prices for an idle machine (or vice
  // versa).
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(4, 100.0);
  sched::CapacityLedger ledger(cluster, sched::Partition{.slots_per_machine = 2});
  ModelInstance inst = ring_model(4);
  EstimateCache cache;
  const std::vector<int> mapping{0, 1, 2, 3};

  const auto check_fresh = [&] {
    // Ground truth recomputed from scratch against the current overlay; the
    // cache must agree bit for bit, and a repeat lookup must hit with the
    // identical bits.
    const double plain =
        estimate_time(inst, mapping, ledger.overlay(), EstimateOptions{});
    EXPECT_EQ(cache.estimate(inst, mapping, ledger.overlay(), EstimateOptions{}),
              plain);
    bool hit = false;
    EXPECT_EQ(
        cache.estimate(inst, mapping, ledger.overlay(), EstimateOptions{}, &hit),
        plain);
    EXPECT_TRUE(hit);
    return plain;
  };

  const double idle = check_fresh();
  ledger.lease(1, /*job=*/7);
  const double contended = check_fresh();
  EXPECT_GT(contended, idle);  // machine 1 runs at half speed
  ledger.lease(1, /*job=*/8);
  check_fresh();
  ledger.release(1, 8);
  EXPECT_EQ(check_fresh(), contended);  // same speeds, fresh version, same bits
  ledger.release(1, 7);
  // Full cycle: speeds are back to the idle state, but the version moved, so
  // this is a miss that reproduces the idle estimate exactly.
  bool hit = true;
  EXPECT_EQ(
      cache.estimate(inst, mapping, ledger.overlay(), EstimateOptions{}, &hit),
      idle);
  EXPECT_FALSE(hit);
  ledger.refresh_base({100.0, 50.0, 100.0, 100.0});
  EXPECT_NE(check_fresh(), idle);  // recon re-pricing invalidates too
}

TEST(EstimateCache, ConcurrentLookupsAreConsistent) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  ModelInstance inst = ring_model(6);
  EstimateCache cache;

  // Precompute the ground truth serially.
  std::vector<std::vector<int>> mappings;
  std::vector<double> expected;
  support::Rng rng(0xbeef);
  for (int i = 0; i < 64; ++i) {
    std::vector<int> mapping(6);
    for (int& p : mapping) {
      p = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(net.size())));
    }
    expected.push_back(estimate_time(inst, mapping, net, EstimateOptions{}));
    mappings.push_back(std::move(mapping));
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        for (std::size_t i = 0; i < mappings.size(); ++i) {
          const double got =
              cache.estimate(inst, mappings[i], net, EstimateOptions{});
          EXPECT_EQ(got, expected[i]);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), 64u);
  EXPECT_GT(cache.hits(), 0);
}

}  // namespace
}  // namespace hmpi::est
