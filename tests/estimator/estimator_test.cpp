#include "estimator/estimator.hpp"

#include <gtest/gtest.h>

#include "hnoc/cluster.hpp"
#include "support/error.hpp"

namespace hmpi::est {
namespace {

using pmdl::InstanceBuilder;
using pmdl::ModelInstance;
using pmdl::ScheduleSink;

EstimateOptions exact() {
  EstimateOptions o;
  o.send_overhead_s = 0.0;
  o.recv_overhead_s = 0.0;
  return o;
}

/// Two machines: fast (100 u/s) and slow (10 u/s), 1 ms + 1 MB/s network.
hnoc::Cluster two_machines() {
  return hnoc::ClusterBuilder()
      .add("fast", 100.0)
      .add("slow", 10.0)
      .network(0.001, 1e6)
      .build();
}

TEST(Estimator, SingleComputeMatchesVolumeOverSpeed) {
  auto inst = InstanceBuilder("t")
                  .shape({1})
                  .node_volume(0, 100.0)
                  .scheme([](ScheduleSink& s) {
                    const long long c[1] = {0};
                    s.compute(c, 100.0);
                  })
                  .build();
  hnoc::Cluster cluster = two_machines();
  hnoc::NetworkModel net(cluster);
  const int on_fast[1] = {0};
  const int on_slow[1] = {1};
  EXPECT_DOUBLE_EQ(estimate_time(inst, on_fast, net, exact()), 1.0);
  EXPECT_DOUBLE_EQ(estimate_time(inst, on_slow, net, exact()), 10.0);
}

TEST(Estimator, PercentagesAccumulate) {
  auto half_twice = InstanceBuilder("t")
                        .shape({1})
                        .node_volume(0, 100.0)
                        .scheme([](ScheduleSink& s) {
                          const long long c[1] = {0};
                          s.compute(c, 50.0);
                          s.compute(c, 50.0);
                        })
                        .build();
  hnoc::Cluster cluster = two_machines();
  hnoc::NetworkModel net(cluster);
  const int m[1] = {0};
  EXPECT_DOUBLE_EQ(estimate_time(half_twice, m, net, exact()), 1.0);
}

TEST(Estimator, TransferCostLatencyPlusBandwidth) {
  auto inst = InstanceBuilder("t")
                  .shape({2})
                  .link(0, 1, 1e6)  // 1 MB
                  .scheme([](ScheduleSink& s) {
                    const long long a[1] = {0}, b[1] = {1};
                    s.transfer(a, b, 100.0);
                  })
                  .build();
  hnoc::Cluster cluster = two_machines();
  hnoc::NetworkModel net(cluster);
  const int m[2] = {0, 1};
  // 0.001 + 1e6 / 1e6 = 1.001 on the receiver.
  EXPECT_DOUBLE_EQ(estimate_time(inst, m, net, exact()), 1.001);
}

TEST(Estimator, SameProcessorMappingUsesSharedMemoryLink) {
  auto inst = InstanceBuilder("t")
                  .shape({2})
                  .link(0, 1, 1e6)
                  .scheme([](ScheduleSink& s) {
                    const long long a[1] = {0}, b[1] = {1};
                    s.transfer(a, b, 100.0);
                  })
                  .build();
  hnoc::Cluster cluster = hnoc::ClusterBuilder()
                              .add("m", 10.0)
                              .network(0.001, 1e6)
                              .shared_memory(0.0, 1e9)
                              .build();
  hnoc::NetworkModel net(cluster);
  const int m[2] = {0, 0};
  EXPECT_DOUBLE_EQ(estimate_time(inst, m, net, exact()), 0.001);  // 1e6/1e9
}

TEST(Estimator, ParallelComputesTakeMax) {
  auto inst = InstanceBuilder("t")
                  .shape({2})
                  .node_volume(0, 100.0)
                  .node_volume(1, 100.0)
                  .scheme([](ScheduleSink& s) {
                    s.par_begin();
                    const long long a[1] = {0}, b[1] = {1};
                    s.par_iter_begin();
                    s.compute(a, 100.0);
                    s.par_iter_begin();
                    s.compute(b, 100.0);
                    s.par_end();
                  })
                  .build();
  hnoc::Cluster cluster = two_machines();
  hnoc::NetworkModel net(cluster);
  const int m[2] = {0, 1};
  // fast takes 1 s, slow takes 10 s, in parallel -> 10.
  EXPECT_DOUBLE_EQ(estimate_time(inst, m, net, exact()), 10.0);
}

TEST(Estimator, SequentialComputesSum) {
  auto inst = InstanceBuilder("t")
                  .shape({2})
                  .node_volume(0, 100.0)
                  .node_volume(1, 100.0)
                  .scheme([](ScheduleSink& s) {
                    const long long a[1] = {0}, b[1] = {1};
                    s.compute(a, 100.0);  // no par: same timeline
                    s.compute(b, 100.0);
                  })
                  .build();
  hnoc::Cluster cluster = two_machines();
  hnoc::NetworkModel net(cluster);
  const int m[2] = {1, 1};
  // Each runs on its own abstract timeline; without communication they do
  // not serialise against each other -> still max per processor timeline.
  EXPECT_DOUBLE_EQ(estimate_time(inst, m, net, exact()), 10.0);
}

TEST(Estimator, TransferChainsComputeThenSend) {
  auto inst = InstanceBuilder("t")
                  .shape({2})
                  .node_volume(0, 100.0)
                  .link(0, 1, 1e6)
                  .scheme([](ScheduleSink& s) {
                    const long long a[1] = {0}, b[1] = {1};
                    s.compute(a, 100.0);
                    s.transfer(a, b, 100.0);
                  })
                  .build();
  hnoc::Cluster cluster = two_machines();
  hnoc::NetworkModel net(cluster);
  const int m[2] = {0, 1};
  // compute 1 s on fast, then 1.001 transfer -> receiver at 2.001.
  EXPECT_DOUBLE_EQ(estimate_time(inst, m, net, exact()), 2.001);
}

TEST(Estimator, ParallelTransfersOnSameLinkSerialise) {
  // Two abstract pairs mapped onto the same physical link direction.
  auto inst = InstanceBuilder("t")
                  .shape({4})
                  .link(0, 1, 1e6)
                  .link(2, 3, 1e6)
                  .scheme([](ScheduleSink& s) {
                    s.par_begin();
                    const long long a[1] = {0}, b[1] = {1};
                    const long long c[1] = {2}, d[1] = {3};
                    s.par_iter_begin();
                    s.transfer(a, b, 100.0);
                    s.par_iter_begin();
                    s.transfer(c, d, 100.0);
                    s.par_end();
                  })
                  .build();
  hnoc::Cluster cluster = two_machines();
  hnoc::NetworkModel net(cluster);
  // Both transfers go fast->slow over the same physical directed link.
  const int same_link[4] = {0, 1, 0, 1};
  const double t = estimate_time(inst, same_link, net, exact());
  // With par snapshots both see busy=0, so this model lets them overlap:
  // parallel alternatives merge by max. (Within a single par iteration they
  // would serialise; across iterations they are alternatives.)
  EXPECT_DOUBLE_EQ(t, 1.001);

  // Same two transfers issued within one iteration: they serialise.
  auto serial = InstanceBuilder("t")
                    .shape({4})
                    .link(0, 1, 1e6)
                    .link(2, 3, 1e6)
                    .scheme([](ScheduleSink& s) {
                      const long long a[1] = {0}, b[1] = {1};
                      const long long c[1] = {2}, d[1] = {3};
                      s.transfer(a, b, 100.0);
                      s.transfer(c, d, 100.0);
                    })
                    .build();
  EXPECT_DOUBLE_EQ(estimate_time(serial, same_link, net, exact()), 2.002);
}

TEST(Estimator, StaleSpeedEstimateChangesPrediction) {
  auto inst = InstanceBuilder("t")
                  .shape({1})
                  .node_volume(0, 100.0)
                  .scheme([](ScheduleSink& s) {
                    const long long c[1] = {0};
                    s.compute(c, 100.0);
                  })
                  .build();
  hnoc::Cluster cluster = two_machines();
  hnoc::NetworkModel net(cluster);
  const int m[1] = {0};
  EXPECT_DOUBLE_EQ(estimate_time(inst, m, net, exact()), 1.0);
  net.set_speed(0, 50.0);  // recon discovered the machine is loaded
  EXPECT_DOUBLE_EQ(estimate_time(inst, m, net, exact()), 2.0);
}

TEST(Estimator, FallbackWithoutScheme) {
  auto inst = InstanceBuilder("t")
                  .shape({2})
                  .node_volume(0, 100.0)
                  .node_volume(1, 50.0)
                  .link(0, 1, 1e6)
                  .build();  // no scheme
  hnoc::Cluster cluster = two_machines();
  hnoc::NetworkModel net(cluster);
  const int m[2] = {0, 1};
  // proc0: 1 s compute + 1.001 comm = 2.001; proc1: 5 s + 1.001 = 6.001.
  EXPECT_DOUBLE_EQ(estimate_time(inst, m, net, exact()), 6.001);
}

TEST(Estimator, MappingValidation) {
  auto inst = InstanceBuilder("t").shape({2}).build();
  hnoc::Cluster cluster = two_machines();
  hnoc::NetworkModel net(cluster);
  const int too_short[1] = {0};
  EXPECT_THROW(estimate_time(inst, too_short, net), hmpi::InvalidArgument);
  const int bad_proc[2] = {0, 7};
  EXPECT_THROW(estimate_time(inst, bad_proc, net), hmpi::InvalidArgument);
}

TEST(Estimator, OverheadsAreCharged) {
  auto inst = InstanceBuilder("t")
                  .shape({2})
                  .link(0, 1, 0.0)
                  .scheme([](ScheduleSink& s) {
                    const long long a[1] = {0}, b[1] = {1};
                    s.transfer(a, b, 100.0);
                  })
                  .build();
  // link(...) drops zero-byte entries, so the transfer carries 0 bytes but
  // still pays latency + overheads.
  hnoc::Cluster cluster = two_machines();
  hnoc::NetworkModel net(cluster);
  EstimateOptions o;
  o.send_overhead_s = 0.25;
  o.recv_overhead_s = 0.5;
  const int m[2] = {0, 1};
  // Receiver: 0.001 latency + 0.5 recv overhead.
  EXPECT_DOUBLE_EQ(estimate_time(inst, m, net, o), 0.501);
}

TEST(Estimator, Em3dStyleRoundTrip) {
  // A 3-processor EM3D-like iteration: gather boundaries, compute, repeat.
  auto inst = InstanceBuilder("em3d-ish")
                  .shape({3})
                  .node_volume(0, 100.0)
                  .node_volume(1, 200.0)
                  .node_volume(2, 50.0)
                  .link(0, 1, 8000)
                  .link(1, 0, 8000)
                  .scheme([](ScheduleSink& s) {
                    s.par_begin();
                    const long long p0[1] = {0}, p1[1] = {1};
                    s.par_iter_begin();
                    s.transfer(p0, p1, 100.0);
                    s.par_iter_begin();
                    s.transfer(p1, p0, 100.0);
                    s.par_end();
                    s.par_begin();
                    for (long long i = 0; i < 3; ++i) {
                      s.par_iter_begin();
                      const long long c[1] = {i};
                      s.compute(c, 100.0);
                    }
                    s.par_end();
                  })
                  .build();
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  const int good[3] = {6, 7, 0};  // big volume on the fast machines
  const int bad[3] = {8, 8, 8};   // everything on the slowest machine
  EXPECT_LT(estimate_time(inst, good, net, exact()),
            estimate_time(inst, bad, net, exact()));
}

}  // namespace
}  // namespace hmpi::est
