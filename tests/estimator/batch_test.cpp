// The SoA batch evaluator (estimator/plan.hpp) and the estimate cache's bulk
// probes (estimator/estimate_cache.hpp): evaluate_batch must equal N
// one-at-a-time Plan::evaluate calls bit for bit on arbitrary models and
// clusters, and lookup_batch/insert_batch must be interchangeable with the
// single-key calls, at any shard count.
#include <gtest/gtest.h>

#include <vector>

#include "estimator/estimate_cache.hpp"
#include "estimator/estimator.hpp"
#include "estimator/fingerprint.hpp"
#include "estimator/plan.hpp"
#include "hnoc/cluster.hpp"
#include "support/rng.hpp"

namespace hmpi::est {
namespace {

using pmdl::InstanceBuilder;
using pmdl::ModelInstance;
using pmdl::ScheduleSink;

/// Random scheme-bearing model: heterogeneous volumes, a random edge set, a
/// par block of computes, then serial compute/transfer phases over the
/// edges — exercises every op kind the batch evaluator prices.
ModelInstance random_scheme_model(support::Rng& rng, int p) {
  InstanceBuilder b("batch-rand");
  b.shape({p});
  std::vector<std::pair<long long, long long>> edges;
  for (int a = 0; a < p; ++a) {
    b.node_volume(a, 1.0 + rng.next_double() * 100.0);
    const auto to = static_cast<long long>(
        rng.next_below(static_cast<std::uint64_t>(p)));
    if (to != a) {
      b.link(a, static_cast<int>(to), 1e4 + rng.next_double() * 1e5);
      edges.push_back({a, to});
    }
  }
  const int phases = 1 + static_cast<int>(rng.next_below(3));
  b.scheme([p, phases, edges](ScheduleSink& s) {
    for (int phase = 0; phase < phases; ++phase) {
      s.par_begin();
      for (long long a = 0; a < p; ++a) {
        s.par_iter_begin();
        const long long c[1] = {a};
        s.compute(c, 10.0 + static_cast<double>(a));
      }
      s.par_end();
      for (const auto& [src, dst] : edges) {
        const long long from[1] = {src}, to[1] = {dst};
        s.transfer(from, to, 50.0 + static_cast<double>(phase));
      }
    }
  });
  return b.build();
}

/// Model with volumes and links but no scheme: the estimator's fallback
/// path, which the batch evaluator must reproduce too.
ModelInstance fallback_model(support::Rng& rng, int p) {
  InstanceBuilder b("batch-fallback");
  b.shape({p});
  for (int a = 0; a < p; ++a) {
    b.node_volume(a, 1.0 + rng.next_double() * 100.0);
    b.link(a, (a + 1) % p, 1e4 + rng.next_double() * 1e5);
  }
  return b.build();
}

/// Random heterogeneous cluster with a few per-pair link overrides.
hnoc::Cluster random_cluster(support::Rng& rng, int machines) {
  hnoc::ClusterBuilder b;
  for (int i = 0; i < machines; ++i) {
    b.add("m" + std::to_string(i), 10.0 + rng.next_double() * 150.0);
  }
  b.network(1e-4 + rng.next_double() * 1e-3, 1e6 + rng.next_double() * 1e8);
  b.shared_memory(5e-6, 1e9);
  for (int k = 0; k < machines / 2; ++k) {
    const int from = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(machines)));
    const int to = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(machines)));
    if (from != to) {
      b.link_override(from, to, 5e-4, 2e6 + rng.next_double() * 1e7);
    }
  }
  return b.build();
}

void expect_batch_matches_singles(const ModelInstance& instance,
                                  const hnoc::NetworkModel& net,
                                  support::Rng& rng, std::size_t count) {
  const Plan plan(instance);
  const auto p = static_cast<std::size_t>(instance.size());
  const EstimateOptions options{};

  std::vector<int> soa(p * count);
  std::vector<std::vector<int>> rows(count, std::vector<int>(p, 0));
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t a = 0; a < p; ++a) {
      const int proc = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(net.size())));
      rows[i][a] = proc;
      soa[a * count + i] = proc;
    }
  }

  std::vector<double> batched(count);
  plan.evaluate_batch(soa, count, net, options, batched);
  for (std::size_t i = 0; i < count; ++i) {
    const double single = plan.evaluate(rows[i], net, options);
    EXPECT_EQ(single, batched[i]) << "mapping " << i;  // exact bits
    // And both must equal the interpreter (the plan contract).
    EXPECT_EQ(estimate_time(instance, rows[i], net, options), batched[i]);
  }
}

TEST(BatchEvaluator, MatchesSinglesOnRandomSchemeModels) {
  support::Rng rng(0xb47c4);
  for (int trial = 0; trial < 12; ++trial) {
    const int p = 2 + static_cast<int>(rng.next_below(7));
    const int machines = p + static_cast<int>(rng.next_below(20));
    const hnoc::Cluster cluster = random_cluster(rng, machines);
    const hnoc::NetworkModel net(cluster);
    const ModelInstance instance = random_scheme_model(rng, p);
    const auto count =
        static_cast<std::size_t>(1 + rng.next_below(50));
    expect_batch_matches_singles(instance, net, rng, count);
  }
}

TEST(BatchEvaluator, MatchesSinglesOnFallbackModels) {
  support::Rng rng(0xfa11);
  for (int trial = 0; trial < 8; ++trial) {
    const int p = 2 + static_cast<int>(rng.next_below(5));
    const hnoc::Cluster cluster = random_cluster(rng, p + 6);
    const hnoc::NetworkModel net(cluster);
    const ModelInstance instance = fallback_model(rng, p);
    expect_batch_matches_singles(instance, net, rng, 17);
  }
}

TEST(BatchEvaluator, MatchesSinglesAtLargeClusterScale) {
  support::Rng rng(0x1000);
  const hnoc::Cluster cluster = hnoc::testbeds::large_cluster(1000);
  const hnoc::NetworkModel net(cluster);
  const ModelInstance instance = random_scheme_model(rng, 9);
  expect_batch_matches_singles(instance, net, rng, 64);
}

TEST(BatchEvaluator, RepeatedCallsReuseScratchDeterministically) {
  support::Rng rng(0x5eed);
  const hnoc::Cluster cluster = random_cluster(rng, 12);
  const hnoc::NetworkModel net(cluster);
  const ModelInstance instance = random_scheme_model(rng, 5);
  const Plan plan(instance);
  const auto p = static_cast<std::size_t>(instance.size());

  std::vector<int> soa(p * 8);
  for (std::size_t k = 0; k < soa.size(); ++k) {
    soa[k] = static_cast<int>(rng.next_below(12));
  }
  std::vector<double> first(8), second(8);
  plan.evaluate_batch(soa, 8, net, EstimateOptions{}, first);
  plan.evaluate_batch(soa, 8, net, EstimateOptions{}, second);
  EXPECT_EQ(first, second);
}

TEST(EstimateCacheShards, AnyShardCountReturnsIdenticalValues) {
  support::Rng rng(0x54a7d);
  const hnoc::Cluster cluster = random_cluster(rng, 9);
  const hnoc::NetworkModel net(cluster);
  const ModelInstance instance = random_scheme_model(rng, 4);
  const EstimateOptions options{};

  std::vector<std::vector<int>> mappings;
  for (int i = 0; i < 40; ++i) {
    std::vector<int> mapping(4);
    for (int& p : mapping) {
      p = static_cast<int>(rng.next_below(9));
    }
    mappings.push_back(std::move(mapping));
  }

  EstimateCache reference(1);
  std::vector<double> expected;
  for (const auto& mapping : mappings) {
    expected.push_back(reference.estimate(instance, mapping, net, options));
  }
  for (std::size_t shards : {std::size_t{0}, std::size_t{3},
                             std::size_t{64}}) {
    EstimateCache cache(shards);
    EXPECT_GE(cache.shard_count(), 1u);  // 0 clamps to 1
    for (std::size_t i = 0; i < mappings.size(); ++i) {
      EXPECT_EQ(cache.estimate(instance, mappings[i], net, options),
                expected[i]);
    }
  }
}

TEST(EstimateCacheShards, BatchProbesMatchSingleKeyCalls) {
  support::Rng rng(0xba7c);
  const hnoc::Cluster cluster = random_cluster(rng, 9);
  const hnoc::NetworkModel net(cluster);
  const ModelInstance instance = random_scheme_model(rng, 4);
  const EstimateOptions options{};
  const std::uint64_t fp = estimate_fingerprint(instance, options);
  constexpr std::size_t kWidth = 4, kCount = 24;

  // Row-major batch of distinct mappings (base-9 digits of the row index,
  // so no two rows share a cache key); even rows are pre-inserted via the
  // single-key path.
  std::vector<int> rows(kWidth * kCount);
  std::vector<double> values(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    std::size_t digits = i;
    for (std::size_t a = 0; a < kWidth; ++a) {
      rows[i * kWidth + a] = static_cast<int>(digits % 9);
      digits /= 9;
    }
  }
  for (std::size_t i = 0; i < kCount; ++i) {
    values[i] = 1.0 + static_cast<double>(i);
  }

  for (std::size_t shards : {std::size_t{1}, std::size_t{5}}) {
    EstimateCache cache(shards);
    for (std::size_t i = 0; i < kCount; i += 2) {
      cache.insert(fp, std::span<const int>(rows).subspan(i * kWidth, kWidth),
                   net, values[i]);
    }
    std::vector<double> out(kCount, -1.0);
    std::vector<char> found(kCount, 0);
    const std::size_t hits =
        cache.lookup_batch(fp, rows, kWidth, net, out, found);
    EXPECT_EQ(hits, kCount / 2);
    EXPECT_EQ(cache.hits(), static_cast<long long>(kCount / 2));
    EXPECT_EQ(cache.misses(), static_cast<long long>(kCount - kCount / 2));
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(found[i], i % 2 == 0 ? 1 : 0) << "row " << i;
      if (i % 2 == 0) {
        EXPECT_EQ(out[i], values[i]);
      }
    }

    // insert_batch with the found mask fills exactly the misses; every key
    // must then answer through the single-key lookup.
    cache.insert_batch(fp, rows, kWidth, net, values, found);
    for (std::size_t i = 0; i < kCount; ++i) {
      double got = -1.0;
      EXPECT_TRUE(cache.lookup(
          fp, std::span<const int>(rows).subspan(i * kWidth, kWidth), net,
          &got));
      EXPECT_EQ(got, values[i]);
    }
  }
}

TEST(EstimateCacheShards, BatchInsertSkipsMaskedRows) {
  const hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  const hnoc::NetworkModel net(cluster);
  constexpr std::size_t kWidth = 3, kCount = 6;
  // Distinct sliding-window rows so every batch entry is its own cache key.
  std::vector<int> rows(kWidth * kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    for (std::size_t a = 0; a < kWidth; ++a) {
      rows[i * kWidth + a] = static_cast<int>((i + a) % 9);
    }
  }
  std::vector<double> values(kCount, 7.0);
  std::vector<char> skip(kCount, 0);
  skip[1] = skip[4] = 1;

  EstimateCache cache(4);
  cache.insert_batch(0x11, rows, kWidth, net, values, skip);
  EXPECT_EQ(cache.size(), kCount - 2);
  for (std::size_t i = 0; i < kCount; ++i) {
    double got = 0.0;
    const bool hit = cache.lookup(
        0x11, std::span<const int>(rows).subspan(i * kWidth, kWidth), net,
        &got);
    EXPECT_EQ(hit, skip[i] == 0) << "row " << i;
  }
}

}  // namespace
}  // namespace hmpi::est
