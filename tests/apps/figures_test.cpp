// Pins the paper-reproduction outcomes (EXPERIMENTS.md) under test: if a
// change to any layer moves the headline ratios out of their documented
// bands, this suite fails. Uses scaled-down versions of the bench setups.
#include <gtest/gtest.h>

#include "apps/em3d/app.hpp"
#include "apps/matmul/app.hpp"
#include "hnoc/cluster.hpp"

namespace hmpi::apps {
namespace {

TEST(PaperFigures, Figure9Em3dSpeedupBand) {
  // Paper: HMPI almost 1.5x faster than MPI. Measured band: ~1.6x.
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  em3d::GeneratorConfig config;
  config.nodes_per_subbody = {400, 500, 700, 550, 650, 600, 800, 100, 205};
  config.degree = 5;
  config.remote_fraction = 0.05;
  config.seed = 2003;
  auto mpi = em3d::run_mpi(cluster, config, 4, em3d::WorkMode::kVirtualOnly);
  auto hmpi_result =
      em3d::run_hmpi(cluster, config, 4, em3d::WorkMode::kVirtualOnly, 100);
  const double speedup = mpi.algorithm_time / hmpi_result.algorithm_time;
  EXPECT_GE(speedup, 1.3);
  EXPECT_LE(speedup, 2.2);
}

TEST(PaperFigures, Figure9SpeedupStableAcrossSizes) {
  // The paper's speedup curve is roughly flat in problem size.
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  double previous = 0.0;
  for (int scale : {1, 4}) {
    em3d::GeneratorConfig config;
    const int base[9] = {400, 500, 700, 550, 650, 600, 800, 100, 205};
    for (int b : base) config.nodes_per_subbody.push_back(b * scale);
    config.degree = 5;
    config.remote_fraction = 0.05;
    config.seed = 2003;
    auto mpi = em3d::run_mpi(cluster, config, 4, em3d::WorkMode::kVirtualOnly);
    auto hm = em3d::run_hmpi(cluster, config, 4, em3d::WorkMode::kVirtualOnly, 100);
    const double speedup = mpi.algorithm_time / hm.algorithm_time;
    if (previous > 0.0) EXPECT_NEAR(speedup, previous, 0.25 * previous);
    previous = speedup;
  }
}

TEST(PaperFigures, Figure11MmSpeedupBand) {
  // Paper: almost 3x; our simulated network overshoots to ~4.5x
  // (EXPERIMENTS.md explains why). Band keeps both within reach.
  hnoc::Cluster cluster = hnoc::testbeds::paper_mm_network();
  matmul::MmDriverConfig config;
  config.m = 3;
  config.r = 9;
  config.n = 18;
  config.l = 9;
  config.mode = matmul::WorkMode::kVirtualOnly;
  auto mpi = matmul::run_mpi(cluster, config);
  auto hm = matmul::run_hmpi(cluster, config);
  const double speedup = mpi.algorithm_time / hm.algorithm_time;
  EXPECT_GE(speedup, 2.5);
  EXPECT_LE(speedup, 6.0);
}

TEST(PaperFigures, Figure10MpiBaselineFlatInL) {
  // The homogeneous baseline does not depend on l.
  hnoc::Cluster cluster = hnoc::testbeds::paper_mm_network();
  double previous = -1.0;
  for (int l : {3, 6, 12}) {
    matmul::MmDriverConfig config;
    config.m = 3;
    config.r = 8;
    config.n = 24;
    config.l = l;
    config.mode = matmul::WorkMode::kVirtualOnly;
    auto mpi = matmul::run_mpi(cluster, config);
    if (previous > 0.0) EXPECT_NEAR(mpi.algorithm_time, previous, 0.02 * previous);
    previous = mpi.algorithm_time;
  }
}

TEST(PaperFigures, Figure10HmpiAlwaysBelowMpi) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_mm_network();
  for (int l : {3, 6, 12, 24}) {
    matmul::MmDriverConfig config;
    config.m = 3;
    config.r = 8;
    config.n = 24;
    config.l = l;
    config.mode = matmul::WorkMode::kVirtualOnly;
    auto mpi = matmul::run_mpi(cluster, config);
    auto hm = matmul::run_hmpi(cluster, config);
    EXPECT_LT(hm.algorithm_time, mpi.algorithm_time) << "l=" << l;
  }
}

}  // namespace
}  // namespace hmpi::apps
