#include "apps/matmul/app.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "hnoc/cluster.hpp"

namespace hmpi::apps::matmul {
namespace {

// --- apportion -----------------------------------------------------------------

TEST(Apportion, ExactProportions) {
  const double shares[] = {1.0, 2.0, 1.0};
  EXPECT_EQ(apportion(8, shares), (std::vector<int>{2, 4, 2}));
}

TEST(Apportion, LargestRemainderRounding) {
  const double shares[] = {1.0, 1.0, 1.0};
  auto result = apportion(10, shares);
  EXPECT_EQ(std::accumulate(result.begin(), result.end(), 0), 10);
  // Ties broken by index: the extra unit goes to the first share.
  EXPECT_EQ(result, (std::vector<int>{4, 3, 3}));
}

TEST(Apportion, ZeroShareGetsZero) {
  const double shares[] = {0.0, 1.0};
  EXPECT_EQ(apportion(5, shares), (std::vector<int>{0, 5}));
}

TEST(Apportion, SumAlwaysExact) {
  const double shares[] = {0.37, 1.21, 0.92, 3.3, 0.01};
  for (int total : {0, 1, 7, 9, 100}) {
    auto result = apportion(total, shares);
    EXPECT_EQ(std::accumulate(result.begin(), result.end(), 0), total);
  }
}

TEST(Apportion, Validation) {
  const double negative[] = {1.0, -1.0};
  EXPECT_THROW(apportion(3, negative), InvalidArgument);
  const double zeros[] = {0.0, 0.0};
  EXPECT_THROW(apportion(3, zeros), InvalidArgument);
}

// --- Partition -------------------------------------------------------------------

std::vector<double> paper_grid_speeds() {
  // 3x3 grid from the paper's MM network, fastest first (what the HMPI
  // driver does): {106, 46 x7, 9}.
  return {106, 46, 46, 46, 46, 46, 46, 46, 9};
}

TEST(Partition, WidthsAndHeightsSumToL) {
  Partition part(3, 9, paper_grid_speeds());
  int wsum = 0;
  for (int j = 0; j < 3; ++j) wsum += part.width(j);
  EXPECT_EQ(wsum, 9);
  for (int j = 0; j < 3; ++j) {
    int hsum = 0;
    for (int i = 0; i < 3; ++i) hsum += part.height(i, j);
    EXPECT_EQ(hsum, 9);
  }
}

TEST(Partition, AreasTrackSpeeds) {
  Partition part(3, 30, paper_grid_speeds());
  // Fastest processor (0,0) must hold the largest rectangle; the slowest
  // (2,2) the smallest.
  const int area_fast = part.width(0) * part.height(0, 0);
  const int area_slow = part.width(2) * part.height(2, 2);
  EXPECT_GT(area_fast, area_slow);
  // Total area = l^2.
  int total = 0;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) total += part.width(j) * part.height(i, j);
  }
  EXPECT_EQ(total, 30 * 30);
}

TEST(Partition, HomogeneousIsBalanced) {
  Partition part = Partition::homogeneous(3, 9);
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(part.width(j), 3);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(part.height(i, j), 3);
  }
}

TEST(Partition, OwnerCoversEveryBlockExactlyOnce) {
  Partition part(3, 12, paper_grid_speeds());
  std::vector<int> counts(9, 0);
  for (int rrow = 0; rrow < 12; ++rrow) {
    for (int c = 0; c < 12; ++c) {
      const int owner = part.owner_of_block(rrow, c);
      ASSERT_GE(owner, 0);
      ASSERT_LT(owner, 9);
      counts[static_cast<std::size_t>(owner)] += 1;
    }
  }
  for (int g = 0; g < 9; ++g) {
    const int i = g / 3, j = g % 3;
    EXPECT_EQ(counts[static_cast<std::size_t>(g)], part.width(j) * part.height(i, j));
  }
}

TEST(Partition, OwnerIsPeriodicInL) {
  Partition part(2, 5, std::vector<double>{3, 1, 1, 1});
  for (int rrow = 0; rrow < 5; ++rrow) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_EQ(part.owner_of_block(rrow, c), part.owner_of_block(rrow + 5, c + 10));
    }
  }
}

TEST(Partition, RowOverlapProperties) {
  Partition part(3, 9, paper_grid_speeds());
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(part.row_overlap(i, j, i, j), part.height(i, j));
      for (int k = 0; k < 3; ++k) {
        for (int o = 0; o < 3; ++o) {
          // Symmetry, as the paper notes: h[I][J][K][L] == h[K][L][I][J].
          EXPECT_EQ(part.row_overlap(i, j, k, o), part.row_overlap(k, o, i, j));
        }
      }
    }
  }
}

TEST(Partition, ModelParamsShapes) {
  Partition part(3, 9, paper_grid_speeds());
  EXPECT_EQ(part.w_param().size(), 3u);
  EXPECT_EQ(part.h_param().size(), 81u);
  // Diagonal of h == heights.
  const auto h = part.h_param();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      const std::size_t idx =
          static_cast<std::size_t>(((i * 3 + j) * 3 + i) * 3 + j);
      EXPECT_EQ(h[idx], part.height(i, j));
    }
  }
}

TEST(Partition, Validation) {
  std::vector<double> speeds(4, 1.0);
  EXPECT_THROW(Partition(2, 1, speeds), InvalidArgument);   // l < m
  EXPECT_THROW(Partition(2, 4, std::vector<double>{1.0}), InvalidArgument);
}

// --- dense kernels ----------------------------------------------------------------

TEST(Dense, BlockMultiplyAddMatchesNaive) {
  const int r = 4;
  std::vector<double> a(16), b(16), c(16, 1.0), expected(16, 1.0);
  for (int i = 0; i < 16; ++i) {
    a[static_cast<std::size_t>(i)] = i * 0.5;
    b[static_cast<std::size_t>(i)] = 1.0 - i * 0.25;
  }
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < r; ++j) {
      for (int k = 0; k < r; ++k) {
        expected[static_cast<std::size_t>(i * r + j)] +=
            a[static_cast<std::size_t>(i * r + k)] * b[static_cast<std::size_t>(k * r + j)];
      }
    }
  }
  block_multiply_add(c, a, b, r);
  for (int i = 0; i < 16; ++i) {
    EXPECT_NEAR(c[static_cast<std::size_t>(i)], expected[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Dense, BlockUpdateUnits) {
  EXPECT_DOUBLE_EQ(block_update_units(8), 1.0);
  EXPECT_DOUBLE_EQ(block_update_units(16), 8.0);
  EXPECT_THROW(block_update_units(0), InvalidArgument);
}

TEST(Dense, BlocksAgreeWithMatrix) {
  const int n = 3, r = 4;
  support::Matrix<double> a = make_matrix(42, 0, n, r);
  for (long long bi = 0; bi < n; ++bi) {
    for (long long bj = 0; bj < n; ++bj) {
      const auto block = make_block(42, 0, bi, bj, r);
      for (int x = 0; x < r; ++x) {
        for (int y = 0; y < r; ++y) {
          EXPECT_EQ(block[static_cast<std::size_t>(x * r + y)],
                    a(static_cast<std::size_t>(bi * r + x),
                      static_cast<std::size_t>(bj * r + y)));
        }
      }
    }
  }
}

TEST(Dense, SerialMultiplyIdentity) {
  support::Matrix<double> eye(3, 3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) eye(i, i) = 1.0;
  support::Matrix<double> a(3, 3);
  for (std::size_t i = 0; i < 9; ++i) a.flat()[i] = static_cast<double>(i);
  EXPECT_EQ(serial_multiply(a, eye), a);
  EXPECT_EQ(serial_multiply(eye, a), a);
}

// --- distributed algorithm -----------------------------------------------------

void expect_matches_serial(int m, int r, int n, const Partition& partition) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(m * m, 50.0);
  support::Matrix<double> expected =
      serial_multiply(make_matrix(5, 0, n, r), make_matrix(5, 1, n, r));

  mp::World::run_one_per_processor(cluster, [&](mp::Proc& p) {
    MmConfig config;
    config.m = m;
    config.r = r;
    config.n = n;
    config.partition = partition;
    config.mode = WorkMode::kReal;
    config.seed = 5;
    support::Matrix<double> c;
    MmResult result = run_distributed(p.world_comm(), config, &c);
    (void)result;
    if (p.rank() == 0) {
      ASSERT_EQ(c.rows(), expected.rows());
      for (std::size_t i = 0; i < expected.rows(); ++i) {
        for (std::size_t j = 0; j < expected.cols(); ++j) {
          ASSERT_NEAR(c(i, j), expected(i, j), 1e-9)
              << "mismatch at " << i << "," << j;
        }
      }
    }
  });
}

TEST(MmAlgorithm, MatchesSerialHomogeneous2x2) {
  expect_matches_serial(2, 3, 4, Partition::homogeneous(2, 2));
}

TEST(MmAlgorithm, MatchesSerialHeterogeneous2x2) {
  expect_matches_serial(2, 3, 6, Partition(2, 3, std::vector<double>{5, 2, 2, 1}));
}

TEST(MmAlgorithm, MatchesSerialHeterogeneous3x3) {
  expect_matches_serial(3, 2, 6, Partition(3, 6, paper_grid_speeds()));
}

TEST(MmAlgorithm, MatchesSerialWhenLNotDividingN) {
  // n = 5 blocks, l = 3: partial generalised blocks at the edges.
  expect_matches_serial(2, 2, 5, Partition(2, 3, std::vector<double>{3, 1, 2, 1}));
}

TEST(MmAlgorithm, VirtualModeTimesMatchRealMode) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_mm_network();
  auto run_mode = [&](WorkMode mode) {
    double t = 0.0;
    mp::World::run(cluster, {0, 1, 2, 3}, [&](mp::Proc& p) {
      MmConfig config;
      config.m = 2;
      config.r = 4;
      config.n = 6;
      config.partition = Partition(2, 3, std::vector<double>{46, 46, 106, 9});
      config.mode = mode;
      MmResult result = run_distributed(p.world_comm(), config);
      if (p.rank() == 0) t = result.algorithm_time;
    });
    return t;
  };
  EXPECT_DOUBLE_EQ(run_mode(WorkMode::kReal), run_mode(WorkMode::kVirtualOnly));
}

// --- drivers ---------------------------------------------------------------------

TEST(MmDrivers, HmpiBeatsMpiOnThePaperNetwork) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_mm_network();
  MmDriverConfig config;
  config.m = 3;
  config.r = 8;
  config.n = 18;
  config.l = 9;
  config.mode = WorkMode::kVirtualOnly;
  MmDriverResult mpi = run_mpi(cluster, config);
  MmDriverResult hmpi = run_hmpi(cluster, config);
  EXPECT_GT(mpi.algorithm_time, 0.0);
  EXPECT_GT(hmpi.algorithm_time, 0.0);
  // The homogeneous distribution is bottlenecked by the speed-9 machine;
  // the paper reports roughly 3x.
  EXPECT_GT(mpi.algorithm_time / hmpi.algorithm_time, 2.0);
}

TEST(MmDrivers, ResultsMatchSerial) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_mm_network();
  MmDriverConfig config;
  config.m = 2;
  config.r = 3;
  config.n = 6;
  config.l = 3;
  config.mode = WorkMode::kReal;
  config.seed = 9;
  const auto serial =
      serial_multiply(make_matrix(9, 0, 6, 3), make_matrix(9, 1, 6, 3));
  double expected = 0.0;
  for (double v : serial.flat()) expected += v;

  MmDriverResult mpi = run_mpi(cluster, config);
  MmDriverResult hmpi = run_hmpi(cluster, config);
  EXPECT_NEAR(mpi.checksum, expected, 1e-8);
  EXPECT_NEAR(hmpi.checksum, expected, 1e-8);
}

TEST(MmDrivers, TimeofSearchPicksAnL) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_mm_network();
  MmDriverConfig config;
  config.m = 3;
  config.r = 8;
  config.n = 18;
  config.l = 0;  // search
  config.mode = WorkMode::kVirtualOnly;
  MmDriverResult hmpi = run_hmpi(cluster, config, {3, 6, 9, 18});
  EXPECT_GE(hmpi.chosen_l, 3);
  EXPECT_LE(hmpi.chosen_l, 18);
  EXPECT_GT(hmpi.algorithm_time, 0.0);
}

TEST(MmDrivers, PredictionTracksMeasurement) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_mm_network();
  MmDriverConfig config;
  config.m = 3;
  config.r = 8;
  config.n = 18;
  config.l = 9;
  config.mode = WorkMode::kVirtualOnly;
  MmDriverResult hmpi = run_hmpi(cluster, config);
  ASSERT_GT(hmpi.predicted_time, 0.0);
  EXPECT_NEAR(hmpi.predicted_time, hmpi.algorithm_time,
              0.5 * hmpi.algorithm_time);
}

TEST(MmDrivers, NoAdvantageOnHomogeneousCluster) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(9, 50.0);
  MmDriverConfig config;
  config.m = 3;
  config.r = 8;
  config.n = 18;
  config.l = 9;
  config.mode = WorkMode::kVirtualOnly;
  MmDriverResult mpi = run_mpi(cluster, config);
  MmDriverResult hmpi = run_hmpi(cluster, config);
  EXPECT_NEAR(hmpi.algorithm_time, mpi.algorithm_time, 0.10 * mpi.algorithm_time);
}

}  // namespace
}  // namespace hmpi::apps::matmul
