#include "apps/em3d/app.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "apps/em3d/parallel.hpp"
#include "hnoc/cluster.hpp"

namespace hmpi::apps::em3d {
namespace {

GeneratorConfig small_config() {
  GeneratorConfig config;
  config.nodes_per_subbody = {40, 80, 24, 60};
  config.degree = 4;
  config.remote_fraction = 0.2;
  config.seed = 7;
  return config;
}

TEST(Em3dGenerator, ShapesAndCounts) {
  System system = generate(small_config());
  ASSERT_EQ(system.subbody_count(), 4);
  EXPECT_EQ(system.node_counts(), (std::vector<long long>{40, 80, 24, 60}));
  // E/H split is half and half.
  EXPECT_EQ(system.bodies[0].e_values.size(), 20u);
  EXPECT_EQ(system.bodies[0].h_values.size(), 20u);
  EXPECT_EQ(system.bodies[2].e_values.size(), 12u);
}

TEST(Em3dGenerator, Deterministic) {
  System a = generate(small_config());
  System b = generate(small_config());
  EXPECT_EQ(a.checksum(), b.checksum());
  EXPECT_EQ(a.dep_flat(), b.dep_flat());
}

TEST(Em3dGenerator, SeedChangesSystem) {
  GeneratorConfig other = small_config();
  other.seed = 8;
  EXPECT_NE(generate(small_config()).checksum(), generate(other).checksum());
}

TEST(Em3dGenerator, DepMatrixMatchesNeededLists) {
  System system = generate(small_config());
  const int p = system.subbody_count();
  for (int i = 0; i < p; ++i) {
    EXPECT_EQ(system.dep(static_cast<std::size_t>(i), static_cast<std::size_t>(i)), 0);
    for (int j = 0; j < p; ++j) {
      if (i == j) continue;
      const auto& hs = system.remote_h_needed(static_cast<std::size_t>(i),
                                              static_cast<std::size_t>(j));
      const auto& es = system.remote_e_needed(static_cast<std::size_t>(i),
                                              static_cast<std::size_t>(j));
      EXPECT_EQ(system.dep(static_cast<std::size_t>(i), static_cast<std::size_t>(j)),
                static_cast<int>(hs.size() + es.size()));
    }
  }
}

TEST(Em3dGenerator, ZeroRemoteFractionDecouplesSubbodies) {
  GeneratorConfig config = small_config();
  config.remote_fraction = 0.0;
  System system = generate(config);
  for (long long dep : system.dep_flat()) EXPECT_EQ(dep, 0);
}

TEST(Em3dGenerator, Validation) {
  GeneratorConfig config;
  EXPECT_THROW(generate(config), InvalidArgument);  // no subbodies
  config.nodes_per_subbody = {10};
  config.degree = 0;
  EXPECT_THROW(generate(config), InvalidArgument);
  config.degree = 3;
  config.remote_fraction = 1.5;
  EXPECT_THROW(generate(config), InvalidArgument);
  config.remote_fraction = 0.1;
  config.nodes_per_subbody = {1};
  EXPECT_THROW(generate(config), InvalidArgument);
}

TEST(Em3dSerial, IterationChangesValuesDeterministically) {
  System system = generate(small_config());
  const double before = system.checksum();
  const double after1 = serial_run(system, 1);
  const double after1_again = serial_run(system, 1);
  EXPECT_NE(before, after1);
  EXPECT_EQ(after1, after1_again);
  EXPECT_NE(serial_run(system, 2), after1);
}

TEST(Em3dParallel, MatchesSerialResult) {
  System system = generate(small_config());
  const double expected = serial_run(system, 3);

  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(4, 50.0);
  mp::World::run_one_per_processor(cluster, [&](mp::Proc& p) {
    ParallelResult result =
        run_parallel(p.world_comm(), system, 3, WorkMode::kReal);
    EXPECT_NEAR(result.checksum, expected, 1e-9 + 1e-12 * std::abs(expected));
  });
}

TEST(Em3dParallel, PlacementDoesNotChangeNumerics) {
  System system = generate(small_config());
  const double expected = serial_run(system, 2);
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  // Two very different placements of the 4 subbodies on the 9 machines.
  for (std::vector<int> placement : {std::vector<int>{0, 1, 2, 3},
                                     std::vector<int>{8, 6, 7, 2}}) {
    mp::World::run(cluster, placement, [&](mp::Proc& p) {
      ParallelResult result =
          run_parallel(p.world_comm(), system, 2, WorkMode::kReal);
      EXPECT_NEAR(result.checksum, expected, 1e-9);
    });
  }
}

TEST(Em3dParallel, VirtualModeTimesMatchRealMode) {
  System system = generate(small_config());
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  double real_time = 0.0, virtual_time = 0.0;
  mp::World::run(cluster, {0, 1, 2, 3}, [&](mp::Proc& p) {
    ParallelResult result =
        run_parallel(p.world_comm(), system, 2, WorkMode::kReal);
    if (p.rank() == 0) real_time = result.algorithm_time;
  });
  mp::World::run(cluster, {0, 1, 2, 3}, [&](mp::Proc& p) {
    ParallelResult result =
        run_parallel(p.world_comm(), system, 2, WorkMode::kVirtualOnly);
    if (p.rank() == 0) virtual_time = result.algorithm_time;
  });
  EXPECT_DOUBLE_EQ(real_time, virtual_time);
}

TEST(Em3dParallel, SlowPlacementIsSlower) {
  System system = generate(small_config());
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  auto time_with = [&](std::vector<int> placement) {
    double t = 0.0;
    mp::World::run(cluster, std::move(placement), [&](mp::Proc& p) {
      ParallelResult result =
          run_parallel(p.world_comm(), system, 2, WorkMode::kVirtualOnly);
      if (p.rank() == 0) t = result.algorithm_time;
    });
    return t;
  };
  // Subbody 1 is the biggest (80 nodes): machine 6 (speed 176) vs machine 8
  // (speed 9) must differ strongly.
  const double good = time_with({0, 6, 1, 2});
  const double bad = time_with({0, 8, 1, 2});
  EXPECT_LT(good * 3.0, bad);
}

// --- paper drivers -----------------------------------------------------------

GeneratorConfig paper_like_config() {
  // Nine irregular subbodies; rank-order assignment is a poor match for the
  // paper network's speeds {46 x6, 176, 106, 9} (machine 8 is very slow but
  // gets a mid-sized subbody).
  GeneratorConfig config;
  // Rank order parks subbody 8 (205 nodes) on the speed-9 machine and
  // wastes the speed-106 machine on the tiny subbody 7 — HMPI swaps them.
  config.nodes_per_subbody = {400, 500, 700, 550, 650, 600, 800, 100, 205};
  config.degree = 4;
  config.remote_fraction = 0.05;
  config.seed = 11;
  return config;
}

TEST(Em3dDrivers, HmpiBeatsMpiOnThePaperNetwork) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  DriverResult mpi = run_mpi(cluster, paper_like_config(), 4, WorkMode::kVirtualOnly);
  DriverResult hmpi =
      run_hmpi(cluster, paper_like_config(), 4, WorkMode::kVirtualOnly, 100);
  EXPECT_GT(mpi.algorithm_time, 0.0);
  EXPECT_GT(hmpi.algorithm_time, 0.0);
  // The headline claim, with a little slack for model/runtime mismatch.
  EXPECT_LE(hmpi.algorithm_time, mpi.algorithm_time * 1.05);
  // With this workload the advantage is substantial (machine 8 held a
  // 400-node subbody under rank order).
  EXPECT_GT(mpi.algorithm_time / hmpi.algorithm_time, 1.3);
}

TEST(Em3dDrivers, ResultsMatchBetweenVersionsAndSerial) {
  GeneratorConfig config = small_config();
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  const double expected = serial_run(generate(config), 3);
  DriverResult mpi = run_mpi(cluster, config, 3, WorkMode::kReal);
  DriverResult hmpi = run_hmpi(cluster, config, 3, WorkMode::kReal, 20);
  EXPECT_NEAR(mpi.checksum, expected, 1e-9);
  EXPECT_NEAR(hmpi.checksum, expected, 1e-9);
}

TEST(Em3dDrivers, HmpiPlacementMatchesVolumeSpeedOrder) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  DriverResult hmpi =
      run_hmpi(cluster, paper_like_config(), 2, WorkMode::kVirtualOnly, 100);
  ASSERT_EQ(hmpi.placement.size(), 9u);
  // Subbody 0 is on the host machine (parent pinning).
  EXPECT_EQ(hmpi.placement[0], 0);
  // The biggest non-parent subbody (6: 800 nodes) runs on the fastest
  // machine (6: speed 176).
  EXPECT_EQ(hmpi.placement[6], 6);
  // The slow machine (8, speed 9) does not hold a large subbody.
  for (std::size_t s = 0; s < 9; ++s) {
    if (hmpi.placement[s] == 8) {
      EXPECT_LE(paper_like_config().nodes_per_subbody[s], 500);
    }
  }
}

TEST(Em3dDrivers, PredictionTracksMeasurement) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  DriverResult hmpi =
      run_hmpi(cluster, paper_like_config(), 4, WorkMode::kVirtualOnly, 100);
  ASSERT_GT(hmpi.predicted_time, 0.0);
  EXPECT_NEAR(hmpi.predicted_time, hmpi.algorithm_time,
              0.35 * hmpi.algorithm_time);
}

TEST(Em3dDrivers, NoAdvantageOnHomogeneousCluster) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(9, 50.0);
  GeneratorConfig config = paper_like_config();
  DriverResult mpi = run_mpi(cluster, config, 3, WorkMode::kVirtualOnly);
  DriverResult hmpi = run_hmpi(cluster, config, 3, WorkMode::kVirtualOnly, 100);
  // Any group is as good as any other; HMPI must not be (meaningfully) worse.
  EXPECT_NEAR(hmpi.algorithm_time, mpi.algorithm_time, 0.05 * mpi.algorithm_time);
}

}  // namespace
}  // namespace hmpi::apps::em3d
