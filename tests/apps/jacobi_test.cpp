#include "apps/jacobi/jacobi.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "hnoc/cluster.hpp"
#include "support/rng.hpp"

namespace hmpi::apps::jacobi {
namespace {

JacobiConfig small_config() {
  JacobiConfig config;
  config.rows = 18;
  config.cols = 12;
  config.iterations = 5;
  config.seed = 5;
  return config;
}

TEST(JacobiSerial, RelaxationConvergesTowardsSmoothness) {
  JacobiConfig config = small_config();
  const auto initial = make_grid(config);
  const auto relaxed = serial_jacobi(config);
  // Interior variation shrinks under averaging: compare the maximum
  // neighbour difference before and after.
  auto max_jump = [](const support::Matrix<double>& g) {
    double jump = 0.0;
    for (std::size_t r = 2; r + 2 < g.rows(); ++r) {
      for (std::size_t c = 2; c + 2 < g.cols(); ++c) {
        jump = std::max(jump, std::abs(g(r, c) - g(r + 1, c)));
      }
    }
    return jump;
  };
  EXPECT_LT(max_jump(relaxed), max_jump(initial));
}

TEST(JacobiSerial, BorderIsFixed) {
  JacobiConfig config = small_config();
  const auto initial = make_grid(config);
  const auto relaxed = serial_jacobi(config);
  for (std::size_t c = 0; c < initial.cols(); ++c) {
    EXPECT_EQ(relaxed(0, c), initial(0, c));
    EXPECT_EQ(relaxed(initial.rows() - 1, c), initial(initial.rows() - 1, c));
  }
  for (std::size_t r = 0; r < initial.rows(); ++r) {
    EXPECT_EQ(relaxed(r, 0), initial(r, 0));
    EXPECT_EQ(relaxed(r, initial.cols() - 1), initial(r, initial.cols() - 1));
  }
}

TEST(JacobiDistribute, SumsAndMinimumOne) {
  const double speeds[] = {100.0, 50.0, 1.0, 0.1};
  const auto rows = distribute_rows(20, speeds);
  EXPECT_EQ(std::accumulate(rows.begin(), rows.end(), 0), 20);
  for (int r : rows) EXPECT_GE(r, 1);
  EXPECT_GT(rows[0], rows[1]);  // proportionality preserved broadly
  EXPECT_THROW(distribute_rows(2, speeds), InvalidArgument);
}

class JacobiPropertyP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JacobiPropertyP, ParallelMatchesSerial) {
  const std::uint64_t seed = GetParam();
  support::Rng rng(seed);
  JacobiConfig config;
  config.rows = static_cast<int>(rng.next_in(8, 40));
  config.cols = static_cast<int>(rng.next_in(4, 30));
  config.iterations = static_cast<int>(rng.next_in(1, 6));
  config.seed = seed;

  const int p = static_cast<int>(rng.next_in(1, std::min(5, config.rows - 3)));
  std::vector<double> speeds;
  for (int i = 0; i < p; ++i) speeds.push_back(rng.next_double_in(1.0, 100.0));
  const auto rows = distribute_rows(config.rows - 2, speeds);

  const double expected = grid_checksum(serial_jacobi(config));

  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(p, 50.0);
  mp::World::run_one_per_processor(cluster, [&](mp::Proc& proc) {
    auto result =
        run_parallel(proc.world_comm(), config, rows, WorkMode::kReal);
    EXPECT_NEAR(result.checksum, expected, 1e-8 + 1e-12 * std::abs(expected))
        << "seed " << seed;
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, JacobiPropertyP,
                         ::testing::Values(3, 14, 15, 92, 65, 35, 89, 79));

TEST(JacobiModel, VolumesAndLinks) {
  pmdl::Model model = performance_model();
  const int rows[3] = {10, 30, 5};
  auto inst = model.instantiate(model_parameters(rows, 64));
  EXPECT_EQ(inst.size(), 3);
  EXPECT_DOUBLE_EQ(inst.node_volume(0), 10.0);
  EXPECT_DOUBLE_EQ(inst.node_volume(1), 30.0);
  // Chain links only, 512 bytes per halo row (64 doubles).
  const auto& links = inst.link_bytes();
  ASSERT_EQ(links.size(), 4u);
  EXPECT_DOUBLE_EQ(links.at({0, 1}), 512.0);
  EXPECT_DOUBLE_EQ(links.at({1, 0}), 512.0);
  EXPECT_DOUBLE_EQ(links.at({1, 2}), 512.0);
  EXPECT_DOUBLE_EQ(links.at({2, 1}), 512.0);
  EXPECT_EQ(links.count({0, 2}), 0u);
}

TEST(JacobiDrivers, HmpiBeatsMpiOnTheHeterogeneousNetwork) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  JacobiConfig config;
  config.rows = 902;  // 900 interior rows
  config.cols = 256;
  config.iterations = 10;
  const int workers = 9;

  auto mpi = run_mpi(cluster, config, workers, WorkMode::kVirtualOnly);
  auto hmpi = run_hmpi(cluster, config, workers, WorkMode::kVirtualOnly);
  // Equal bands are paced by the speed-9 machine; proportional bands spread
  // the rows. 100/9 vs ~900/total-ish: expect a large factor.
  EXPECT_GT(mpi.algorithm_time / hmpi.algorithm_time, 2.0);
  // The speed-9 machine holds the smallest band.
  ASSERT_EQ(hmpi.row_counts.size(), 9u);
  int slow_band = -1;
  for (std::size_t w = 0; w < 9; ++w) {
    if (hmpi.placement[w] == 8) slow_band = hmpi.row_counts[w];
  }
  ASSERT_GE(slow_band, 1);
  EXPECT_EQ(slow_band, *std::min_element(hmpi.row_counts.begin(),
                                         hmpi.row_counts.end()));
}

TEST(JacobiDrivers, ResultsMatchSerial) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  JacobiConfig config = small_config();
  const double expected = grid_checksum(serial_jacobi(config));
  auto mpi = run_mpi(cluster, config, 4, WorkMode::kReal);
  auto hmpi = run_hmpi(cluster, config, 4, WorkMode::kReal);
  EXPECT_NEAR(mpi.checksum, expected, 1e-8);
  EXPECT_NEAR(hmpi.checksum, expected, 1e-8);
}

TEST(JacobiDrivers, PredictionTracksMeasurement) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  JacobiConfig config;
  config.rows = 452;
  config.cols = 128;
  config.iterations = 10;
  auto hmpi = run_hmpi(cluster, config, 9, WorkMode::kVirtualOnly);
  ASSERT_GT(hmpi.predicted_time, 0.0);
  EXPECT_NEAR(hmpi.predicted_time, hmpi.algorithm_time,
              0.35 * hmpi.algorithm_time);
}

}  // namespace
}  // namespace hmpi::apps::jacobi
