// Property-style sweeps: the distributed computations must agree with their
// serial references for arbitrary generated workloads, partitions, and
// placements; and simulated runs must be deterministic.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/em3d/parallel.hpp"
#include "apps/matmul/algorithm.hpp"
#include "hnoc/cluster.hpp"
#include "support/rng.hpp"

namespace hmpi::apps {
namespace {

// --- EM3D: parallel == serial over random systems -------------------------------

class Em3dPropertyP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Em3dPropertyP, ParallelMatchesSerialOnRandomSystems) {
  const std::uint64_t seed = GetParam();
  support::Rng rng(seed);

  em3d::GeneratorConfig config;
  const int p = static_cast<int>(rng.next_in(2, 6));
  for (int i = 0; i < p; ++i) {
    config.nodes_per_subbody.push_back(static_cast<int>(rng.next_in(4, 120)));
  }
  config.degree = static_cast<int>(rng.next_in(1, 6));
  config.remote_fraction = rng.next_double_in(0.0, 0.6);
  config.seed = seed * 977 + 13;
  const em3d::System system = em3d::generate(config);
  const int iterations = static_cast<int>(rng.next_in(1, 4));

  const double expected = em3d::serial_run(system, iterations);

  // Random heterogeneous cluster and random placement.
  hnoc::ClusterBuilder b;
  const int machines = p + static_cast<int>(rng.next_in(0, 3));
  for (int i = 0; i < machines; ++i) {
    b.add("m" + std::to_string(i), rng.next_double_in(5.0, 200.0));
  }
  hnoc::Cluster cluster = b.build();
  std::vector<int> placement;
  for (int i = 0; i < p; ++i) {
    placement.push_back(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(machines))));
  }

  mp::World::run(cluster, placement, [&](mp::Proc& proc) {
    auto result = em3d::run_parallel(proc.world_comm(), system, iterations,
                                     em3d::WorkMode::kReal);
    EXPECT_NEAR(result.checksum, expected, 1e-9 + 1e-12 * std::abs(expected))
        << "seed " << seed;
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, Em3dPropertyP,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// --- MM: distributed == serial over random partitions ---------------------------

class MmPropertyP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MmPropertyP, DistributedMatchesSerialOnRandomPartitions) {
  const std::uint64_t seed = GetParam();
  support::Rng rng(seed ^ 0x5151);

  const int m = static_cast<int>(rng.next_in(1, 3));
  const int r = static_cast<int>(rng.next_in(1, 5));
  const int l = static_cast<int>(rng.next_in(m, 2 * m + 2));
  const int n = static_cast<int>(rng.next_in(l, 3 * l));
  std::vector<double> grid_speeds;
  for (int i = 0; i < m * m; ++i) {
    grid_speeds.push_back(rng.next_double_in(1.0, 100.0));
  }

  matmul::MmConfig config;
  config.m = m;
  config.r = r;
  config.n = n;
  config.partition = matmul::Partition(m, l, grid_speeds);
  config.mode = em3d::WorkMode::kReal;
  config.seed = seed;

  const auto a = matmul::make_matrix(seed, 0, n, r);
  const auto b = matmul::make_matrix(seed, 1, n, r);
  const auto expected = matmul::serial_multiply(a, b);

  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(m * m, 50.0);
  mp::World::run_one_per_processor(cluster, [&](mp::Proc& proc) {
    support::Matrix<double> c;
    matmul::run_distributed(proc.world_comm(), config, &c);
    if (proc.rank() == 0) {
      ASSERT_EQ(c.rows(), expected.rows()) << "seed " << seed;
      for (std::size_t i = 0; i < expected.rows(); ++i) {
        for (std::size_t j = 0; j < expected.cols(); ++j) {
          ASSERT_NEAR(c(i, j), expected(i, j), 1e-9)
              << "seed " << seed << " at " << i << "," << j;
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmPropertyP,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// --- determinism -----------------------------------------------------------------

TEST(AppDeterminism, Em3dVirtualTimesIdenticalAcrossRuns) {
  em3d::GeneratorConfig config;
  config.nodes_per_subbody = {50, 120, 80, 40};
  config.degree = 4;
  config.remote_fraction = 0.2;
  config.seed = 3;
  const em3d::System system = em3d::generate(config);
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();

  auto run_once = [&] {
    double t = 0.0;
    mp::World::run(cluster, {2, 6, 8, 0}, [&](mp::Proc& p) {
      auto result = em3d::run_parallel(p.world_comm(), system, 3,
                                       em3d::WorkMode::kVirtualOnly);
      if (p.rank() == 0) t = result.algorithm_time;
    });
    return t;
  };
  const double first = run_once();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(run_once(), first);
}

TEST(AppDeterminism, MmVirtualTimesIdenticalAcrossRuns) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_mm_network();
  matmul::MmConfig config;
  config.m = 3;
  config.r = 8;
  config.n = 9;
  config.partition =
      matmul::Partition(3, 3, std::vector<double>{106, 46, 46, 46, 46, 46, 46, 46, 9});
  config.mode = em3d::WorkMode::kVirtualOnly;

  auto run_once = [&] {
    double t = 0.0;
    mp::World::run_one_per_processor(cluster, [&](mp::Proc& p) {
      auto result = matmul::run_distributed(p.world_comm(), config);
      if (p.rank() == 0) t = result.algorithm_time;
    });
    return t;
  };
  const double first = run_once();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(run_once(), first);
}

}  // namespace
}  // namespace hmpi::apps
