#include "sched/capacity.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "estimator/estimate_cache.hpp"
#include "estimator/plan.hpp"
#include "hnoc/cluster.hpp"
#include "support/error.hpp"
#include "sched/selector.hpp"

namespace hmpi::sched {
namespace {

using pmdl::InstanceBuilder;
using pmdl::ModelInstance;
using pmdl::ScheduleSink;

/// Compute-only instance of `p` equal abstract processors.
ModelInstance flat_instance(int p, double volume = 100.0) {
  InstanceBuilder b("flat");
  b.shape({p});
  for (int a = 0; a < p; ++a) b.node_volume(a, volume);
  b.scheme([p](ScheduleSink& s) {
    s.par_begin();
    for (long long a = 0; a < p; ++a) {
      s.par_iter_begin();
      const long long c[1] = {a};
      s.compute(c, 100.0);
    }
    s.par_end();
  });
  return b.build();
}

TEST(CapacityLedger, ResidualPricingFollowsLeaseCount) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(4, 100.0);
  CapacityLedger ledger(cluster, Partition{.slots_per_machine = 2});

  EXPECT_EQ(ledger.total_free_slots(), 8);
  EXPECT_EQ(ledger.busy_machines(), 0);
  EXPECT_DOUBLE_EQ(ledger.residual_speed(0), 100.0);
  EXPECT_DOUBLE_EQ(ledger.overlay().speed(0), 100.0);

  ledger.lease(0, 1);
  EXPECT_EQ(ledger.leases(0), 1);
  EXPECT_EQ(ledger.free_slots(0), 1);
  EXPECT_EQ(ledger.total_free_slots(), 7);
  EXPECT_EQ(ledger.busy_machines(), 1);
  EXPECT_DOUBLE_EQ(ledger.residual_speed(0), 50.0);
  EXPECT_DOUBLE_EQ(ledger.overlay().speed(0), 50.0);

  ledger.lease(0, 2);
  EXPECT_DOUBLE_EQ(ledger.overlay().speed(0), 100.0 / 3.0);
  EXPECT_EQ(ledger.free_slots(0), 0);

  ledger.release(0, 1);
  EXPECT_DOUBLE_EQ(ledger.overlay().speed(0), 50.0);
  ledger.release(0, 2);
  EXPECT_DOUBLE_EQ(ledger.overlay().speed(0), 100.0);
  EXPECT_EQ(ledger.busy_machines(), 0);
  EXPECT_EQ(ledger.total_free_slots(), 8);
}

TEST(CapacityLedger, EveryMutationBumpsTheOverlayVersion) {
  // The EstimateCache keys on the overlay's version; a lease/release that
  // kept the version would let it serve estimates priced against stale
  // lease state (see tests/estimator/estimate_cache_test.cpp for the
  // end-to-end regression).
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2, 100.0);
  CapacityLedger ledger(cluster, Partition{});

  const std::uint64_t v0 = ledger.overlay().version();
  ledger.lease(0, 7);
  const std::uint64_t v1 = ledger.overlay().version();
  EXPECT_NE(v0, v1);
  ledger.release(0, 7);
  const std::uint64_t v2 = ledger.overlay().version();
  EXPECT_NE(v1, v2);
  EXPECT_NE(v0, v2);  // same speeds as v0, but a distinct version
  ledger.refresh_base({80.0, 80.0});
  EXPECT_NE(ledger.overlay().version(), v2);
}

TEST(CapacityLedger, RefreshBaseRepricesUnderActiveLeases) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2, 100.0);
  CapacityLedger ledger(cluster, Partition{.slots_per_machine = 2});
  ledger.lease(0, 1);

  ledger.refresh_base({80.0, 40.0});
  EXPECT_DOUBLE_EQ(ledger.base_speed(0), 80.0);
  EXPECT_DOUBLE_EQ(ledger.overlay().speed(0), 40.0);  // 80 / (1 + 1 lease)
  EXPECT_DOUBLE_EQ(ledger.overlay().speed(1), 40.0);  // idle: base speed
}

TEST(CapacityLedger, PartitionRestrictsMachinesAndValidates) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(4, 100.0);
  Partition partition;
  partition.machines = {1, 2};
  partition.slots_per_machine = 1;
  CapacityLedger ledger(cluster, partition);

  EXPECT_EQ(ledger.total_free_slots(), 2);
  EXPECT_THROW(ledger.lease(0, 1), InvalidArgument);  // not in the partition
  ledger.lease(1, 1);
  EXPECT_THROW(ledger.lease(1, 2), InvalidArgument);  // no free slot
  EXPECT_THROW(ledger.release(2, 1), InvalidArgument);  // no such lease
  EXPECT_THROW(ledger.release(1, 99), InvalidArgument);  // wrong job
}

TEST(Partition, ResolveRejectsBadShapes) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(3, 100.0);
  EXPECT_THROW(
      Partition::resolve(Partition{.slots_per_machine = 0}, cluster),
      InvalidArgument);
  Partition bad;
  bad.machines = {0, 7};
  EXPECT_THROW(Partition::resolve(bad, cluster), InvalidArgument);
  const Partition all = Partition::resolve(Partition{}, cluster);
  EXPECT_EQ(all.machines.size(), 3u);
}

map::SearchContext context_of(est::EstimateCache* cache,
                              est::PlanCache* plans) {
  map::SearchContext context;
  context.cache = cache;
  context.plans = plans;
  return context;
}

TEST(Selector, PrefersIdleMachinesOverLeasedOnes) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2, 100.0);
  CapacityLedger ledger(cluster, Partition{.slots_per_machine = 2});
  est::EstimateCache cache;
  est::PlanCache plans;
  Selector selector;

  ledger.lease(0, 1);  // machine 0 residual 50, machine 1 residual 100
  const ModelInstance one = flat_instance(1);
  const auto placement = selector.place(one, ledger, context_of(&cache, &plans));
  ASSERT_TRUE(placement.has_value());
  ASSERT_EQ(placement->machines.size(), 1u);
  EXPECT_EQ(placement->machines[0], 1);
  EXPECT_GT(placement->estimated_s, 0.0);
}

TEST(Selector, NulloptWhenFreeSlotsCannotHostTheInstance) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2, 100.0);
  CapacityLedger ledger(cluster, Partition{.slots_per_machine = 1});
  est::EstimateCache cache;
  est::PlanCache plans;
  Selector selector;

  EXPECT_FALSE(
      selector.place(flat_instance(3), ledger, context_of(&cache, &plans))
          .has_value());
  // A machine's two free slots can host two abstract processors.
  CapacityLedger wide(cluster, Partition{.slots_per_machine = 2});
  const auto placement =
      selector.place(flat_instance(4), wide, context_of(&cache, &plans));
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->machines.size(), 4u);
}

TEST(Selector, DeterministicForFixedLedgerState) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  CapacityLedger ledger(cluster, Partition{.slots_per_machine = 2});
  ledger.lease(0, 1);
  ledger.lease(2, 1);
  est::EstimateCache cache;
  est::PlanCache plans;
  Selector selector;

  const ModelInstance inst = flat_instance(3, 250.0);
  const auto a = selector.place(inst, ledger, context_of(&cache, &plans));
  const auto b = selector.place(inst, ledger, context_of(&cache, &plans));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->machines, b->machines);
  EXPECT_EQ(a->estimated_s, b->estimated_s);  // bit-identical
}

}  // namespace
}  // namespace hmpi::sched
