#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <vector>

#include "hnoc/cluster.hpp"
#include "mpsim/trace.hpp"
#include "pmdl/model.hpp"
#include "support/error.hpp"
#include "telemetry/json.hpp"

namespace hmpi::sched {
namespace {

using pmdl::InstanceBuilder;
using pmdl::Model;
using pmdl::ParamValue;
using pmdl::ScheduleSink;

/// Model with two params: per-processor volume array and (ignored here)
/// nothing else — width is the array length.
std::shared_ptr<const Model> flat_model() {
  return std::make_shared<const Model>(Model::from_factory(
      "flat", 1, [](std::span<const ParamValue> params) {
        const auto& volumes = std::get<std::vector<long long>>(params[0]);
        const auto p = static_cast<long long>(volumes.size());
        InstanceBuilder b("flat");
        b.shape({p});
        for (long long a = 0; a < p; ++a) {
          b.node_volume(static_cast<int>(a),
                        static_cast<double>(volumes[static_cast<std::size_t>(a)]));
        }
        b.scheme([p](ScheduleSink& s) {
          s.par_begin();
          for (long long a = 0; a < p; ++a) {
            s.par_iter_begin();
            const long long c[1] = {a};
            s.compute(c, 100.0);
          }
          s.par_end();
        });
        return b.build();
      }));
}

JobSpec job(const std::shared_ptr<const Model>& model, int width,
            long long volume, int priority, double arrival_s,
            const char* name) {
  JobSpec spec;
  spec.model = model;
  spec.params = {pmdl::array(std::vector<long long>(
      static_cast<std::size_t>(width), volume))};
  spec.priority = priority;
  spec.arrival_s = arrival_s;
  spec.name = name;
  return spec;
}

TEST(Scheduler, FifoRunsInArrivalOrderWithExclusiveLeases) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2, 100.0);
  SchedConfig config;
  config.policy = SchedPolicy::kFifo;
  config.slots_per_machine = 4;  // normalised away: kFifo is exclusive
  Scheduler scheduler(cluster, config);
  EXPECT_EQ(scheduler.config().slots_per_machine, 1);
  EXPECT_FALSE(scheduler.config().backfill);
  EXPECT_FALSE(scheduler.config().preempt);

  const auto model = flat_model();
  // Priorities are inverted vs arrival; FIFO must ignore them.
  const JobId a = scheduler.submit(job(model, 2, 1000, 0, 0.0, "a"));
  const JobId b = scheduler.submit(job(model, 2, 1000, 5, 0.1, "b"));
  const JobId c = scheduler.submit(job(model, 2, 1000, 9, 0.2, "c"));
  scheduler.run_until_idle();

  const auto ia = scheduler.poll(a), ib = scheduler.poll(b),
             ic = scheduler.poll(c);
  ASSERT_TRUE(ia && ib && ic);
  EXPECT_EQ(ia->state, JobState::kCompleted);
  EXPECT_LT(ia->start_s, ib->start_s);
  EXPECT_LT(ib->start_s, ic->start_s);
  const SchedStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 3);
  EXPECT_EQ(stats.preempted, 0);
  EXPECT_EQ(stats.backfilled, 0);
  EXPECT_GT(stats.makespan_s, 0.0);
}

TEST(Scheduler, PriorityOrdersTheQueueHighestFirst) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(1, 100.0);
  SchedConfig config;
  config.slots_per_machine = 1;
  config.backfill = false;
  config.preempt = false;
  config.aging_weight = 0.0;
  Scheduler scheduler(cluster, config);

  const auto model = flat_model();
  const JobId running = scheduler.submit(job(model, 1, 2000, 0, 0.0, "run"));
  const JobId low = scheduler.submit(job(model, 1, 100, 0, 0.1, "low"));
  const JobId high = scheduler.submit(job(model, 1, 100, 5, 0.2, "high"));
  scheduler.run_until_idle();

  const auto ir = scheduler.poll(running), il = scheduler.poll(low),
             ih = scheduler.poll(high);
  ASSERT_TRUE(ir && il && ih);
  // `high` arrived after `low` but outranks it once `run` finishes.
  EXPECT_LT(ir->start_s, ih->start_s);
  EXPECT_LT(ih->start_s, il->start_s);
}

TEST(Scheduler, AgingLetsAStarvingJobOvertakeFreshHighPriority) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(1, 100.0);
  SchedConfig config;
  config.slots_per_machine = 1;
  config.backfill = false;
  config.preempt = false;
  config.aging_weight = 1.0;  // 1 priority unit per waited second
  Scheduler scheduler(cluster, config);

  const auto model = flat_model();
  scheduler.submit(job(model, 1, 1000, 0, 0.0, "run"));  // ~10 s
  const JobId old_low = scheduler.submit(job(model, 1, 100, 0, 0.1, "old"));
  const JobId fresh_high =
      scheduler.submit(job(model, 1, 100, 5, 9.9, "fresh"));
  scheduler.run_until_idle();

  const auto io = scheduler.poll(old_low), ifr = scheduler.poll(fresh_high);
  ASSERT_TRUE(io && ifr);
  // At t~10 the old job's effective priority is ~0 + 1.0 * 9.9 > 5.
  EXPECT_LT(io->start_s, ifr->start_s);
}

TEST(Scheduler, BackfillSlidesShortJobsPastABlockedHead) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2, 100.0);
  SchedConfig config;
  config.slots_per_machine = 1;
  config.preempt = false;
  config.aging_weight = 0.0;
  Scheduler scheduler(cluster, config);

  const auto model = flat_model();
  // `wide` (high priority) needs both machines while `long` holds one:
  // blocked, it posts a reservation. `shorty` fits on the idle machine and
  // finishes before the reservation, so conservative backfill runs it.
  const JobId long_job = scheduler.submit(job(model, 1, 2000, 1, 0.0, "long"));
  const JobId wide = scheduler.submit(job(model, 2, 500, 5, 0.1, "wide"));
  const JobId shorty = scheduler.submit(job(model, 1, 100, 0, 0.2, "short"));
  scheduler.run_until_idle();

  const auto il = scheduler.poll(long_job), iw = scheduler.poll(wide),
             is = scheduler.poll(shorty);
  ASSERT_TRUE(il && iw && is);
  EXPECT_TRUE(is->backfilled);
  EXPECT_LT(is->start_s, iw->start_s);
  EXPECT_GE(iw->start_s, il->finish_s);  // the head was never delayed
  EXPECT_GE(scheduler.stats().backfilled, 1);
}

TEST(Scheduler, PreemptionRevokesRequeuesAndTraces) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(1, 100.0);
  mp::Tracer tracer;
  SchedConfig config;
  config.slots_per_machine = 1;
  config.backfill = false;
  config.preempt_priority_gap = 1;
  config.aging_weight = 0.0;
  config.tracer = &tracer;
  Scheduler scheduler(cluster, config);

  const auto model = flat_model();
  JobSpec victim_spec = job(model, 1, 2000, 0, 0.0, "victim");
  victim_spec.checkpoint_bytes = 0;  // checkpoints: keeps completed work
  const JobId victim = scheduler.submit(victim_spec);
  const JobId urgent = scheduler.submit(job(model, 1, 100, 5, 5.0, "urgent"));
  scheduler.run_until_idle();

  const auto iv = scheduler.poll(victim), iu = scheduler.poll(urgent);
  ASSERT_TRUE(iv && iu);
  EXPECT_EQ(iv->preemptions, 1);
  EXPECT_EQ(iv->state, JobState::kCompleted);
  EXPECT_EQ(iu->state, JobState::kCompleted);
  EXPECT_LT(iu->finish_s, iv->finish_s);
  EXPECT_EQ(scheduler.stats().preempted, 1);

  int dispatches = 0, preempts = 0;
  for (const mp::TraceEvent& e : tracer.events()) {
    if (e.kind == mp::TraceEvent::Kind::kSchedDispatch) ++dispatches;
    if (e.kind == mp::TraceEvent::Kind::kSchedPreempt) {
      ++preempts;
      EXPECT_EQ(e.sched.job, victim);
      EXPECT_GT(e.sched.progress, 0.0);
    }
  }
  EXPECT_EQ(dispatches, 3);  // victim, urgent, victim again
  EXPECT_EQ(preempts, 1);
}

TEST(Scheduler, CancelPendingRunningAndCompleted) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(1, 100.0);
  SchedConfig config;
  config.slots_per_machine = 1;
  Scheduler scheduler(cluster, config);

  const auto model = flat_model();
  const JobId first = scheduler.submit(job(model, 1, 1000, 0, 0.0, "first"));
  const JobId queued = scheduler.submit(job(model, 1, 1000, 0, 0.0, "queued"));
  scheduler.step();  // arrival of `first` -> it dispatches
  scheduler.step();  // arrival of `queued` -> pending behind it

  EXPECT_TRUE(scheduler.cancel(queued));
  EXPECT_EQ(scheduler.poll(queued)->state, JobState::kCancelled);
  EXPECT_TRUE(scheduler.cancel(first));  // running: leases revoked
  scheduler.run_until_idle();
  EXPECT_EQ(scheduler.poll(first)->state, JobState::kCancelled);
  EXPECT_FALSE(scheduler.cancel(first));  // already cancelled
  EXPECT_FALSE(scheduler.cancel(12345));  // unknown
  EXPECT_FALSE(scheduler.poll(777).has_value());
  EXPECT_EQ(scheduler.stats().cancelled, 2);
  EXPECT_EQ(scheduler.stats().completed, 0);
}

TEST(Scheduler, SubmitValidatesModelAndFit) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2, 100.0);
  SchedConfig config;
  config.slots_per_machine = 2;
  Scheduler scheduler(cluster, config);

  JobSpec no_model;
  EXPECT_THROW(scheduler.submit(no_model), InvalidArgument);
  const auto model = flat_model();
  // 5 abstract processors can never fit 2 machines x 2 slots.
  EXPECT_THROW(scheduler.submit(job(model, 5, 100, 0, 0.0, "wide")),
               InvalidArgument);
}

TEST(Scheduler, RefreshSpeedsRedirectsPlacement) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2, 100.0);
  SchedConfig config;
  config.slots_per_machine = 1;
  Scheduler scheduler(cluster, config);

  // Recon learned machine 0 is 20x slower than installed.
  scheduler.refresh_speeds({5.0, 100.0});
  EXPECT_DOUBLE_EQ(scheduler.ledger().base_speed(0), 5.0);

  const auto model = flat_model();
  const JobId id = scheduler.submit(job(model, 1, 100, 0, 0.0, "j"));
  scheduler.run_until_idle();
  const auto info = scheduler.poll(id);
  ASSERT_TRUE(info.has_value());
  ASSERT_EQ(info->machines.size(), 1u);
  EXPECT_EQ(info->machines[0], 1);
}

TEST(Scheduler, StatsJsonCarriesTheDocumentedShape) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2, 100.0);
  Scheduler scheduler(cluster, SchedConfig{});
  const auto model = flat_model();
  scheduler.submit(job(model, 1, 100, 0, 0.0, "a"));
  scheduler.submit(job(model, 2, 200, 1, 0.5, "b"));
  scheduler.run_until_idle();

  std::ostringstream os;
  scheduler.stats_json(os);
  std::string error;
  const auto doc = telemetry::parse_json(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const telemetry::JsonValue* sched = doc->find("scheduler");
  ASSERT_NE(sched, nullptr);
  ASSERT_TRUE(sched->is_object());
  for (const char* key :
       {"policy", "machines", "slots_per_machine", "submitted", "completed",
        "makespan_s", "utilization", "mean_wait_s", "jobs"}) {
    EXPECT_NE(sched->find(key), nullptr) << key;
  }
  const telemetry::JsonValue* jobs = sched->find("jobs");
  ASSERT_TRUE(jobs->is_array());
  EXPECT_EQ(jobs->array.size(), 2u);
  EXPECT_NE(jobs->array[0].find("state"), nullptr);
}

TEST(SchedConfig, EnvOverridesApply) {
  ::setenv("HMPI_SCHED_POLICY", "priority", 1);
  ::setenv("HMPI_SCHED_SLOTS", "3", 1);
  ::setenv("HMPI_SCHED_BACKFILL", "0", 1);
  ::setenv("HMPI_SCHED_AGING", "0.5", 1);
  SchedConfig base;
  base.policy = SchedPolicy::kFifo;
  const SchedConfig got = sched_config_with_env(base);
  ::unsetenv("HMPI_SCHED_POLICY");
  ::unsetenv("HMPI_SCHED_SLOTS");
  ::unsetenv("HMPI_SCHED_BACKFILL");
  ::unsetenv("HMPI_SCHED_AGING");

  EXPECT_EQ(got.policy, SchedPolicy::kPriority);
  EXPECT_EQ(got.slots_per_machine, 3);
  EXPECT_FALSE(got.backfill);
  EXPECT_DOUBLE_EQ(got.aging_weight, 0.5);
  // Unset vars keep the base values.
  EXPECT_TRUE(got.preempt);
}

}  // namespace
}  // namespace hmpi::sched
