// Property: a preempted -> requeued -> re-dispatched job produces a result
// token bit-identical to the same spec run alone on an idle cluster. Job
// bodies fold only rank + problem data into the token (see sched::JobBody),
// so any placement change, checkpoint resume, or co-tenant slowdown that
// leaked into results would show up as a divergence here. This is the
// in-tree miniature of the A13 zero-divergence acceptance bar
// (bench/ablation_sched.cpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "hnoc/cluster.hpp"
#include "sched/scheduler.hpp"

namespace hmpi::sched {
namespace {

/// Three speed tiers behind a 1 ms / 2 MB/s network — contention over both
/// compute slots and links, like the A13 bench cluster but smaller.
hnoc::Cluster small_cluster() {
  hnoc::ClusterBuilder b;
  b.add("fast0", 100.0);
  b.add("fast1", 100.0);
  b.add("mid0", 80.0);
  b.add("mid1", 80.0);
  b.add("slow0", 60.0);
  b.add("slow1", 60.0);
  b.network(1e-3, 2e6);
  return b.build();
}

/// Runs `specs` through a contended scheduler and checks every completed
/// job's token against its uncontended reference. `out` receives the stats
/// so the caller can assert the property was actually exercised.
void check_trace(const hnoc::Cluster& cluster, std::vector<JobSpec> specs,
                 const SchedConfig& config, SchedStats* out) {
  // References first: uncontended_run never sees the scheduler's state.
  std::vector<std::uint64_t> expected;
  expected.reserve(specs.size());
  for (const JobSpec& spec : specs) {
    expected.push_back(Scheduler::uncontended_run(cluster, spec));
  }

  Scheduler scheduler(cluster, config);
  std::vector<JobId> ids;
  ids.reserve(specs.size());
  for (JobSpec& spec : specs) ids.push_back(scheduler.submit(std::move(spec)));
  scheduler.run_until_idle();

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto info = scheduler.poll(ids[i]);
    ASSERT_TRUE(info.has_value());
    ASSERT_EQ(info->state, JobState::kCompleted) << "job " << ids[i];
    EXPECT_EQ(info->result, expected[i])
        << "job " << ids[i] << " (" << info->name << ") diverged after "
        << info->preemptions << " preemption(s)";
  }
  *out = scheduler.stats();
}

TEST(PreemptDeterminism, RandomTracesMatchUncontendedBitForBit) {
  const hnoc::Cluster cluster = small_cluster();
  SchedConfig config;
  config.slots_per_machine = 2;
  config.preempt_priority_gap = 1;  // aggressive: any lower priority is prey
  config.execute = true;

  long long preempted = 0, backfilled = 0;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    bench::ArrivalTraceOptions options;
    options.jobs = 120;
    options.seed = seed;
    options.mean_interarrival_s = 0.05;  // heavy overload forces contention
    options.max_width = 4;
    options.volume_scale = 15.0;
    options.ring_bytes = 1 << 18;
    options.checkpoint_frac = 0.5;  // mix of resumable and restart-on-preempt
    SchedStats stats;
    ASSERT_NO_FATAL_FAILURE(check_trace(
        cluster, bench::make_arrival_trace(options), config, &stats));
    EXPECT_EQ(stats.completed, options.jobs);
    preempted += stats.preempted;
    backfilled += stats.backfilled;
  }
  // The property is vacuous unless contention really kicked both mechanisms.
  EXPECT_GT(preempted, 0);
  EXPECT_GT(backfilled, 0);
}

TEST(PreemptDeterminism, CheckpointResumeOnOneMachineKeepsTheToken) {
  // Deterministic miniature: one machine, one slot, a long checkpointable
  // job preempted mid-flight by an urgent arrival, resumed after it.
  hnoc::ClusterBuilder b;
  b.add("solo", 100.0);
  const hnoc::Cluster cluster = b.build();

  SchedConfig config;
  config.slots_per_machine = 1;
  config.backfill = false;
  config.preempt_priority_gap = 1;
  config.aging_weight = 0.0;
  config.execute = true;

  JobSpec victim;
  victim.model = bench::sched_job_model();
  victim.params = {pmdl::array(std::vector<long long>{4000}),
                   pmdl::scalar(0)};
  victim.body = bench::make_sched_job_body({4000}, 0);
  victim.priority = 0;
  victim.checkpoint_bytes = 1 << 20;
  victim.name = "victim";

  JobSpec urgent = victim;
  urgent.params = {pmdl::array(std::vector<long long>{50}), pmdl::scalar(0)};
  urgent.body = bench::make_sched_job_body({50}, 0);
  urgent.priority = 5;
  urgent.arrival_s = 10.0;
  urgent.name = "urgent";

  const std::uint64_t victim_ref =
      Scheduler::uncontended_run(cluster, victim);
  const std::uint64_t urgent_ref =
      Scheduler::uncontended_run(cluster, urgent);
  ASSERT_NE(victim_ref, urgent_ref);  // distinct problems, distinct tokens

  Scheduler scheduler(cluster, config);
  const JobId v = scheduler.submit(std::move(victim));
  const JobId u = scheduler.submit(std::move(urgent));
  scheduler.run_until_idle();

  const auto iv = scheduler.poll(v), iu = scheduler.poll(u);
  ASSERT_TRUE(iv && iu);
  EXPECT_EQ(iv->preemptions, 1);
  EXPECT_EQ(iv->result, victim_ref);
  EXPECT_EQ(iu->result, urgent_ref);
}

}  // namespace
}  // namespace hmpi::sched
