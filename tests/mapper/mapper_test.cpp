#include "mapper/mapper.hpp"

#include <gtest/gtest.h>

#include <set>

#include "hnoc/cluster.hpp"
#include "support/error.hpp"

namespace hmpi::map {
namespace {

using pmdl::InstanceBuilder;
using pmdl::ModelInstance;
using pmdl::ScheduleSink;

est::EstimateOptions exact() {
  est::EstimateOptions o;
  o.send_overhead_s = 0.0;
  o.recv_overhead_s = 0.0;
  return o;
}

/// p unequal computation volumes, no communication, parent is abstract 0.
ModelInstance compute_only_model(std::vector<double> volumes) {
  InstanceBuilder b("compute-only");
  b.shape({static_cast<long long>(volumes.size())});
  for (std::size_t i = 0; i < volumes.size(); ++i) {
    b.node_volume(static_cast<int>(i), volumes[i]);
  }
  const auto n = static_cast<long long>(volumes.size());
  b.scheme([n](ScheduleSink& s) {
    s.par_begin();
    for (long long i = 0; i < n; ++i) {
      s.par_iter_begin();
      const long long c[1] = {i};
      s.compute(c, 100.0);
    }
    s.par_end();
  });
  return b.build();
}

std::vector<Candidate> one_per_processor(const hnoc::Cluster& cluster) {
  std::vector<Candidate> cs;
  for (int i = 0; i < cluster.size(); ++i) cs.push_back({i, i});
  return cs;
}

// All three mappers must satisfy the same basic contract.
class MapperContract : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Mapper> make() const {
    const std::string which = GetParam();
    if (which == "exhaustive") return std::make_unique<ExhaustiveMapper>();
    if (which == "greedy") return std::make_unique<GreedyMapper>();
    if (which == "annealing") return std::make_unique<AnnealingMapper>();
    if (which == "portfolio") return std::make_unique<PortfolioMapper>();
    return std::make_unique<SwapRefineMapper>();
  }
};

TEST_P(MapperContract, SelectionIsInjectiveAndComplete) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  auto inst = compute_only_model({5, 1, 9, 3, 7});
  auto candidates = one_per_processor(cluster);
  auto result = make()->select(inst, candidates, 0, net, exact());
  ASSERT_EQ(result.candidate_for_abstract.size(), 5u);
  std::set<int> used(result.candidate_for_abstract.begin(),
                     result.candidate_for_abstract.end());
  EXPECT_EQ(used.size(), 5u);  // injective
  for (int c : result.candidate_for_abstract) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, static_cast<int>(candidates.size()));
  }
  EXPECT_GT(result.estimated_time, 0.0);
}

TEST_P(MapperContract, ParentIsPinned) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  auto inst = compute_only_model({5, 1, 9});
  auto candidates = one_per_processor(cluster);
  for (int parent = 0; parent < 3; ++parent) {
    auto result = make()->select(inst, candidates, parent, net, exact());
    EXPECT_EQ(result.candidate_for_abstract[0], parent);  // parent_index()==0
  }
}

TEST_P(MapperContract, SlowMachineExcludedWhenSurplusCandidates) {
  // 2 abstract processors, 3 candidates with speeds {10, 10, 1}: the slow
  // machine must not be selected.
  hnoc::Cluster cluster =
      hnoc::ClusterBuilder().add("a", 10.0).add("b", 10.0).add("slow", 1.0).build();
  hnoc::NetworkModel net(cluster);
  auto inst = compute_only_model({100, 100});
  auto candidates = one_per_processor(cluster);
  auto result = make()->select(inst, candidates, 0, net, exact());
  for (int c : result.candidate_for_abstract) EXPECT_NE(c, 2);
}

TEST_P(MapperContract, NotEnoughCandidatesThrows) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2);
  hnoc::NetworkModel net(cluster);
  auto inst = compute_only_model({1, 1, 1});
  auto candidates = one_per_processor(cluster);
  EXPECT_THROW(make()->select(inst, candidates, 0, net, exact()),
               hmpi::InvalidArgument);
}

TEST_P(MapperContract, ReportedTimeMatchesEstimator) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  auto inst = compute_only_model({5, 1, 9, 3});
  auto candidates = one_per_processor(cluster);
  auto result = make()->select(inst, candidates, 0, net, exact());
  std::vector<int> procs;
  for (int c : result.candidate_for_abstract) {
    procs.push_back(candidates[static_cast<std::size_t>(c)].processor);
  }
  EXPECT_DOUBLE_EQ(result.estimated_time,
                   est::estimate_time(inst, procs, net, exact()));
}

INSTANTIATE_TEST_SUITE_P(All, MapperContract,
                         ::testing::Values("exhaustive", "greedy",
                                           "swap-refine", "annealing",
                                           "portfolio"));

TEST(AnnealingMapper, DeterministicForFixedSeed) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  auto inst = compute_only_model({50, 10, 90, 30, 70});
  auto candidates = one_per_processor(cluster);
  AnnealingMapper mapper;
  auto a = mapper.select(inst, candidates, 0, net, exact());
  auto b = mapper.select(inst, candidates, 0, net, exact());
  EXPECT_EQ(a.candidate_for_abstract, b.candidate_for_abstract);
  EXPECT_DOUBLE_EQ(a.estimated_time, b.estimated_time);
}

TEST(AnnealingMapper, NeverWorseThanGreedy) {
  // Annealing keeps the best-seen selection and starts from greedy, so it
  // can only match or beat it.
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  for (auto volumes : {std::vector<double>{500, 900, 100, 300},
                       std::vector<double>{10, 10, 10},
                       std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8}}) {
    auto inst = compute_only_model(volumes);
    auto candidates = one_per_processor(cluster);
    auto greedy = GreedyMapper().select(inst, candidates, 0, net, exact());
    auto annealed = AnnealingMapper().select(inst, candidates, 0, net, exact());
    EXPECT_LE(annealed.estimated_time, greedy.estimated_time + 1e-12);
  }
}

TEST(AnnealingMapper, SolvesTheCommunicationBoundCase) {
  // Same landscape where greedy is fooled (see
  // SwapRefineMapper.BeatsGreedyOnCommunicationBoundCase).
  hnoc::Cluster cluster = hnoc::ClusterBuilder()
                              .add("parent", 10.0)
                              .add("goodlink", 10.0)
                              .add("fastbadlink", 11.0)
                              .network(1e-4, 1e7)
                              .symmetric_link_override(0, 2, 0.5, 1e5)
                              .build();
  hnoc::NetworkModel net(cluster);
  auto inst = pmdl::InstanceBuilder("comm-bound")
                  .shape({2})
                  .node_volume(0, 1.0)
                  .node_volume(1, 1.0)
                  .link(0, 1, 1e6)
                  .scheme([](pmdl::ScheduleSink& s) {
                    const long long a[1] = {0}, b[1] = {1};
                    s.transfer(a, b, 100.0);
                    s.compute(b, 100.0);
                  })
                  .build();
  auto candidates = one_per_processor(cluster);
  auto best = ExhaustiveMapper().select(inst, candidates, 0, net, exact());
  auto annealed = AnnealingMapper().select(inst, candidates, 0, net, exact());
  EXPECT_DOUBLE_EQ(annealed.estimated_time, best.estimated_time);
}

TEST(GreedyMapper, MatchesVolumeToSpeed) {
  // Volumes {1, 100, 10} on speeds {5, 50, 500}: the big volume must land on
  // the fastest machine, the small one on the slowest remaining.
  hnoc::Cluster cluster =
      hnoc::ClusterBuilder().add("s", 5.0).add("m", 50.0).add("f", 500.0).build();
  hnoc::NetworkModel net(cluster);
  // Parent is abstract 0 with negligible volume; pin it to candidate 0.
  auto inst = compute_only_model({0.001, 100, 10});
  auto candidates = one_per_processor(cluster);
  auto result = GreedyMapper().select(inst, candidates, 0, net, exact());
  EXPECT_EQ(result.candidate_for_abstract[1], 2);  // 100 -> speed 500
  EXPECT_EQ(result.candidate_for_abstract[2], 1);  // 10 -> speed 50
}

TEST(ExhaustiveMapper, FindsTheOptimum) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel net(cluster);
  auto inst = compute_only_model({50, 10, 90, 30});
  auto candidates = one_per_processor(cluster);
  auto best = ExhaustiveMapper().select(inst, candidates, 0, net, exact());
  auto greedy = GreedyMapper().select(inst, candidates, 0, net, exact());
  auto refined = SwapRefineMapper().select(inst, candidates, 0, net, exact());
  EXPECT_LE(best.estimated_time, greedy.estimated_time + 1e-12);
  EXPECT_LE(best.estimated_time, refined.estimated_time + 1e-12);
  EXPECT_LE(refined.estimated_time, greedy.estimated_time + 1e-12);
}

TEST(ExhaustiveMapper, RefusesHugeSearchSpaces) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(16);
  hnoc::NetworkModel net(cluster);
  auto inst = compute_only_model(std::vector<double>(12, 1.0));
  auto candidates = one_per_processor(cluster);
  EXPECT_THROW(
      ExhaustiveMapper(/*max_combinations=*/1000).select(inst, candidates, 0,
                                                         net, exact()),
      hmpi::InvalidArgument);
}

TEST(SwapRefineMapper, BeatsGreedyOnCommunicationBoundCase) {
  // Greedy places by speed only. Candidate on proc2 is slightly faster, but
  // its link to the parent is terrible; the communication-aware mappers must
  // prefer proc1.
  hnoc::Cluster cluster = hnoc::ClusterBuilder()
                              .add("parent", 10.0)
                              .add("goodlink", 10.0)
                              .add("fastbadlink", 11.0)
                              .network(1e-4, 1e7)
                              .symmetric_link_override(0, 2, 0.5, 1e5)
                              .build();
  hnoc::NetworkModel net(cluster);
  auto inst = InstanceBuilder("comm-bound")
                  .shape({2})
                  .node_volume(0, 1.0)
                  .node_volume(1, 1.0)
                  .link(0, 1, 1e6)
                  .scheme([](ScheduleSink& s) {
                    const long long a[1] = {0}, b[1] = {1};
                    s.transfer(a, b, 100.0);
                    s.compute(b, 100.0);
                  })
                  .build();
  auto candidates = one_per_processor(cluster);

  auto greedy = GreedyMapper().select(inst, candidates, 0, net, exact());
  auto refined = SwapRefineMapper().select(inst, candidates, 0, net, exact());
  auto best = ExhaustiveMapper().select(inst, candidates, 0, net, exact());

  EXPECT_EQ(greedy.candidate_for_abstract[1], 2);   // fooled by raw speed
  EXPECT_EQ(refined.candidate_for_abstract[1], 1);  // link-aware
  EXPECT_LT(refined.estimated_time, greedy.estimated_time);
  EXPECT_DOUBLE_EQ(refined.estimated_time, best.estimated_time);
}

TEST(Mapper, DefaultMapperIsSwapRefine) {
  EXPECT_EQ(make_default_mapper()->name(), "swap-refine");
}

TEST(Mapper, UsesEstimatedNotTrueSpeeds) {
  // The network model says proc0 is slow even though the cluster says
  // otherwise; the mapper must trust the model (that is HMPI_Recon's role).
  hnoc::Cluster cluster =
      hnoc::ClusterBuilder().add("a", 100.0).add("b", 50.0).add("c", 50.0).build();
  hnoc::NetworkModel net(cluster);
  net.set_speed(0, 1.0);  // recon says proc0 is busy
  auto inst = compute_only_model({0.001, 100});
  auto candidates = one_per_processor(cluster);
  auto result = SwapRefineMapper().select(inst, candidates, 0, net, exact());
  EXPECT_NE(result.candidate_for_abstract[1], 0);
}

}  // namespace
}  // namespace hmpi::map
