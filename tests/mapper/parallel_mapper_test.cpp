// Determinism harness for the parallel, memoized mapper stack
// (docs/mapper.md): whatever SearchContext a caller supplies — no pool, a
// pool of any size, a cache or none — select() must return a bit-identical
// MappingResult. The property tests drive randomly generated models over
// randomly generated clusters so the guarantee is exercised across many
// landscapes, not just the hand-built ones in mapper_test.cpp.
#include "mapper/mapper.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "estimator/estimate_cache.hpp"
#include "hnoc/cluster.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace hmpi::map {
namespace {

using pmdl::InstanceBuilder;
using pmdl::ModelInstance;
using pmdl::ScheduleSink;

/// One randomly generated scenario: cluster, network, model instance and
/// estimate options, all derived deterministically from `rng`.
struct Scenario {
  hnoc::Cluster cluster;
  hnoc::NetworkModel network;
  ModelInstance instance;
  est::EstimateOptions options;

  explicit Scenario(support::Rng& rng)
      : cluster(random_cluster(rng)),
        network(cluster),
        instance(random_instance(rng)),
        options(random_options(rng)) {}

  std::vector<Candidate> candidates() const {
    std::vector<Candidate> cs;
    for (int i = 0; i < cluster.size(); ++i) cs.push_back({i, i});
    return cs;
  }

  static hnoc::Cluster random_cluster(support::Rng& rng) {
    const int machines = static_cast<int>(rng.next_in(6, 8));
    hnoc::ClusterBuilder b;
    for (int i = 0; i < machines; ++i) {
      b.add("m" + std::to_string(i), rng.next_double_in(1.0, 200.0));
    }
    b.network(rng.next_double_in(1e-5, 1e-3), rng.next_double_in(1e6, 1e8));
    // A couple of degraded links so communication shapes the landscape.
    for (int k = 0; k < 2; ++k) {
      const int a = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(machines)));
      const int c = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(machines)));
      if (a != c) b.symmetric_link_override(a, c, rng.next_double_in(1e-4, 1e-2),
                                            rng.next_double_in(1e5, 1e6));
    }
    return b.build();
  }

  /// 4-5 abstract processors, random volumes, ring transfers plus one random
  /// extra edge; parent is abstract 0.
  static ModelInstance random_instance(support::Rng& rng) {
    const long long p = rng.next_in(4, 5);
    InstanceBuilder b("random-model");
    b.shape({p});
    for (long long a = 0; a < p; ++a) {
      b.node_volume(static_cast<int>(a), rng.next_double_in(1.0, 100.0));
    }
    std::vector<std::pair<long long, long long>> edges;
    for (long long a = 0; a < p; ++a) edges.push_back({a, (a + 1) % p});
    edges.push_back({rng.next_in(0, p - 1), rng.next_in(0, p - 1)});
    std::vector<double> bytes;
    for (const auto& e : edges) {
      const double volume =
          e.first == e.second ? 0.0 : rng.next_double_in(1e3, 1e6);
      bytes.push_back(volume);
      if (volume > 0.0) {
        b.link(static_cast<int>(e.first), static_cast<int>(e.second), volume);
      }
    }
    b.scheme([p, edges, bytes](ScheduleSink& s) {
      s.par_begin();
      for (long long a = 0; a < p; ++a) {
        s.par_iter_begin();
        const long long c[1] = {a};
        s.compute(c, 100.0);
      }
      s.par_end();
      for (std::size_t i = 0; i < edges.size(); ++i) {
        if (bytes[i] <= 0.0) continue;
        const long long from[1] = {edges[i].first};
        const long long to[1] = {edges[i].second};
        s.transfer(from, to, 100.0);
      }
    });
    return b.build();
  }

  static est::EstimateOptions random_options(support::Rng& rng) {
    est::EstimateOptions o;
    o.send_overhead_s = rng.next_double_in(0.0, 1e-4);
    o.recv_overhead_s = rng.next_double_in(0.0, 1e-4);
    return o;
  }
};

void expect_bit_identical(const MappingResult& expected,
                          const MappingResult& actual, const char* what) {
  EXPECT_EQ(expected.candidate_for_abstract, actual.candidate_for_abstract)
      << what;
  // EXPECT_EQ, not EXPECT_NEAR: the guarantee is bit-identity.
  EXPECT_EQ(expected.estimated_time, actual.estimated_time) << what;
}

TEST(ParallelExhaustive, BitIdenticalAcrossThreadCountsOnRandomScenarios) {
  support::Rng rng(2026'08'06);
  for (int trial = 0; trial < 8; ++trial) {
    Scenario s(rng);
    auto candidates = s.candidates();
    ExhaustiveMapper mapper;
    const MappingResult serial =
        mapper.select(s.instance, candidates, 0, s.network, s.options);
    for (int threads : {1, 2, 8}) {
      support::ThreadPool pool(threads);
      SearchContext context;
      context.pool = &pool;
      const MappingResult parallel = mapper.select(
          s.instance, candidates, 0, s.network, s.options, context);
      expect_bit_identical(serial, parallel, "exhaustive, pooled");
      EXPECT_EQ(parallel.stats.evaluations, serial.stats.evaluations);
    }
  }
}

TEST(ParallelExhaustive, CachedSelectionsMatchUncachedBitForBit) {
  support::Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    Scenario s(rng);
    auto candidates = s.candidates();
    ExhaustiveMapper mapper;
    const MappingResult uncached =
        mapper.select(s.instance, candidates, 0, s.network, s.options);
    est::EstimateCache cache;
    support::ThreadPool pool(4);
    SearchContext context;
    context.pool = &pool;
    context.cache = &cache;
    const MappingResult first =
        mapper.select(s.instance, candidates, 0, s.network, s.options, context);
    const MappingResult second =
        mapper.select(s.instance, candidates, 0, s.network, s.options, context);
    expect_bit_identical(uncached, first, "exhaustive, cold cache");
    expect_bit_identical(uncached, second, "exhaustive, warm cache");
    // Every evaluation is a cache lookup; the second run re-reads the
    // arrangements the first one already scored.
    EXPECT_EQ(first.stats.cache_hits + first.stats.cache_misses,
              first.stats.evaluations);
    EXPECT_EQ(second.stats.cache_misses, 0);
    EXPECT_EQ(second.stats.cache_hits, second.stats.evaluations);
  }
}

TEST(ParallelExhaustive, PinnedSingleSlotArrangementStillWorksInParallel) {
  // One abstract processor: the parent is the whole arrangement; the chunked
  // search must degenerate gracefully.
  support::Rng rng(11);
  Scenario s(rng);
  InstanceBuilder b("solo");
  b.shape({1});
  b.node_volume(0, 10.0);
  b.scheme([](ScheduleSink& sink) {
    const long long c[1] = {0};
    sink.compute(c, 100.0);
  });
  auto inst = b.build();
  auto candidates = s.candidates();
  support::ThreadPool pool(8);
  SearchContext context;
  context.pool = &pool;
  auto result =
      ExhaustiveMapper().select(inst, candidates, 3, s.network, s.options, context);
  EXPECT_EQ(result.candidate_for_abstract, (std::vector<int>{3}));
}

TEST(ParallelPortfolio, BitIdenticalAcrossThreadCountsOnRandomScenarios) {
  support::Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    Scenario s(rng);
    auto candidates = s.candidates();
    PortfolioMapper mapper;
    const MappingResult serial =
        mapper.select(s.instance, candidates, 0, s.network, s.options);
    for (int threads : {2, 8}) {
      support::ThreadPool pool(threads);
      est::EstimateCache cache;
      SearchContext context;
      context.pool = &pool;
      context.cache = &cache;
      const MappingResult raced = mapper.select(
          s.instance, candidates, 0, s.network, s.options, context);
      expect_bit_identical(serial, raced, "portfolio, pooled+cached");
    }
  }
}

TEST(ParallelPortfolio, NeverWorseThanAnyMember) {
  support::Rng rng(5);
  for (int trial = 0; trial < 4; ++trial) {
    Scenario s(rng);
    auto candidates = s.candidates();
    const auto portfolio =
        PortfolioMapper().select(s.instance, candidates, 0, s.network, s.options);
    const auto greedy =
        GreedyMapper().select(s.instance, candidates, 0, s.network, s.options);
    const auto refined = SwapRefineMapper().select(s.instance, candidates, 0,
                                                   s.network, s.options);
    const auto annealed = AnnealingMapper().select(s.instance, candidates, 0,
                                                   s.network, s.options);
    EXPECT_LE(portfolio.estimated_time, greedy.estimated_time);
    EXPECT_LE(portfolio.estimated_time, refined.estimated_time);
    EXPECT_LE(portfolio.estimated_time, annealed.estimated_time);
  }
}

TEST(ParallelPortfolio, RestartSeedDerivationIsPinned) {
  // base xor index — changing this derivation silently changes every
  // portfolio selection, so the exact values are pinned here.
  EXPECT_EQ(PortfolioMapper::restart_seed(0x48'4d'50'49, 0), 0x48'4d'50'49u);
  EXPECT_EQ(PortfolioMapper::restart_seed(0x48'4d'50'49, 1), 0x48'4d'50'48u);
  EXPECT_EQ(PortfolioMapper::restart_seed(0x48'4d'50'49, 3), 0x48'4d'50'4au);
  EXPECT_EQ(PortfolioMapper::restart_seed(0, 7), 7u);
  // Distinct restarts must never share a trajectory.
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) {
      EXPECT_NE(PortfolioMapper::restart_seed(123, i),
                PortfolioMapper::restart_seed(123, j));
    }
  }
}

TEST(ParallelPortfolio, RestartZeroReproducesThePlainAnnealingMapper) {
  support::Rng rng(13);
  Scenario s(rng);
  auto candidates = s.candidates();
  PortfolioOptions only_annealing;
  only_annealing.annealing_restarts = 1;  // seed derived as base ^ 0 == base
  only_annealing.swap_refine_rounds = 1;
  const auto annealed = AnnealingMapper(only_annealing.annealing)
                            .select(s.instance, candidates, 0, s.network, s.options);
  const auto raced = PortfolioMapper(only_annealing)
                         .select(s.instance, candidates, 0, s.network, s.options);
  EXPECT_LE(raced.estimated_time, annealed.estimated_time);
}

TEST(ParallelPortfolio, RejectsInvalidOptions) {
  PortfolioOptions bad;
  bad.annealing_restarts = -1;
  EXPECT_THROW(PortfolioMapper{bad}, hmpi::InvalidArgument);
  PortfolioOptions bad_rounds;
  bad_rounds.swap_refine_rounds = 0;
  EXPECT_THROW(PortfolioMapper{bad_rounds}, hmpi::InvalidArgument);
}

TEST(ParallelMapper, HillClimbersMatchSerialUnderCacheAndPool) {
  // Swap-refine and annealing never split work across threads, but they must
  // still accept a full context and stay bit-identical under it.
  support::Rng rng(21);
  for (int trial = 0; trial < 4; ++trial) {
    Scenario s(rng);
    auto candidates = s.candidates();
    for (const Mapper* mapper :
         std::initializer_list<const Mapper*>{new SwapRefineMapper(),
                                              new AnnealingMapper()}) {
      std::unique_ptr<const Mapper> owned(mapper);
      const auto plain =
          owned->select(s.instance, candidates, 0, s.network, s.options);
      support::ThreadPool pool(8);
      est::EstimateCache cache;
      SearchContext context;
      context.pool = &pool;
      context.cache = &cache;
      const auto ctxed = owned->select(s.instance, candidates, 0, s.network,
                                       s.options, context);
      expect_bit_identical(plain, ctxed, owned->name().c_str());
    }
  }
}

TEST(CompiledScoring, SelectionsBitIdenticalAcrossEstimatorModes) {
  // The tentpole guarantee of the compiled cost IR (estimator/plan.hpp):
  // interpreter, compiled, and compiled+delta scoring — cached or not, any
  // thread count — produce bit-identical selections.
  support::Rng rng(2026'08'07);
  for (int trial = 0; trial < 5; ++trial) {
    Scenario s(rng);
    auto candidates = s.candidates();
    PortfolioMapper mapper;
    const MappingResult interpreted =
        mapper.select(s.instance, candidates, 0, s.network, s.options);
    for (const bool delta : {false, true}) {
      for (const bool cached : {false, true}) {
        for (int threads : {1, 2, 8}) {
          support::ThreadPool pool(threads);
          est::EstimateCache cache;
          est::PlanCache plans;
          SearchContext context;
          context.pool = &pool;
          context.cache = cached ? &cache : nullptr;
          context.plans = &plans;
          context.delta = delta;
          const MappingResult compiled = mapper.select(
              s.instance, candidates, 0, s.network, s.options, context);
          expect_bit_identical(interpreted, compiled,
                               delta ? "compiled+delta" : "compiled");
          EXPECT_GT(compiled.stats.compiled_evaluations, 0);
          if (delta) EXPECT_GT(compiled.stats.delta_evaluations, 0);
          if (cached) {
            // Every evaluation does exactly one cache lookup on every route.
            EXPECT_EQ(compiled.stats.cache_hits + compiled.stats.cache_misses,
                      compiled.stats.evaluations);
          }
        }
      }
    }
  }
}

TEST(CompiledScoring, HillClimbersMatchInterpreterWithDelta) {
  support::Rng rng(31);
  for (int trial = 0; trial < 4; ++trial) {
    Scenario s(rng);
    auto candidates = s.candidates();
    for (const Mapper* mapper :
         std::initializer_list<const Mapper*>{new SwapRefineMapper(),
                                              new AnnealingMapper(),
                                              new ExhaustiveMapper()}) {
      std::unique_ptr<const Mapper> owned(mapper);
      const auto plain =
          owned->select(s.instance, candidates, 0, s.network, s.options);
      est::PlanCache plans;
      SearchContext context;
      context.plans = &plans;
      context.delta = true;
      const auto fast = owned->select(s.instance, candidates, 0, s.network,
                                      s.options, context);
      expect_bit_identical(plain, fast, owned->name().c_str());
    }
  }
}

TEST(CompiledScoring, DeltaReplaysFewerOpsThanFullEvaluationWould) {
  // Savings come from slots whose first op appears late in the stream (the
  // replay starts at the earliest op touching a changed slot). A staggered
  // pipeline — processor a enters only in phase a — gives every pairwise
  // swap a genuine suffix; a model where every processor appears in the
  // first few ops replays everything and saves nothing.
  support::Rng rng(41);
  Scenario s(rng);
  const long long p = s.cluster.size();
  InstanceBuilder b("pipeline");
  b.shape({p});
  for (long long a = 0; a < p; ++a) {
    b.node_volume(static_cast<int>(a), rng.next_double_in(1.0, 100.0));
  }
  for (long long a = 0; a + 1 < p; ++a) {
    b.link(static_cast<int>(a), static_cast<int>(a + 1), 1e5);
  }
  b.scheme([p](ScheduleSink& sink) {
    for (long long a = 0; a < p; ++a) {
      const long long at[1] = {a};
      for (int slice = 0; slice < 20; ++slice) sink.compute(at, 5.0);
      if (a + 1 < p) {
        const long long next[1] = {a + 1};
        sink.transfer(at, next, 100.0);
      }
    }
  });
  const auto instance = b.build();
  auto candidates = s.candidates();
  est::PlanCache plans;
  SearchContext context;
  context.plans = &plans;
  context.delta = true;
  const auto result = SwapRefineMapper().select(instance, candidates, 0,
                                                s.network, s.options, context);
  EXPECT_GT(result.stats.delta_evaluations, 0);
  EXPECT_GT(result.stats.delta_ops_total, 0);
  // The savings the delta path exists for: strictly fewer IR ops executed
  // than the same number of full evaluations would have cost.
  EXPECT_LT(result.stats.delta_ops_replayed, result.stats.delta_ops_total);
}

/// Every (threads, cache, plans) combination must reproduce the
/// no-context selection bit for bit. Shared by the beam and work-stealing
/// suites below.
void expect_context_invariant(const Mapper& mapper, const Scenario& s,
                              const std::vector<Candidate>& candidates) {
  const MappingResult serial =
      mapper.select(s.instance, candidates, 0, s.network, s.options);
  for (int threads : {1, 2, 8}) {
    for (const bool cached : {false, true}) {
      support::ThreadPool pool(threads);
      est::EstimateCache cache;
      est::PlanCache plans;
      SearchContext context;
      context.pool = &pool;
      context.cache = cached ? &cache : nullptr;
      context.plans = &plans;
      const MappingResult got = mapper.select(s.instance, candidates, 0,
                                              s.network, s.options, context);
      expect_bit_identical(serial, got, mapper.name().c_str());
      if (cached) {
        EXPECT_EQ(got.stats.cache_hits + got.stats.cache_misses,
                  got.stats.evaluations);
      }
    }
  }
}

TEST(BeamSearch, BitIdenticalAcrossThreadsCacheAndPlans) {
  support::Rng rng(2026'08'09);
  for (int trial = 0; trial < 4; ++trial) {
    Scenario s(rng);
    expect_context_invariant(BeamMapper(), s, s.candidates());
  }
}

TEST(BeamSearch, NeverWorseThanGreedyAndRecordsBatches) {
  support::Rng rng(61);
  for (int trial = 0; trial < 4; ++trial) {
    Scenario s(rng);
    auto candidates = s.candidates();
    const auto greedy =
        GreedyMapper().select(s.instance, candidates, 0, s.network, s.options);
    const auto beam =
        BeamMapper().select(s.instance, candidates, 0, s.network, s.options);
    EXPECT_LE(beam.estimated_time, greedy.estimated_time);
    // The frontier is scored through the batch route.
    EXPECT_GT(beam.stats.batch_chunks, 0);
    EXPECT_GE(beam.stats.batch_candidates, beam.stats.batch_chunks);
  }
}

TEST(BeamSearch, RejectsInvalidOptions) {
  BeamOptions bad_width;
  bad_width.width = 0;
  EXPECT_THROW(BeamMapper{bad_width}, hmpi::InvalidArgument);
  BeamOptions bad_rounds;
  bad_rounds.max_rounds = -1;
  EXPECT_THROW(BeamMapper{bad_rounds}, hmpi::InvalidArgument);
  BeamOptions bad_top_k;
  bad_top_k.locality.top_k = 0;
  EXPECT_THROW(BeamMapper{bad_top_k}, hmpi::InvalidArgument);
}

TEST(WorkStealingAnnealing, BitIdenticalAcrossThreadsCacheAndPlans) {
  support::Rng rng(2026'08'08);
  for (int trial = 0; trial < 3; ++trial) {
    Scenario s(rng);
    expect_context_invariant(WorkStealingAnnealingMapper(), s, s.candidates());
  }
}

TEST(WorkStealingAnnealing, NeverWorseThanGreedy) {
  // Chains track their best-seen state and every chain starts from the
  // greedy selection, so the reduction can never lose to greedy.
  support::Rng rng(67);
  for (int trial = 0; trial < 4; ++trial) {
    Scenario s(rng);
    auto candidates = s.candidates();
    const auto greedy =
        GreedyMapper().select(s.instance, candidates, 0, s.network, s.options);
    const auto ws = WorkStealingAnnealingMapper().select(
        s.instance, candidates, 0, s.network, s.options);
    EXPECT_LE(ws.estimated_time, greedy.estimated_time);
  }
}

TEST(WorkStealingAnnealing, ChainSeedDerivationIsPinned) {
  // base xor golden-ratio multiples — changing this silently changes every
  // work-stealing selection, so the exact values are pinned here.
  EXPECT_EQ(WorkStealingAnnealingMapper::chain_seed(0, 0),
            0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(WorkStealingAnnealingMapper::chain_seed(0, 1),
            0x3c6ef372fe94f82aULL);
  EXPECT_EQ(WorkStealingAnnealingMapper::chain_seed(7, 0),
            0x9e3779b97f4a7c12ULL);
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) {
      EXPECT_NE(WorkStealingAnnealingMapper::chain_seed(123, i),
                WorkStealingAnnealingMapper::chain_seed(123, j));
    }
  }
}

TEST(WorkStealingAnnealing, RejectsInvalidOptions) {
  WorkStealingOptions bad_chains;
  bad_chains.chains = 0;
  EXPECT_THROW(WorkStealingAnnealingMapper{bad_chains}, hmpi::InvalidArgument);
  WorkStealingOptions bad_chunk;
  bad_chunk.chunk = -2;
  EXPECT_THROW(WorkStealingAnnealingMapper{bad_chunk}, hmpi::InvalidArgument);
}

/// At-scale scenario: the A10 seeded heterogeneous cluster gives far more
/// candidates than PortfolioOptions::scale_threshold, so the portfolio
/// enrolls {greedy, beam, work-stealing annealing}.
struct AtScaleScenario {
  hnoc::Cluster cluster;
  hnoc::NetworkModel network;
  ModelInstance instance;
  est::EstimateOptions options;

  explicit AtScaleScenario(support::Rng& rng, int machines = 100)
      : cluster(hnoc::testbeds::large_cluster(machines)),
        network(cluster),
        instance(Scenario::random_instance(rng)),
        options(Scenario::random_options(rng)) {}

  std::vector<Candidate> candidates() const {
    std::vector<Candidate> cs;
    for (int i = 0; i < cluster.size(); ++i) cs.push_back({i, i});
    return cs;
  }
};

/// Trimmed at-scale knobs so the property loop stays fast; bit-identity must
/// hold for any tunables.
PortfolioOptions quick_scale_options() {
  PortfolioOptions o;
  o.work_stealing.annealing.iterations = 200;
  o.beam.max_rounds = 4;
  return o;
}

TEST(PortfolioAtScale, BitIdenticalAcrossThreadsCacheAndPlans) {
  support::Rng rng(2026'08'10);
  for (int trial = 0; trial < 2; ++trial) {
    AtScaleScenario s(rng);
    ASSERT_GT(static_cast<int>(s.candidates().size()),
              PortfolioOptions().scale_threshold);
    PortfolioMapper mapper(quick_scale_options());
    const MappingResult serial =
        mapper.select(s.instance, s.candidates(), 0, s.network, s.options);
    for (int threads : {1, 2, 8}) {
      for (const bool cached : {false, true}) {
        support::ThreadPool pool(threads);
        est::EstimateCache cache;
        est::PlanCache plans;
        SearchContext context;
        context.pool = &pool;
        context.cache = cached ? &cache : nullptr;
        context.plans = &plans;
        const MappingResult got = mapper.select(s.instance, s.candidates(), 0,
                                                s.network, s.options, context);
        expect_bit_identical(serial, got, "portfolio, at scale");
      }
    }
  }
}

TEST(PortfolioAtScale, NeverWorseThanGreedyAndScoresInBatches) {
  support::Rng rng(73);
  AtScaleScenario s(rng);
  auto candidates = s.candidates();
  const auto greedy =
      GreedyMapper().select(s.instance, candidates, 0, s.network, s.options);
  const auto scaled = PortfolioMapper(quick_scale_options())
                          .select(s.instance, candidates, 0, s.network,
                                  s.options);
  EXPECT_LE(scaled.estimated_time, greedy.estimated_time);
  EXPECT_GT(scaled.stats.batch_chunks, 0);
  EXPECT_GE(scaled.stats.batch_candidates, scaled.stats.batch_chunks);
}

TEST(PortfolioAtScale, BelowThresholdPathIsUnchanged) {
  // At or below scale_threshold the member list — and the selection — must
  // be exactly the pre-scaling portfolio's. A threshold too high to ever
  // trigger stands in for the pre-scaling build.
  support::Rng rng(79);
  for (int trial = 0; trial < 3; ++trial) {
    Scenario s(rng);
    auto candidates = s.candidates();
    PortfolioOptions legacy;
    legacy.scale_threshold = 1 << 30;
    const auto before = PortfolioMapper(legacy).select(
        s.instance, candidates, 0, s.network, s.options);
    const auto after = PortfolioMapper().select(s.instance, candidates, 0,
                                                s.network, s.options);
    expect_bit_identical(before, after, "portfolio, below threshold");
  }
}

TEST(PortfolioAtScale, RejectsInvalidScaleOptions) {
  PortfolioOptions bad_threshold;
  bad_threshold.scale_threshold = -1;
  EXPECT_THROW(PortfolioMapper{bad_threshold}, hmpi::InvalidArgument);
  PortfolioOptions bad_beam;
  bad_beam.beam.width = 0;
  EXPECT_THROW(PortfolioMapper{bad_beam}, hmpi::InvalidArgument);
  PortfolioOptions bad_ws;
  bad_ws.work_stealing.chains = 0;
  EXPECT_THROW(PortfolioMapper{bad_ws}, hmpi::InvalidArgument);
}

TEST(ParallelMapper, StatsRecordThreadsAndWallTime) {
  support::Rng rng(3);
  Scenario s(rng);
  auto candidates = s.candidates();
  support::ThreadPool pool(4);
  SearchContext context;
  context.pool = &pool;
  auto result = ExhaustiveMapper().select(s.instance, candidates, 0, s.network,
                                          s.options, context);
  EXPECT_EQ(result.stats.threads, 4);
  EXPECT_GT(result.stats.evaluations, 0);
  EXPECT_GE(result.stats.wall_seconds, 0.0);
  EXPECT_EQ(result.stats.cache_hits, 0);  // no cache supplied
  EXPECT_DOUBLE_EQ(result.stats.hit_rate(), 0.0);
}

}  // namespace
}  // namespace hmpi::map
