// Property tests of LoadProfile::finish_time: the analytic integration must
// agree with a brute-force numeric integration of the effective speed, for
// random profiles, start times, and volumes.
#include <gtest/gtest.h>

#include "hnoc/load_profile.hpp"
#include "support/rng.hpp"

namespace hmpi::hnoc {
namespace {

/// Numerically integrates work done between t0 and t1 with a fine step.
double work_between(const LoadProfile& profile, double base_speed, double t0,
                    double t1, double dt = 1e-4) {
  double work = 0.0;
  for (double t = t0; t < t1; t += dt) {
    const double step = std::min(dt, t1 - t);
    work += base_speed * profile.multiplier_at(t) * step;
  }
  return work;
}

class LoadProfilePropertyP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LoadProfilePropertyP, FinishTimeMatchesNumericIntegration) {
  const std::uint64_t seed = GetParam();
  support::Rng rng(seed);

  // Random piecewise profile with 1..5 steps in [0, 10).
  std::vector<LoadProfile::Step> steps;
  const int count = static_cast<int>(rng.next_in(1, 5));
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += rng.next_double_in(0.5, 3.0);
    steps.push_back({t, rng.next_double_in(0.1, 2.0)});
  }
  const LoadProfile profile(steps);

  const double base_speed = rng.next_double_in(1.0, 100.0);
  const double t0 = rng.next_double_in(0.0, 8.0);
  const double units = rng.next_double_in(1.0, 300.0);

  const double finish = profile.finish_time(t0, units, base_speed);
  ASSERT_GT(finish, t0);
  // The work accumulated between t0 and the predicted finish equals `units`.
  const double integrated = work_between(profile, base_speed, t0, finish);
  EXPECT_NEAR(integrated, units, 0.01 * units + 0.05 * base_speed)
      << "seed " << seed;
}

TEST_P(LoadProfilePropertyP, FinishTimeIsMonotoneInVolume) {
  const std::uint64_t seed = GetParam();
  support::Rng rng(seed ^ 0xa5a5);
  const LoadProfile profile({{1.0, rng.next_double_in(0.1, 1.0)},
                             {4.0, rng.next_double_in(0.1, 2.0)}});
  const double speed = rng.next_double_in(1.0, 50.0);
  double previous = 0.0;
  for (double units : {1.0, 5.0, 25.0, 125.0}) {
    const double finish = profile.finish_time(0.0, units, speed);
    EXPECT_GT(finish, previous);
    previous = finish;
  }
}

TEST_P(LoadProfilePropertyP, SplittingAComputationIsEquivalent) {
  // finish(t0, a+b) == finish(finish(t0, a), b): computations compose.
  const std::uint64_t seed = GetParam();
  support::Rng rng(seed ^ 0x1234);
  const LoadProfile profile({{0.5, rng.next_double_in(0.2, 1.5)},
                             {2.5, rng.next_double_in(0.2, 1.5)},
                             {7.0, rng.next_double_in(0.2, 1.5)}});
  const double speed = rng.next_double_in(1.0, 40.0);
  const double a = rng.next_double_in(1.0, 60.0);
  const double b = rng.next_double_in(1.0, 60.0);
  const double whole = profile.finish_time(0.3, a + b, speed);
  const double split = profile.finish_time(profile.finish_time(0.3, a, speed),
                                           b, speed);
  EXPECT_NEAR(whole, split, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoadProfilePropertyP,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace hmpi::hnoc
