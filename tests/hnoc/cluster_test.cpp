#include "hnoc/cluster.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace hmpi::hnoc {
namespace {

Cluster two_machines() {
  return ClusterBuilder()
      .add("fast", 100.0)
      .add("slow", 10.0)
      .network(1e-4, 1e7)
      .shared_memory(1e-6, 1e9)
      .build();
}

TEST(Cluster, SizeAndProcessorAccess) {
  Cluster c = two_machines();
  ASSERT_EQ(c.size(), 2);
  EXPECT_EQ(c.processor(0).name, "fast");
  EXPECT_DOUBLE_EQ(c.processor(1).speed, 10.0);
  EXPECT_THROW(c.processor(2), hmpi::InvalidArgument);
  EXPECT_THROW(c.processor(-1), hmpi::InvalidArgument);
}

TEST(Cluster, RejectsEmptyOrBadSpeeds) {
  EXPECT_THROW(ClusterBuilder().build(), hmpi::InvalidArgument);
  EXPECT_THROW(ClusterBuilder().add("x", 0.0).build(), hmpi::InvalidArgument);
  EXPECT_THROW(ClusterBuilder().add("x", -5.0).build(), hmpi::InvalidArgument);
}

TEST(Cluster, InterMachineLinkUsesNetworkParams) {
  Cluster c = two_machines();
  const LinkParams& l = c.link(0, 1);
  EXPECT_DOUBLE_EQ(l.latency_s, 1e-4);
  EXPECT_DOUBLE_EQ(l.bandwidth_bps, 1e7);
}

TEST(Cluster, IntraMachineLinkUsesSharedMemoryParams) {
  Cluster c = two_machines();
  const LinkParams& l = c.link(1, 1);
  EXPECT_DOUBLE_EQ(l.latency_s, 1e-6);
  EXPECT_DOUBLE_EQ(l.bandwidth_bps, 1e9);
}

TEST(Cluster, LinkOverrideWinsOverDefaults) {
  Cluster c = ClusterBuilder()
                  .add("a", 1.0)
                  .add("b", 1.0)
                  .network(1e-4, 1e7)
                  .link_override(0, 1, 1e-5, 1e8)
                  .build();
  EXPECT_DOUBLE_EQ(c.link(0, 1).latency_s, 1e-5);
  // Reverse direction still uses the default.
  EXPECT_DOUBLE_EQ(c.link(1, 0).latency_s, 1e-4);
}

TEST(Cluster, SymmetricOverrideAppliesBothWays) {
  Cluster c = ClusterBuilder()
                  .add("a", 1.0)
                  .add("b", 1.0)
                  .symmetric_link_override(0, 1, 2e-5, 5e7)
                  .build();
  EXPECT_DOUBLE_EQ(c.link(0, 1).bandwidth_bps, 5e7);
  EXPECT_DOUBLE_EQ(c.link(1, 0).bandwidth_bps, 5e7);
}

TEST(Cluster, TransferTimeFormula) {
  LinkParams l{1e-3, 1e6};
  // 1 ms latency + 500000 bytes at 1 MB/s = 0.501 s
  EXPECT_DOUBLE_EQ(l.transfer_time(500000.0), 0.501);
}

TEST(Cluster, ComputeFinishUsesSpeed) {
  Cluster c = two_machines();
  // 50 units at 100 u/s from t=1 -> 1.5; at 10 u/s -> 6.
  EXPECT_DOUBLE_EQ(c.compute_finish(0, 1.0, 50.0), 1.5);
  EXPECT_DOUBLE_EQ(c.compute_finish(1, 1.0, 50.0), 6.0);
}

TEST(Cluster, ComputeFinishHonoursLoadProfile) {
  Cluster c = ClusterBuilder()
                  .add("loaded", 10.0, LoadProfile::constant(0.5))
                  .build();
  EXPECT_DOUBLE_EQ(c.compute_finish(0, 0.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(c.effective_speed(0, 0.0), 5.0);
}

TEST(Cluster, TotalBaseSpeed) {
  EXPECT_DOUBLE_EQ(two_machines().total_base_speed(), 110.0);
}

TEST(ClusterTestbeds, PaperEm3dNetworkMatchesPaper) {
  Cluster c = testbeds::paper_em3d_network();
  ASSERT_EQ(c.size(), 9);
  EXPECT_DOUBLE_EQ(c.processor(6).speed, 176.0);
  EXPECT_DOUBLE_EQ(c.processor(7).speed, 106.0);
  EXPECT_DOUBLE_EQ(c.processor(8).speed, 9.0);
  for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(c.processor(i).speed, 46.0);
  // 100 Mbit Ethernet: 12.5 MB/s.
  EXPECT_DOUBLE_EQ(c.link(0, 1).bandwidth_bps, 12.5e6);
}

TEST(ClusterTestbeds, PaperMmNetworkMatchesPaper) {
  Cluster c = testbeds::paper_mm_network();
  ASSERT_EQ(c.size(), 9);
  EXPECT_DOUBLE_EQ(c.processor(7).speed, 106.0);
  EXPECT_DOUBLE_EQ(c.processor(8).speed, 9.0);
  for (int i = 0; i < 7; ++i) EXPECT_DOUBLE_EQ(c.processor(i).speed, 46.0);
}

TEST(ClusterTestbeds, HomogeneousHasUniformSpeeds) {
  Cluster c = testbeds::homogeneous(4, 77.0);
  ASSERT_EQ(c.size(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(c.processor(i).speed, 77.0);
  EXPECT_THROW(testbeds::homogeneous(0), hmpi::InvalidArgument);
}

TEST(Cluster, LinkEndpointValidation) {
  Cluster c = two_machines();
  EXPECT_THROW(c.link(0, 2), hmpi::InvalidArgument);
  EXPECT_THROW(c.link(-1, 0), hmpi::InvalidArgument);
}

TEST(ClusterTwoLevel, LinkResolutionByLan) {
  // 2 LANs of 2 machines: {0,1} and {2,3}.
  Cluster c = ClusterBuilder()
                  .add("a", 50)
                  .add("b", 50)
                  .add("c", 50)
                  .add("d", 50)
                  .shared_memory(1e-6, 1e9)
                  .two_level({0, 0, 1, 1}, 5e-5, 1e8, 1e-2, 1e6)
                  .build();
  ASSERT_TRUE(c.two_level());
  EXPECT_EQ(c.lan_of(0), 0);
  EXPECT_EQ(c.lan_of(3), 1);
  // Same LAN -> intra link.
  EXPECT_DOUBLE_EQ(c.link(0, 1).latency_s, 5e-5);
  EXPECT_DOUBLE_EQ(c.link(0, 1).bandwidth_bps, 1e8);
  // Cross LAN -> inter link.
  EXPECT_DOUBLE_EQ(c.link(1, 2).latency_s, 1e-2);
  EXPECT_DOUBLE_EQ(c.link(1, 2).bandwidth_bps, 1e6);
  // Self link still wins over the topology.
  EXPECT_DOUBLE_EQ(c.link(2, 2).latency_s, 1e-6);
}

TEST(ClusterTwoLevel, OverrideBeatsTopology) {
  Cluster c = ClusterBuilder()
                  .add("a", 50)
                  .add("b", 50)
                  .two_level({0, 1}, 5e-5, 1e8, 1e-2, 1e6)
                  .symmetric_link_override(0, 1, 7e-4, 7e7)
                  .build();
  EXPECT_DOUBLE_EQ(c.link(0, 1).latency_s, 7e-4);
  EXPECT_DOUBLE_EQ(c.link(1, 0).bandwidth_bps, 7e7);
}

TEST(ClusterTwoLevel, ValidatesLanVector) {
  // Wrong arity: one id for two processors.
  EXPECT_THROW(ClusterBuilder()
                   .add("a", 50)
                   .add("b", 50)
                   .two_level({0}, 5e-5, 1e8, 1e-2, 1e6)
                   .build(),
               hmpi::InvalidArgument);
  // Negative LAN id.
  EXPECT_THROW(ClusterBuilder()
                   .add("a", 50)
                   .add("b", 50)
                   .two_level({0, -1}, 5e-5, 1e8, 1e-2, 1e6)
                   .build(),
               hmpi::InvalidArgument);
  // Flat cluster: LAN accessors refuse.
  Cluster flat = two_machines();
  EXPECT_FALSE(flat.two_level());
  EXPECT_THROW(flat.lan_of(0), hmpi::InvalidArgument);
  EXPECT_THROW(flat.intra_link(), hmpi::InvalidArgument);
  EXPECT_THROW(flat.inter_link(), hmpi::InvalidArgument);
}

TEST(ClusterTestbeds, TwoLevelShape) {
  Cluster c = testbeds::two_level(3, 4, 60.0);
  ASSERT_EQ(c.size(), 12);
  ASSERT_TRUE(c.two_level());
  for (int p = 0; p < 12; ++p) {
    EXPECT_EQ(c.lan_of(p), p / 4);
    EXPECT_DOUBLE_EQ(c.processor(p).speed, 60.0);
  }
  // Intra is strictly faster than inter.
  EXPECT_LT(c.intra_link().latency_s, c.inter_link().latency_s);
  EXPECT_GT(c.intra_link().bandwidth_bps, c.inter_link().bandwidth_bps);
  EXPECT_THROW(testbeds::two_level(0, 4), hmpi::InvalidArgument);
}

}  // namespace
}  // namespace hmpi::hnoc
