#include "hnoc/cluster_io.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace hmpi::hnoc {
namespace {

TEST(ClusterIo, ParsesTheBasics) {
  Cluster c = parse_cluster(R"(
    # the paper's network, abridged
    network latency 150e-6 bandwidth 12.5e6
    shared_memory latency 5e-6 bandwidth 1e9
    processor ws0 speed 46
    processor ws6 speed 176
    processor ws8 speed 9
  )");
  ASSERT_EQ(c.size(), 3);
  EXPECT_EQ(c.processor(0).name, "ws0");
  EXPECT_DOUBLE_EQ(c.processor(1).speed, 176.0);
  EXPECT_DOUBLE_EQ(c.link(0, 1).latency_s, 150e-6);
  EXPECT_DOUBLE_EQ(c.link(2, 2).bandwidth_bps, 1e9);
}

TEST(ClusterIo, ParsesLoadAttributes) {
  Cluster c = parse_cluster(R"(
    processor busy speed 100 load 0.25
    processor drifts speed 100 load@10 0.5
  )");
  EXPECT_DOUBLE_EQ(c.effective_speed(0, 0.0), 25.0);
  EXPECT_DOUBLE_EQ(c.effective_speed(1, 5.0), 100.0);
  EXPECT_DOUBLE_EQ(c.effective_speed(1, 15.0), 50.0);
}

TEST(ClusterIo, ParsesLinkOverrides) {
  Cluster c = parse_cluster(R"(
    processor a speed 10
    processor b speed 10
    network latency 1e-4 bandwidth 1e7
    link a b latency 1e-5 bandwidth 1e8
    symmetric_link a b latency 2e-5 bandwidth 5e7
  )");
  // The symmetric directive came last and wins in both directions.
  EXPECT_DOUBLE_EQ(c.link(0, 1).latency_s, 2e-5);
  EXPECT_DOUBLE_EQ(c.link(1, 0).latency_s, 2e-5);
}

TEST(ClusterIo, LinksMayReferenceLaterProcessors) {
  Cluster c = parse_cluster(R"(
    link a b latency 1e-5 bandwidth 1e8
    processor a speed 10
    processor b speed 10
  )");
  EXPECT_DOUBLE_EQ(c.link(0, 1).bandwidth_bps, 1e8);
}

TEST(ClusterIo, ErrorsCarryLineNumbers) {
  auto expect_error = [](const char* text, const char* fragment) {
    try {
      parse_cluster(text);
      FAIL() << "expected InvalidArgument for: " << text;
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << "actual: " << e.what();
    }
  };
  expect_error("frobnicate x\n", "unknown directive");
  expect_error("processor a speed banana\n", "malformed speed");
  expect_error("processor a speed 1\nprocessor a speed 2\n", "duplicate");
  expect_error("network latency 1\n", "expected 'latency");
  expect_error("processor a speed 1\nlink a nosuch latency 1 bandwidth 1\n",
               "unknown processor");
  expect_error("processor a speed 1 wibble 2\n", "unknown processor attribute");
  expect_error("\n\nfrobnicate\n", "line 3");
}

TEST(ClusterIo, RoundTripsThroughDescription) {
  Cluster original = parse_cluster(R"(
    network latency 0.00015 bandwidth 12500000
    shared_memory latency 5e-06 bandwidth 1e9
    processor ws0 speed 46
    processor ws6 speed 176 load 0.25
    link ws0 ws6 latency 1e-05 bandwidth 1e8
  )");
  Cluster reparsed = parse_cluster(to_description(original));
  ASSERT_EQ(reparsed.size(), original.size());
  for (int p = 0; p < original.size(); ++p) {
    EXPECT_EQ(reparsed.processor(p).name, original.processor(p).name);
    EXPECT_DOUBLE_EQ(reparsed.processor(p).speed, original.processor(p).speed);
    EXPECT_DOUBLE_EQ(reparsed.effective_speed(p, 0.0),
                     original.effective_speed(p, 0.0));
  }
  for (int a = 0; a < original.size(); ++a) {
    for (int b = 0; b < original.size(); ++b) {
      EXPECT_DOUBLE_EQ(reparsed.link(a, b).latency_s, original.link(a, b).latency_s);
      EXPECT_DOUBLE_EQ(reparsed.link(a, b).bandwidth_bps,
                       original.link(a, b).bandwidth_bps);
    }
  }
}

TEST(ClusterIo, EmptyDescriptionRejected) {
  // No processors declared -> the builder refuses.
  EXPECT_THROW(parse_cluster("network latency 1 bandwidth 1\n"), InvalidArgument);
}

TEST(ClusterIo, TwoLevelDirectivesParse) {
  Cluster c = parse_cluster(R"(
    processor a speed 50
    processor b speed 50
    processor c speed 50
    intra_lan latency 5e-5 bandwidth 1e8
    inter_lan latency 1e-2 bandwidth 1e6
    lan a 0
    lan b 0
    lan c 1
  )");
  ASSERT_TRUE(c.two_level());
  EXPECT_EQ(c.lan_of(0), 0);
  EXPECT_EQ(c.lan_of(2), 1);
  EXPECT_DOUBLE_EQ(c.link(0, 1).latency_s, 5e-5);
  EXPECT_DOUBLE_EQ(c.link(0, 2).latency_s, 1e-2);
}

TEST(ClusterIo, TwoLevelRoundTrips) {
  Cluster original = testbeds::two_level(2, 3, 45.0);
  Cluster reparsed = parse_cluster(to_description(original));
  ASSERT_TRUE(reparsed.two_level());
  ASSERT_EQ(reparsed.size(), original.size());
  for (int p = 0; p < original.size(); ++p) {
    EXPECT_EQ(reparsed.lan_of(p), original.lan_of(p));
  }
  for (int a = 0; a < original.size(); ++a) {
    for (int b = 0; b < original.size(); ++b) {
      EXPECT_DOUBLE_EQ(reparsed.link(a, b).latency_s,
                       original.link(a, b).latency_s);
      EXPECT_DOUBLE_EQ(reparsed.link(a, b).bandwidth_bps,
                       original.link(a, b).bandwidth_bps);
    }
  }
}

TEST(ClusterIo, TwoLevelRejectsPartialLanAssignment) {
  EXPECT_THROW(parse_cluster(R"(
    processor a speed 50
    processor b speed 50
    lan a 0
  )"),
               InvalidArgument);
  EXPECT_THROW(parse_cluster("processor a speed 50\nlan a -1\n"),
               InvalidArgument);
  EXPECT_THROW(parse_cluster("processor a speed 50\nlan ghost 0\n"),
               InvalidArgument);
}

}  // namespace
}  // namespace hmpi::hnoc
