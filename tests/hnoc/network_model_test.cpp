#include "hnoc/network_model.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace hmpi::hnoc {
namespace {

TEST(NetworkModel, InitialisesFromBaseSpeeds) {
  Cluster c = testbeds::paper_em3d_network();
  NetworkModel m(c);
  ASSERT_EQ(m.size(), 9);
  EXPECT_DOUBLE_EQ(m.speed(6), 176.0);
  EXPECT_DOUBLE_EQ(m.speed(8), 9.0);
}

TEST(NetworkModel, SetSpeedUpdatesEstimate) {
  Cluster c = testbeds::homogeneous(3, 50.0);
  NetworkModel m(c);
  m.set_speed(1, 20.0);
  EXPECT_DOUBLE_EQ(m.speed(1), 20.0);
  EXPECT_DOUBLE_EQ(m.speed(0), 50.0);  // others untouched
}

TEST(NetworkModel, SetSpeedRejectsNonPositive) {
  Cluster c = testbeds::homogeneous(2);
  NetworkModel m(c);
  EXPECT_THROW(m.set_speed(0, 0.0), hmpi::InvalidArgument);
  EXPECT_THROW(m.set_speed(0, -3.0), hmpi::InvalidArgument);
}

TEST(NetworkModel, EstimateDivergesFromGroundTruth) {
  // The model is an *estimate*: changing it must not affect the cluster.
  Cluster c = testbeds::homogeneous(2, 50.0);
  NetworkModel m(c);
  m.set_speed(0, 5.0);
  EXPECT_DOUBLE_EQ(c.processor(0).speed, 50.0);
  EXPECT_DOUBLE_EQ(m.speed(0), 5.0);
}

TEST(NetworkModel, LinksReadThroughToTopology) {
  Cluster c = testbeds::paper_em3d_network();
  NetworkModel m(c);
  EXPECT_DOUBLE_EQ(m.link(0, 1).bandwidth_bps, c.link(0, 1).bandwidth_bps);
  EXPECT_DOUBLE_EQ(m.link(2, 2).latency_s, c.link(2, 2).latency_s);
}

TEST(NetworkModel, SpeedsVectorMatchesAccessors) {
  Cluster c = testbeds::paper_mm_network();
  NetworkModel m(c);
  const auto& v = m.speeds();
  ASSERT_EQ(v.size(), 9u);
  for (int i = 0; i < 9; ++i) EXPECT_DOUBLE_EQ(v[static_cast<std::size_t>(i)], m.speed(i));
}

TEST(NetworkModel, RelativeDriftAgainstBaseline) {
  Cluster c = testbeds::homogeneous(3, 100.0);
  NetworkModel m(c);
  EXPECT_DOUBLE_EQ(m.relative_drift(0, 100.0), 0.0);
  m.set_speed(0, 50.0);   // halved
  m.set_speed(1, 150.0);  // 1.5x
  EXPECT_DOUBLE_EQ(m.relative_drift(0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(m.relative_drift(1, 100.0), 0.5);  // symmetric
  EXPECT_DOUBLE_EQ(m.relative_drift(2, 100.0), 0.0);
  // Non-positive baselines read as "no drift" rather than dividing by zero.
  EXPECT_DOUBLE_EQ(m.relative_drift(0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.relative_drift(0, -5.0), 0.0);
}

TEST(NetworkModel, RelativeDriftVectorHandlesShortBaselines) {
  Cluster c = testbeds::homogeneous(3, 100.0);
  NetworkModel m(c);
  m.set_speed(2, 25.0);
  const std::vector<double> drift = m.relative_drift({100.0, 100.0});
  ASSERT_EQ(drift.size(), 3u);
  EXPECT_DOUBLE_EQ(drift[0], 0.0);
  EXPECT_DOUBLE_EQ(drift[1], 0.0);
  EXPECT_DOUBLE_EQ(drift[2], 0.0);  // missing baseline entry: no drift
  const std::vector<double> full = m.relative_drift({100.0, 100.0, 100.0});
  EXPECT_DOUBLE_EQ(full[2], 0.75);
}

}  // namespace
}  // namespace hmpi::hnoc
