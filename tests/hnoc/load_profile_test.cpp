#include "hnoc/load_profile.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace hmpi::hnoc {
namespace {

TEST(LoadProfile, DefaultIsUnloaded) {
  LoadProfile p;
  EXPECT_TRUE(p.is_constant_one());
  EXPECT_DOUBLE_EQ(p.multiplier_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.multiplier_at(1e9), 1.0);
}

TEST(LoadProfile, ConstantMultiplier) {
  LoadProfile p = LoadProfile::constant(0.5);
  EXPECT_DOUBLE_EQ(p.multiplier_at(-100.0), 0.5);
  EXPECT_DOUBLE_EQ(p.multiplier_at(100.0), 0.5);
}

TEST(LoadProfile, StepFunctionSemantics) {
  LoadProfile p({{10.0, 0.5}, {20.0, 2.0}});
  EXPECT_DOUBLE_EQ(p.multiplier_at(0.0), 1.0);   // before first step
  EXPECT_DOUBLE_EQ(p.multiplier_at(10.0), 0.5);  // boundary inclusive
  EXPECT_DOUBLE_EQ(p.multiplier_at(15.0), 0.5);
  EXPECT_DOUBLE_EQ(p.multiplier_at(25.0), 2.0);
}

TEST(LoadProfile, StepsSortedOnConstruction) {
  LoadProfile p({{20.0, 2.0}, {10.0, 0.5}});
  EXPECT_DOUBLE_EQ(p.multiplier_at(15.0), 0.5);
}

TEST(LoadProfile, RejectsNonPositiveMultiplier) {
  EXPECT_THROW(LoadProfile({{0.0, 0.0}}), hmpi::InvalidArgument);
  EXPECT_THROW(LoadProfile({{0.0, -1.0}}), hmpi::InvalidArgument);
}

TEST(LoadProfile, RejectsDuplicateTimes) {
  EXPECT_THROW(LoadProfile({{1.0, 0.5}, {1.0, 2.0}}), hmpi::InvalidArgument);
}

TEST(LoadProfile, FinishTimeUnloaded) {
  LoadProfile p;
  // 100 units at 50 units/s takes 2 s.
  EXPECT_DOUBLE_EQ(p.finish_time(3.0, 100.0, 50.0), 5.0);
}

TEST(LoadProfile, FinishTimeZeroUnits) {
  LoadProfile p;
  EXPECT_DOUBLE_EQ(p.finish_time(3.0, 0.0, 50.0), 3.0);
}

TEST(LoadProfile, FinishTimeCrossesStep) {
  // Full speed until t=10, half speed after.
  LoadProfile p({{10.0, 0.5}});
  // Start at t=8 with 100 units at 25 u/s: 2s at full (50 units), then
  // 50 units at 12.5 u/s = 4 s -> finish at 14.
  EXPECT_DOUBLE_EQ(p.finish_time(8.0, 100.0, 25.0), 14.0);
}

TEST(LoadProfile, FinishTimeStartsInsideStep) {
  LoadProfile p({{10.0, 0.5}, {20.0, 1.0}});
  // Start at t=12 with 100 units at 25 u/s: 8s at 12.5 (100 units) ends
  // exactly at 20.
  EXPECT_DOUBLE_EQ(p.finish_time(12.0, 100.0, 25.0), 20.0);
}

TEST(LoadProfile, FinishTimeMultipleSegments) {
  LoadProfile p({{0.0, 1.0}, {1.0, 0.1}, {2.0, 1.0}});
  // 15 units at 10 u/s starting at 0: 1 s * 10 + 1 s * 1 -> 11 units at t=2,
  // remaining 4 units at 10 u/s -> finish 2.4.
  EXPECT_NEAR(p.finish_time(0.0, 15.0, 10.0), 2.4, 1e-12);
}

TEST(LoadProfile, FinishTimeRejectsBadInputs) {
  LoadProfile p;
  EXPECT_THROW(p.finish_time(0.0, -1.0, 10.0), hmpi::InvalidArgument);
  EXPECT_THROW(p.finish_time(0.0, 1.0, 0.0), hmpi::InvalidArgument);
}

TEST(LoadProfile, HeavierLoadFinishesLater) {
  LoadProfile light = LoadProfile::constant(0.9);
  LoadProfile heavy = LoadProfile::constant(0.3);
  EXPECT_LT(light.finish_time(0.0, 100.0, 10.0),
            heavy.finish_time(0.0, 100.0, 10.0));
}

}  // namespace
}  // namespace hmpi::hnoc
