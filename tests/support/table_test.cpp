#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"

namespace hmpi::support {
namespace {

TEST(Table, RejectsEmptyColumnList) {
  EXPECT_THROW(Table("t", {}), InvalidArgument);
}

TEST(Table, RejectsMismatchedRow) {
  Table t("t", {"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), InvalidArgument);
}

TEST(Table, PrintsHeaderAndRows) {
  Table t("demo", {"n", "time"});
  t.add_row({"1", "0.5"});
  t.add_row({"100", "2.25"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo"), std::string::npos);
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("time"), std::string::npos);
  EXPECT_NE(out.find("2.25"), std::string::npos);
}

TEST(Table, AlignsColumns) {
  Table t("demo", {"x", "y"});
  t.add_row({"1", "22222"});
  std::ostringstream os;
  t.print(os);
  // Header cell "y" must be padded to the widest cell in its column.
  EXPECT_NE(os.str().find("    y"), std::string::npos);
}

TEST(Table, CsvEmitsOneLinePerRow) {
  Table t("demo", {"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "csv:a,b\ncsv:1,2\ncsv:3,4\n");
}

TEST(Table, NumFormatsDoublesWithPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 3), "2.000");
  EXPECT_EQ(Table::num(7ll), "7");
}

TEST(Table, RowCount) {
  Table t("demo", {"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"x"});
  EXPECT_EQ(t.row_count(), 1u);
}

}  // namespace
}  // namespace hmpi::support
