#include "support/matrix.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace hmpi::support {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix<int> m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructsWithInitValue) {
  Matrix<double> m(3, 4, 1.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m.at(r, c), 1.5);
  }
}

TEST(Matrix, AtReadsAndWrites) {
  Matrix<int> m(2, 2);
  m.at(0, 1) = 7;
  m.at(1, 0) = -3;
  EXPECT_EQ(m.at(0, 1), 7);
  EXPECT_EQ(m.at(1, 0), -3);
  EXPECT_EQ(m.at(0, 0), 0);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix<int> m(2, 3);
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW(m.at(0, 3), InvalidArgument);
  const Matrix<int>& cm = m;
  EXPECT_THROW(cm.at(5, 5), InvalidArgument);
}

TEST(Matrix, RowSpanViewsUnderlyingStorage) {
  Matrix<int> m(3, 3);
  std::iota(m.flat().begin(), m.flat().end(), 0);
  auto row1 = m.row(1);
  ASSERT_EQ(row1.size(), 3u);
  EXPECT_EQ(row1[0], 3);
  EXPECT_EQ(row1[2], 5);
  row1[1] = 99;
  EXPECT_EQ(m.at(1, 1), 99);
}

TEST(Matrix, RowThrowsOutOfRange) {
  Matrix<int> m(2, 2);
  EXPECT_THROW(m.row(2), InvalidArgument);
}

TEST(Matrix, FillOverwritesEverything) {
  Matrix<int> m(2, 2, 1);
  m.fill(9);
  for (int v : m.flat()) EXPECT_EQ(v, 9);
}

TEST(Matrix, EqualityComparesShapeAndContents) {
  Matrix<int> a(2, 2, 1);
  Matrix<int> b(2, 2, 1);
  Matrix<int> c(2, 2, 2);
  Matrix<int> d(4, 1, 1);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(Matrix, UncheckedAccessMatchesChecked) {
  Matrix<int> m(2, 3);
  m(1, 2) = 42;
  EXPECT_EQ(m.at(1, 2), 42);
}

}  // namespace
}  // namespace hmpi::support
