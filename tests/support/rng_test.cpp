#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hmpi::support {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 30);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextInSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.next_in(4, 4), 4);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 4000.0, 0.5, 0.05);  // rough uniformity
}

TEST(Rng, NextDoubleInRange) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.next_double_in(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  Rng b(42);
  Rng child2 = b.split();
  // Split is deterministic...
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child.next(), child2.next());
  // ...and differs from the parent stream.
  Rng c(42);
  c.next();  // parent consumed one value creating the child
  EXPECT_NE(child.next(), c.next());
}

}  // namespace
}  // namespace hmpi::support
