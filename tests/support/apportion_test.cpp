#include "support/apportion.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace hmpi::support {
namespace {

TEST(Apportion, ZeroTotal) {
  const double shares[] = {1.0, 2.0};
  EXPECT_EQ(apportion(0, shares), (std::vector<int>{0, 0}));
}

TEST(Apportion, SingleShareTakesEverything) {
  const double shares[] = {0.37};
  EXPECT_EQ(apportion(17, shares), (std::vector<int>{17}));
}

TEST(Apportion, ProportionalAtScale) {
  const double shares[] = {1.0, 3.0};
  EXPECT_EQ(apportion(4000, shares), (std::vector<int>{1000, 3000}));
}

TEST(Apportion, NeverNegativeAndAlwaysExact) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.next_in(1, 10));
    std::vector<double> shares;
    for (int i = 0; i < n; ++i) shares.push_back(rng.next_double_in(0.0, 10.0));
    shares[0] += 0.001;  // keep the sum positive
    const int total = static_cast<int>(rng.next_in(0, 500));
    const auto result = apportion(total, shares);
    EXPECT_EQ(std::accumulate(result.begin(), result.end(), 0), total);
    for (int v : result) EXPECT_GE(v, 0);
  }
}

TEST(Apportion, ErrorWithinOneUnitOfExact) {
  // Largest-remainder guarantees |result_i - exact_i| < 1.
  const double shares[] = {2.5, 7.5, 90.0};
  const auto result = apportion(97, shares);
  const double sum = 100.0;
  for (std::size_t i = 0; i < 3; ++i) {
    const double exact = 97.0 * shares[i] / sum;
    EXPECT_LT(std::abs(result[i] - exact), 1.0);
  }
}

TEST(Apportion, NegativeTotalRejected) {
  const double shares[] = {1.0};
  EXPECT_THROW(apportion(-1, shares), InvalidArgument);
}

TEST(RequireHelper, ThrowsWithMessage) {
  EXPECT_NO_THROW(require(true, "fine"));
  try {
    require(false, "specific message");
    FAIL();
  } catch (const InvalidArgument& e) {
    EXPECT_STREQ(e.what(), "specific message");
  }
}

TEST(ErrorHierarchy, CatchableAsBase) {
  // Every library error is an hmpi::Error and a std::exception.
  auto throws_mp = [] { throw MpError("x"); };
  auto throws_pmdl = [] { throw PmdlError("y", 3, 4); };
  EXPECT_THROW(throws_mp(), Error);
  EXPECT_THROW(throws_pmdl(), Error);
  try {
    throws_pmdl();
  } catch (const PmdlError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_EQ(e.column(), 4);
    EXPECT_STREQ(e.what(), "pmdl:3:4: y");
  }
}

}  // namespace
}  // namespace hmpi::support
