#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "support/error.hpp"

namespace hmpi::support {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(100);
    pool.parallel_for(100, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, SizeCountsTheCallingThread) {
  EXPECT_EQ(ThreadPool(1).size(), 1);
  EXPECT_EQ(ThreadPool(4).size(), 4);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  // With one worker the calling thread executes every task itself, in index
  // order — the property that makes search_threads=1 match serial code.
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<int> order;
  pool.parallel_for(8, [&](int i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(10, [&](int i) { sum += i; });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(ThreadPool, ZeroCountIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](int) { FAIL() << "task must not run"; });
}

TEST(ThreadPool, RethrowsTheLowestIndexException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.parallel_for(16, [&](int i) {
      if (i % 2 == 1) throw InvalidArgument("boom " + std::to_string(i));
      completed++;
    });
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_STREQ(e.what(), "boom 1");
  }
  // Every non-throwing task still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 8);
}

TEST(ThreadPool, ManyMoreChunksThanWorkers) {
  ThreadPool pool(3);
  std::mutex m;
  std::set<int> seen;
  pool.parallel_for(1000, [&](int i) {
    std::lock_guard<std::mutex> lock(m);
    seen.insert(i);
  });
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(ThreadPool, RejectsInvalidConfiguration) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(-1, [](int) {}), InvalidArgument);
  EXPECT_THROW(pool.parallel_for(1, std::function<void(int)>()), InvalidArgument);
}

}  // namespace
}  // namespace hmpi::support
