// CollTuner behaviour: memoization keyed on (op, size bucket, roster, model
// version), invalidation on version bumps, policy/predict bypasses, the
// predicted-fastest guarantee, measured-feedback promotion, and selection
// determinism across runtime configurations (search threads, estimate
// cache) that must not influence collective choices.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <tuple>
#include <vector>

#include "coll/cost.hpp"
#include "coll/tuner.hpp"
#include "hmpi/runtime.hpp"
#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"

namespace hmpi::coll {
namespace {

std::vector<int> full_roster(const hnoc::Cluster& cluster) {
  std::vector<int> procs(static_cast<std::size_t>(cluster.size()));
  std::iota(procs.begin(), procs.end(), 0);
  return procs;
}

TEST(CollTunerTest, MemoizesPerSizeBucket) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  CollTuner tuner(cluster, CollTuner::Options{});
  std::uint64_t version = 1;
  tuner.set_version_source([&] { return version; });
  const std::vector<int> procs = full_roster(cluster);

  double predicted = -1.0;
  const int first = tuner.select(CollOp::kBcast, procs, 1000, &predicted);
  EXPECT_GT(predicted, 0.0);
  EXPECT_EQ(tuner.cache_misses(), 1u);
  EXPECT_EQ(tuner.cache_hits(), 0u);

  // Same power-of-two bucket (512..1023) -> hit; different bucket -> miss.
  EXPECT_EQ(tuner.select(CollOp::kBcast, procs, 1023, &predicted), first);
  EXPECT_EQ(tuner.cache_hits(), 1u);
  tuner.select(CollOp::kBcast, procs, 1024, &predicted);
  EXPECT_EQ(tuner.cache_misses(), 2u);
}

TEST(CollTunerTest, VersionBumpInvalidates) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  CollTuner tuner(cluster, CollTuner::Options{});
  std::uint64_t version = 1;
  tuner.set_version_source([&] { return version; });
  const std::vector<int> procs = full_roster(cluster);

  double predicted = -1.0;
  tuner.select(CollOp::kAllreduce, procs, 4096, &predicted);
  tuner.select(CollOp::kAllreduce, procs, 4096, &predicted);
  EXPECT_EQ(tuner.cache_hits(), 1u);
  version = 2;  // a recon bumped the model
  tuner.select(CollOp::kAllreduce, procs, 4096, &predicted);
  EXPECT_EQ(tuner.cache_misses(), 2u);
}

TEST(CollTunerTest, ForcedPolicyBypassesPrediction) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  CollTuner tuner(cluster, CollTuner::Options{});
  CollPolicy policy;
  policy.set_choice(CollOp::kBcast, static_cast<int>(BcastAlgo::kChain));
  tuner.set_policy(policy);
  const std::vector<int> procs = full_roster(cluster);

  double predicted = 0.0;
  const int algo = tuner.select(CollOp::kBcast, procs, 1 << 20, &predicted);
  EXPECT_EQ(algo, static_cast<int>(BcastAlgo::kChain));
  EXPECT_LT(predicted, 0.0);  // no prediction on the forced path
  EXPECT_EQ(tuner.cache_misses(), 0u);
  EXPECT_EQ(tuner.cache_hits(), 0u);
}

TEST(CollTunerTest, PredictOffReturnsLegacyDefault) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  CollTuner::Options options;
  options.predict = false;
  CollTuner tuner(cluster, options);
  const std::vector<int> procs = full_roster(cluster);
  double predicted = 0.0;
  for (CollOp op : {CollOp::kBcast, CollOp::kReduce, CollOp::kAllreduce,
                    CollOp::kReduceScatter, CollOp::kAllgather,
                    CollOp::kBarrier}) {
    EXPECT_EQ(tuner.select(op, procs, 4096, &predicted), legacy_default(op));
    EXPECT_LT(predicted, 0.0);
  }
}

TEST(CollTunerTest, SelectionIsPredictedFastest) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel network(cluster);
  CollTuner tuner(cluster, CollTuner::Options{});
  const std::vector<int> procs = full_roster(cluster);
  for (CollOp op : {CollOp::kBcast, CollOp::kReduce, CollOp::kAllreduce,
                    CollOp::kReduceScatter, CollOp::kAllgather,
                    CollOp::kBarrier}) {
    for (std::size_t bytes : {std::size_t{8}, std::size_t{4096},
                              std::size_t{1} << 20}) {
      double predicted = -1.0;
      const int chosen = tuner.select(op, procs, bytes, &predicted);
      ASSERT_GE(chosen, 1);
      // The representative size of the bucket containing `bytes`.
      std::size_t rep = 1;
      while (rep * 2 <= bytes) rep *= 2;
      for (int algo = 1; algo <= algo_count(op); ++algo) {
        const double cost = collective_cost(op, algo, procs, rep, network);
        EXPECT_GE(cost + 1e-15, predicted)
            << op_name(op) << ": " << algo_name(op, algo)
            << " beats the chosen " << algo_name(op, chosen);
      }
    }
  }
}

TEST(CollTunerTest, FeedbackPromotionReRanks) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  CollTuner::Options options;
  options.feedback = true;
  options.feedback_alpha = 1.0;  // adopt an observation immediately
  CollTuner tuner(cluster, options);
  std::uint64_t version = 1;
  tuner.set_version_source([&] { return version; });
  const std::vector<int> procs = full_roster(cluster);

  double predicted = -1.0;
  const int first = tuner.select(CollOp::kAllgather, procs, 4096, &predicted);
  ASSERT_GT(predicted, 0.0);

  // Report the chosen algorithm as 100x slower than predicted; staged
  // observations change nothing until promoted at a quiescent point.
  tuner.observe(CollOp::kAllgather, first, 4096, predicted * 100.0, predicted);
  EXPECT_EQ(tuner.select(CollOp::kAllgather, procs, 4096, &predicted), first);
  tuner.promote_feedback();
  const int after = tuner.select(CollOp::kAllgather, procs, 4096, &predicted);
  EXPECT_NE(after, first) << "a 100x penalty must dethrone the choice";
}

TEST(CollTunerTest, FeedbackRatioReadsThePromotedEwma) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  CollTuner::Options options;
  options.feedback = true;
  options.feedback_alpha = 1.0;
  CollTuner tuner(cluster, options);
  std::uint64_t version = 1;
  tuner.set_version_source([&] { return version; });
  const std::vector<int> procs = full_roster(cluster);

  double predicted = -1.0;
  const int algo = tuner.select(CollOp::kBcast, procs, 2048, &predicted);
  ASSERT_GT(predicted, 0.0);
  // Nothing promoted yet: the gauge source reads <= 0 (the runtime skips
  // emitting coll.feedback.* for such pairs).
  EXPECT_LE(tuner.feedback_ratio(CollOp::kBcast, algo), 0.0);

  tuner.observe(CollOp::kBcast, algo, 2048, predicted * 3.0, predicted);
  EXPECT_LE(tuner.feedback_ratio(CollOp::kBcast, algo), 0.0);  // still staged
  tuner.promote_feedback();
  // alpha = 1: the ratio is exactly measured / predicted.
  EXPECT_DOUBLE_EQ(tuner.feedback_ratio(CollOp::kBcast, algo), 3.0);
  // Out-of-range algos read as unobserved rather than throwing.
  EXPECT_LE(tuner.feedback_ratio(CollOp::kBcast, 0), 0.0);
  EXPECT_LE(tuner.feedback_ratio(CollOp::kBcast, 99), 0.0);
}

// Selections must be identical whatever the mapper threading or estimator
// caching configuration: the tuner's inputs are only (op, roster, bucket,
// model version, policy).
TEST(CollTunerTest, RuntimeSelectionsAreConfigInvariant) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  using Row = std::tuple<int, int, double>;  // op, algo, predicted
  const auto collect = [&](int threads, bool cache) {
    std::vector<Row> rows;
    RuntimeConfig config;
    config.search_threads = threads;
    config.estimate_cache = cache;
    mp::World::run_one_per_processor(cluster, [&](mp::Proc& proc) {
      Runtime rt(proc, config);
      rt.recon([](mp::Proc& q) { q.compute(1.0); });
      if (rt.is_host()) {
        for (CollOp op : {CollOp::kBcast, CollOp::kReduce, CollOp::kAllreduce,
                          CollOp::kReduceScatter, CollOp::kAllgather,
                          CollOp::kBarrier}) {
          for (std::size_t bytes : {std::size_t{8}, std::size_t{4096},
                                    std::size_t{1} << 20}) {
            const Runtime::CollSelection sel = rt.coll_selection(op, bytes);
            rows.emplace_back(static_cast<int>(op), sel.algo, sel.predicted_s);
          }
        }
      }
      rt.finalize();
    });
    return rows;
  };

  const std::vector<Row> baseline = collect(1, true);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(collect(8, true), baseline);
  EXPECT_EQ(collect(1, false), baseline);
  EXPECT_EQ(collect(8, false), baseline);
}

}  // namespace
}  // namespace hmpi::coll
