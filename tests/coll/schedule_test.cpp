// Structural checks of the collective schedules (src/coll/schedule.hpp):
// every algorithm's message plan is validated with a symbolic replay that
// mirrors the executor's two-pass round discipline — sends use pre-round
// state — proving data-flow correctness without running a simulation.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "coll/schedule.hpp"

#include "hnoc/cluster.hpp"

namespace hmpi::coll {
namespace {

const int kSizes[] = {1, 2, 3, 5, 8, 9, 13};

int ceil_log2(int n) {
  int rounds = 0;
  while ((1 << rounds) < n) ++rounds;
  return rounds;
}

int max_round(const std::vector<Step>& steps) {
  int last = -1;
  for (const Step& s : steps) last = std::max(last, s.round);
  return last + 1;  // number of rounds
}

// Basic well-formedness shared by every schedule.
void check_well_formed(const std::vector<Step>& steps, int n,
                       std::size_t total) {
  int prev_round = 0;
  for (const Step& s : steps) {
    ASSERT_GE(s.round, prev_round) << "rounds must be non-decreasing";
    prev_round = s.round;
    ASSERT_GE(s.src, 0);
    ASSERT_LT(s.src, n);
    ASSERT_GE(s.dst, 0);
    ASSERT_LT(s.dst, n);
    ASSERT_NE(s.src, s.dst) << "self messages must be elided";
    if (s.action != Step::Action::kToken) {
      // Zero-count steps are legal: an empty halving block still sends an
      // (empty) message so the pairing stays synchronised.
      ASSERT_LE(s.offset + s.count, total) << "range outside the vector";
    }
  }
}

// Replays a single-source distribution schedule (bcast, allgather): tracks
// which elements each member holds; a send is only legal for elements the
// sender held before the current round.
void check_coverage(const std::vector<Step>& steps, int n, std::size_t total,
                    std::vector<std::vector<char>> has) {
  std::vector<std::vector<char>> pre = has;
  std::size_t i = 0;
  while (i < steps.size()) {
    std::size_t j = i;
    while (j < steps.size() && steps[j].round == steps[i].round) ++j;
    pre = has;
    for (std::size_t k = i; k < j; ++k) {
      const Step& s = steps[k];
      ASSERT_EQ(s.action, Step::Action::kCopy);
      for (std::size_t e = s.offset; e < s.offset + s.count; ++e) {
        ASSERT_TRUE(pre[static_cast<std::size_t>(s.src)][e])
            << "member " << s.src << " sends element " << e
            << " before holding it (round " << s.round << ")";
        has[static_cast<std::size_t>(s.dst)][e] = 1;
      }
    }
    i = j;
  }
  for (int r = 0; r < n; ++r) {
    for (std::size_t e = 0; e < total; ++e) {
      EXPECT_TRUE(has[static_cast<std::size_t>(r)][e])
          << "member " << r << " never receives element " << e;
    }
  }
}

// Replays a reduction schedule: each member starts holding its own
// contribution for every element; a combine must merge disjoint contribution
// sets (double-counting would corrupt a sum), a copy overwrites them.
// `full_at(rank, elem)` says where the complete reduction must end up.
using Mask = std::uint32_t;

void check_contributions(const std::vector<Step>& steps, int n,
                         std::size_t total,
                         const std::function<bool(int, std::size_t)>& full_at) {
  const Mask all = n == 32 ? ~Mask{0} : (Mask{1} << n) - 1;
  std::vector<std::vector<Mask>> mask(
      static_cast<std::size_t>(n), std::vector<Mask>(total, 0));
  for (int r = 0; r < n; ++r) {
    for (std::size_t e = 0; e < total; ++e) {
      mask[static_cast<std::size_t>(r)][e] = Mask{1} << r;
    }
  }
  std::vector<std::vector<Mask>> pre = mask;
  std::size_t i = 0;
  while (i < steps.size()) {
    std::size_t j = i;
    while (j < steps.size() && steps[j].round == steps[i].round) ++j;
    pre = mask;
    for (std::size_t k = i; k < j; ++k) {
      const Step& s = steps[k];
      ASSERT_NE(s.action, Step::Action::kToken);
      for (std::size_t e = s.offset; e < s.offset + s.count; ++e) {
        const Mask incoming = pre[static_cast<std::size_t>(s.src)][e];
        ASSERT_NE(incoming, 0u) << "sending an empty contribution";
        Mask& d = mask[static_cast<std::size_t>(s.dst)][e];
        if (s.action == Step::Action::kCombine) {
          ASSERT_EQ(d & incoming, 0u)
              << "overlapping combine at element " << e << " round "
              << s.round << " (" << s.src << " -> " << s.dst << ")";
          d |= incoming;
        } else {
          d = incoming;
        }
      }
    }
    i = j;
  }
  for (int r = 0; r < n; ++r) {
    for (std::size_t e = 0; e < total; ++e) {
      if (full_at(r, e)) {
        EXPECT_EQ(mask[static_cast<std::size_t>(r)][e], all)
            << "member " << r << " element " << e
            << " missing contributions";
      }
    }
  }
}

TEST(Schedules, SingleMemberIsEmpty) {
  for (CollOp op : {CollOp::kBcast, CollOp::kReduce, CollOp::kAllreduce,
                    CollOp::kReduceScatter, CollOp::kAllgather,
                    CollOp::kBarrier}) {
    for (int algo = 1; algo <= algo_count(op); ++algo) {
      EXPECT_TRUE(schedule_for(op, algo, 1, 0, 16).empty())
          << op_name(op) << "/" << algo_name(op, algo);
    }
  }
}

TEST(Schedules, BcastDeliversFromEveryAlgorithmAndRoot) {
  const std::size_t count = 10;
  for (int n : kSizes) {
    const std::vector<int> procs(static_cast<std::size_t>(n), 0);
    for (int algo = 1; algo <= algo_count(CollOp::kBcast); ++algo) {
      for (int root : {0, n - 1, n / 2}) {
        const auto steps = bcast_schedule(static_cast<BcastAlgo>(algo), n,
                                          root, count, procs, 4);
        check_well_formed(steps, n, count);
        std::vector<std::vector<char>> has(
            static_cast<std::size_t>(n), std::vector<char>(count, 0));
        has[static_cast<std::size_t>(root)].assign(count, 1);
        check_coverage(steps, n, count, std::move(has));
      }
    }
  }
}

TEST(Schedules, BinomialBcastUsesLogRounds) {
  for (int n : kSizes) {
    if (n < 2) continue;
    const auto steps = bcast_schedule(BcastAlgo::kBinomial, n, 0, 8);
    EXPECT_EQ(max_round(steps), ceil_log2(n)) << "n=" << n;
    EXPECT_EQ(steps.size(), static_cast<std::size_t>(n - 1));
  }
}

TEST(Schedules, ChainBcastSegmentsThePayload) {
  // 10 elements in segments of 4 -> 3 segments down a 4-member chain.
  const auto steps = bcast_schedule(BcastAlgo::kChain, 4, 0, 10, {}, 4);
  check_well_formed(steps, 4, 10);
  EXPECT_EQ(steps.size(), 9u);  // 3 segments x 3 hops
  std::vector<std::vector<char>> has(4, std::vector<char>(10, 0));
  has[0].assign(10, 1);
  check_coverage(steps, 4, 10, std::move(has));
}

TEST(Schedules, ReduceGathersAllContributions) {
  const std::size_t count = 6;
  for (int n : kSizes) {
    for (int algo = 1; algo <= algo_count(CollOp::kReduce); ++algo) {
      for (int root : {0, n - 1}) {
        const auto steps =
            reduce_schedule(static_cast<ReduceAlgo>(algo), n, root, count);
        check_well_formed(steps, n, count);
        check_contributions(steps, n, count, [&](int r, std::size_t) {
          return r == root;
        });
      }
    }
  }
}

TEST(Schedules, AllreduceLeavesEveryoneComplete) {
  const std::size_t count = 6;
  for (int n : kSizes) {
    for (int algo = 1; algo <= algo_count(CollOp::kAllreduce); ++algo) {
      const auto steps =
          allreduce_schedule(static_cast<AllreduceAlgo>(algo), n, count);
      check_well_formed(steps, n, count);
      check_contributions(steps, n, count,
                          [](int, std::size_t) { return true; });
    }
  }
}

TEST(Schedules, ReduceScatterOwnsOneBlockEach) {
  const std::size_t block = 3;
  for (int n : kSizes) {
    const std::size_t total = block * static_cast<std::size_t>(n);
    for (int algo = 1; algo <= algo_count(CollOp::kReduceScatter); ++algo) {
      const auto steps = reduce_scatter_schedule(
          static_cast<ReduceScatterAlgo>(algo), n, block);
      check_well_formed(steps, n, total);
      check_contributions(steps, n, total, [&](int r, std::size_t e) {
        return e / block == static_cast<std::size_t>(r);
      });
    }
  }
}

TEST(Schedules, AllgatherFillsEveryBlockEverywhere) {
  const std::size_t block = 3;
  for (int n : kSizes) {
    const std::size_t total = block * static_cast<std::size_t>(n);
    for (int algo = 1; algo <= algo_count(CollOp::kAllgather); ++algo) {
      const auto steps =
          allgather_schedule(static_cast<AllgatherAlgo>(algo), n, block);
      check_well_formed(steps, n, total);
      std::vector<std::vector<char>> has(
          static_cast<std::size_t>(n), std::vector<char>(total, 0));
      for (int r = 0; r < n; ++r) {
        for (std::size_t e = 0; e < block; ++e) {
          has[static_cast<std::size_t>(r)][static_cast<std::size_t>(r) * block + e] = 1;
        }
      }
      check_coverage(steps, n, total, std::move(has));
    }
  }
}

TEST(Schedules, RingAllgatherUsesNMinusOneRounds) {
  for (int n : kSizes) {
    if (n < 2) continue;
    const auto steps = allgather_schedule(AllgatherAlgo::kRing, n, 2);
    EXPECT_EQ(max_round(steps), n - 1) << "n=" << n;
  }
}

TEST(Schedules, BarrierEveryoneHearsFromEveryone) {
  for (int n : kSizes) {
    for (int algo = 1; algo <= algo_count(CollOp::kBarrier); ++algo) {
      const auto steps =
          barrier_schedule(static_cast<BarrierAlgo>(algo), n);
      check_well_formed(steps, n, 0);
      // Token reachability with the two-pass discipline: after the replay
      // every member must (transitively) have heard from every other.
      std::vector<Mask> knows(static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) knows[static_cast<std::size_t>(r)] = Mask{1} << r;
      std::vector<Mask> pre = knows;
      std::size_t i = 0;
      while (i < steps.size()) {
        std::size_t j = i;
        while (j < steps.size() && steps[j].round == steps[i].round) ++j;
        pre = knows;
        for (std::size_t k = i; k < j; ++k) {
          ASSERT_EQ(steps[k].action, Step::Action::kToken);
          knows[static_cast<std::size_t>(steps[k].dst)] |=
              pre[static_cast<std::size_t>(steps[k].src)];
        }
        i = j;
      }
      const Mask all = (Mask{1} << n) - 1;
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(knows[static_cast<std::size_t>(r)], all)
            << algo_name(CollOp::kBarrier, algo) << " n=" << n << " rank " << r;
      }
    }
  }
}

TEST(Schedules, DisseminationBarrierUsesLogRounds) {
  for (int n : kSizes) {
    if (n < 2) continue;
    const auto steps = barrier_schedule(BarrierAlgo::kDissemination, n);
    EXPECT_EQ(max_round(steps), ceil_log2(n)) << "n=" << n;
  }
}

TEST(Schedules, TagWrapsWithinReservedBlock) {
  Step s;
  s.round = 300;
  EXPECT_EQ(s.tag(), 300 & 0xff);
}

TEST(TwoLevelGroups, FlatClusterPassesMachineIdsThrough) {
  hnoc::Cluster flat = hnoc::testbeds::homogeneous(4);
  const std::vector<int> procs{3, 1, 1, 0};
  EXPECT_EQ(two_level_groups(flat, procs), procs);
}

TEST(TwoLevelGroups, TwoLevelClusterCollapsesToLanIds) {
  // 2 LANs x 3 machines: machines {0,1,2} are LAN 0, {3,4,5} LAN 1.
  hnoc::Cluster c = hnoc::testbeds::two_level(2, 3);
  const std::vector<int> procs{0, 2, 3, 5};
  EXPECT_EQ(two_level_groups(c, procs), (std::vector<int>{0, 0, 1, 1}));
}

TEST(TwoLevelGroups, BcastElectsOneLeaderPerLan) {
  // 4 members on 4 distinct machines of 2 LANs. With LAN grouping the
  // two-level bcast must cross the inter-LAN boundary exactly once; with raw
  // machine ids every non-root member would be its own leader (4 distinct
  // "machines") and three messages would cross.
  hnoc::Cluster c = hnoc::testbeds::two_level(2, 2);
  const std::vector<int> procs{0, 1, 2, 3};  // LANs {0,0,1,1}
  const std::vector<int> groups = two_level_groups(c, procs);
  const std::vector<Step> steps = bcast_schedule(
      BcastAlgo::kTwoLevel, 4, /*root=*/0, /*count=*/1024, groups);
  int cross_lan = 0;
  for (const Step& s : steps) {
    if (c.lan_of(procs[static_cast<std::size_t>(s.src)]) !=
        c.lan_of(procs[static_cast<std::size_t>(s.dst)])) {
      ++cross_lan;
    }
  }
  EXPECT_EQ(cross_lan, 1);
}

}  // namespace
}  // namespace hmpi::coll
