// Cost-model fidelity: every algorithm's analytical cost (coll/cost.hpp)
// must equal its simulated virtual makespan on an idle network, because the
// executor and the cost replay consume the same schedule with the same
// timing formulas. This is the property that makes the tuner's
// predicted-fastest pick the measured-fastest pick.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "coll/cost.hpp"
#include "estimator/estimator.hpp"
#include "hnoc/cluster.hpp"
#include "hnoc/network_model.hpp"
#include "mpsim/comm.hpp"

namespace hmpi::coll {
namespace {

struct Case {
  const char* name;
  hnoc::Cluster cluster;
};

std::vector<Case> cases() {
  std::vector<Case> cs;
  cs.push_back({"homogeneous5", hnoc::testbeds::homogeneous(5, 100.0)});
  cs.push_back({"homogeneous8", hnoc::testbeds::homogeneous(8, 100.0)});
  cs.push_back({"paper9", hnoc::testbeds::paper_em3d_network()});
  return cs;
}

// Runs one collective as the very first action of a fresh world (idle
// clocks, idle links) with the algorithm pinned via the per-comm policy and
// returns the virtual makespan.
double simulate(const hnoc::Cluster& cluster, CollOp op, int algo,
                std::size_t elems_or_block) {
  CollPolicy policy;
  policy.set_choice(op, algo);
  const auto result = mp::World::run_one_per_processor(
      cluster, [&](mp::Proc& p) {
        mp::Comm comm = p.world_comm();
        comm.set_coll_policy(policy);
        const int n = comm.size();
        const auto sum = [](double a, double b) { return a + b; };
        switch (op) {
          case CollOp::kBcast: {
            std::vector<double> data(elems_or_block,
                                     static_cast<double>(p.rank()));
            comm.bcast(std::span<double>(data), 0);
            break;
          }
          case CollOp::kReduce: {
            std::vector<double> in(elems_or_block, 1.0);
            std::vector<double> out(elems_or_block, 0.0);
            comm.reduce(std::span<const double>(in), std::span<double>(out),
                        sum, 0);
            break;
          }
          case CollOp::kAllreduce: {
            std::vector<double> in(elems_or_block, 1.0);
            std::vector<double> out(elems_or_block, 0.0);
            comm.allreduce(std::span<const double>(in),
                           std::span<double>(out), sum);
            break;
          }
          case CollOp::kReduceScatter: {
            std::vector<double> in(
                elems_or_block * static_cast<std::size_t>(n), 1.0);
            std::vector<double> out(elems_or_block, 0.0);
            comm.reduce_scatter(std::span<const double>(in),
                                std::span<double>(out), sum);
            break;
          }
          case CollOp::kAllgather: {
            std::vector<double> mine(elems_or_block,
                                     static_cast<double>(p.rank()));
            std::vector<double> all(
                elems_or_block * static_cast<std::size_t>(n), 0.0);
            comm.allgather(std::span<const double>(mine),
                           std::span<double>(all));
            break;
          }
          case CollOp::kBarrier:
            comm.barrier();
            break;
        }
      });
  return result.makespan;
}

TEST(CostFidelity, PredictionEqualsSimulationForEveryAlgorithm) {
  // 10000 doubles: big enough that the chain bcast splits into two 64 KiB
  // segments, so pipelining fidelity is exercised too.
  const std::size_t elems = 10000;
  const std::size_t block = 64;
  for (const Case& c : cases()) {
    const int n = c.cluster.size();
    hnoc::NetworkModel network(c.cluster);
    std::vector<int> procs(static_cast<std::size_t>(n));
    std::iota(procs.begin(), procs.end(), 0);
    for (CollOp op : {CollOp::kBcast, CollOp::kReduce, CollOp::kAllreduce,
                      CollOp::kReduceScatter, CollOp::kAllgather,
                      CollOp::kBarrier}) {
      const bool blocked =
          op == CollOp::kReduceScatter || op == CollOp::kAllgather;
      const std::size_t per_member = blocked ? block : elems;
      const std::size_t bytes =
          op == CollOp::kBarrier
              ? 0
              : (blocked ? block * static_cast<std::size_t>(n) : elems) *
                    sizeof(double);
      for (int algo = 1; algo <= algo_count(op); ++algo) {
        const double predicted =
            collective_cost(op, algo, procs, bytes, network);
        const double measured = simulate(c.cluster, op, algo, per_member);
        EXPECT_NEAR(measured, predicted, 1e-12 + 1e-9 * predicted)
            << c.name << " " << op_name(op) << "/" << algo_name(op, algo);
      }
    }
  }
}

TEST(CostFidelity, EstimatorDelegateMatches) {
  // est::collective_time is the estimator's entry point into the same cost
  // function; algo 0 resolves the legacy default.
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  hnoc::NetworkModel network(cluster);
  std::vector<int> procs(static_cast<std::size_t>(cluster.size()));
  std::iota(procs.begin(), procs.end(), 0);
  const double direct = collective_cost(CollOp::kBcast,
                                        legacy_default(CollOp::kBcast), procs,
                                        4096, network);
  // algo 0 resolves to the legacy default inside the estimator delegate.
  const double delegated =
      est::collective_time(CollOp::kBcast, 0, procs, 4096, network);
  EXPECT_DOUBLE_EQ(direct, delegated);
  const double measured =
      simulate(cluster, CollOp::kBcast, legacy_default(CollOp::kBcast), 512);
  EXPECT_NEAR(direct, measured, 1e-12 + 1e-9 * direct);
}

}  // namespace
}  // namespace hmpi::coll
