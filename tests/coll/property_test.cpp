// Property test: every algorithm of every collective produces bit-identical
// results to a locally computed reference, across random rosters (including
// non-power-of-two sizes), random message sizes, and an armed seeded
// FaultPlan. Exact operators (int64 sum/xor, double max) make the reference
// order-independent, so "bit-identical" is well-defined for every combine
// tree. Internal collective traffic is exempt from drop/delay injection
// (tags above kMaxUserTag), so an armed plan must change nothing.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"
#include "support/rng.hpp"

namespace hmpi::coll {
namespace {

// Deterministic per-(rank, element) payload every rank can reconstruct.
std::int64_t value_at(std::uint64_t seed, int rank, std::size_t elem) {
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(rank) * 0xc2b2ae3d27d4eb4full +
                    static_cast<std::uint64_t>(elem) * 0x165667b19e3779f9ull;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 32;
  return static_cast<std::int64_t>(x >> 8);  // keep sums far from overflow
}

struct Scenario {
  int n;               // roster size
  std::size_t elems;   // vector length (bcast/reduce/allreduce)
  std::size_t block;   // per-member block (reduce_scatter/allgather)
  int root;
  std::uint64_t seed;
  hnoc::Cluster cluster;
  mp::World::Options options;
};

Scenario make_scenario(std::uint64_t seed, bool with_faults) {
  support::Rng rng(seed);
  const int sizes[] = {1, 2, 3, 5, 8, 9, 13};
  const int n = sizes[rng.next_in(0, 6)];
  const auto elems = static_cast<std::size_t>(rng.next_in(1, 97));
  const auto block = static_cast<std::size_t>(rng.next_in(1, 33));
  const int root = n == 1 ? 0 : static_cast<int>(rng.next_in(0, n - 1));
  // Random heterogeneous roster: per-machine speeds in [10, 200].
  hnoc::ClusterBuilder builder;
  for (int i = 0; i < n; ++i) {
    builder.add("m" + std::to_string(i), rng.next_double_in(10.0, 200.0));
  }
  Scenario s{n, elems, block, root, seed, builder.build(), {}};
  if (with_faults) {
    // Armed drop/delay schedule: collective-internal tags are exempt, so
    // the results (and completion) must be unaffected.
    s.options.faults.drop_probability = 0.5;
    s.options.faults.delay_probability = 0.5;
    s.options.faults.delay_s = 0.5;
    s.options.faults.seed = seed ^ 0xfau;
  }
  return s;
}

template <typename Op>
void run_all_algorithms(const Scenario& s, Op combine) {
  mp::World::run_one_per_processor(
      s.cluster,
      [&](mp::Proc& p) {
        mp::Comm comm = p.world_comm();
        const int n = comm.size();
        const int me = comm.rank();

        std::vector<std::int64_t> mine(s.elems);
        for (std::size_t e = 0; e < s.elems; ++e) {
          mine[e] = value_at(s.seed, me, e);
        }
        std::vector<std::int64_t> reduced(s.elems);
        for (std::size_t e = 0; e < s.elems; ++e) {
          std::int64_t acc = value_at(s.seed, 0, e);
          for (int r = 1; r < n; ++r) acc = combine(acc, value_at(s.seed, r, e));
          reduced[e] = acc;
        }

        for (int algo = 1; algo <= algo_count(CollOp::kBcast); ++algo) {
          CollPolicy policy;
          policy.set_choice(CollOp::kBcast, algo);
          comm.set_coll_policy(policy);
          std::vector<std::int64_t> data =
              me == s.root ? mine : std::vector<std::int64_t>(s.elems, -1);
          comm.bcast(std::span<std::int64_t>(data), s.root);
          for (std::size_t e = 0; e < s.elems; ++e) {
            ASSERT_EQ(data[e], value_at(s.seed, s.root, e))
                << "bcast/" << algo_name(CollOp::kBcast, algo);
          }
        }

        for (int algo = 1; algo <= algo_count(CollOp::kReduce); ++algo) {
          CollPolicy policy;
          policy.set_choice(CollOp::kReduce, algo);
          comm.set_coll_policy(policy);
          std::vector<std::int64_t> out(s.elems, -1);
          comm.reduce(std::span<const std::int64_t>(mine),
                      std::span<std::int64_t>(out), combine, s.root);
          if (me == s.root) {
            for (std::size_t e = 0; e < s.elems; ++e) {
              ASSERT_EQ(out[e], reduced[e])
                  << "reduce/" << algo_name(CollOp::kReduce, algo);
            }
          }
        }

        for (int algo = 1; algo <= algo_count(CollOp::kAllreduce); ++algo) {
          CollPolicy policy;
          policy.set_choice(CollOp::kAllreduce, algo);
          comm.set_coll_policy(policy);
          std::vector<std::int64_t> out(s.elems, -1);
          comm.allreduce(std::span<const std::int64_t>(mine),
                         std::span<std::int64_t>(out), combine);
          for (std::size_t e = 0; e < s.elems; ++e) {
            ASSERT_EQ(out[e], reduced[e])
                << "allreduce/" << algo_name(CollOp::kAllreduce, algo);
          }
        }

        const std::size_t total = s.block * static_cast<std::size_t>(n);
        std::vector<std::int64_t> blocks(total);
        for (std::size_t e = 0; e < total; ++e) {
          blocks[e] = value_at(s.seed, me, e);
        }
        for (int algo = 1; algo <= algo_count(CollOp::kReduceScatter);
             ++algo) {
          CollPolicy policy;
          policy.set_choice(CollOp::kReduceScatter, algo);
          comm.set_coll_policy(policy);
          std::vector<std::int64_t> out(s.block, -1);
          comm.reduce_scatter(std::span<const std::int64_t>(blocks),
                              std::span<std::int64_t>(out), combine);
          for (std::size_t e = 0; e < s.block; ++e) {
            const std::size_t idx = static_cast<std::size_t>(me) * s.block + e;
            std::int64_t acc = value_at(s.seed, 0, idx);
            for (int r = 1; r < n; ++r) {
              acc = combine(acc, value_at(s.seed, r, idx));
            }
            ASSERT_EQ(out[e], acc)
                << "reduce_scatter/"
                << algo_name(CollOp::kReduceScatter, algo);
          }
        }

        for (int algo = 1; algo <= algo_count(CollOp::kAllgather); ++algo) {
          CollPolicy policy;
          policy.set_choice(CollOp::kAllgather, algo);
          comm.set_coll_policy(policy);
          std::vector<std::int64_t> send(s.block);
          for (std::size_t e = 0; e < s.block; ++e) {
            send[e] = value_at(s.seed, me, e);
          }
          std::vector<std::int64_t> all(total, -1);
          comm.allgather(std::span<const std::int64_t>(send),
                         std::span<std::int64_t>(all));
          for (int r = 0; r < n; ++r) {
            for (std::size_t e = 0; e < s.block; ++e) {
              ASSERT_EQ(all[static_cast<std::size_t>(r) * s.block + e],
                        value_at(s.seed, r, e))
                  << "allgather/" << algo_name(CollOp::kAllgather, algo);
            }
          }
        }

        for (int algo = 1; algo <= algo_count(CollOp::kBarrier); ++algo) {
          CollPolicy policy;
          policy.set_choice(CollOp::kBarrier, algo);
          comm.set_coll_policy(policy);
          comm.barrier();
        }
      },
      s.options);
}

class CollPropertyP
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(CollPropertyP, EveryAlgorithmMatchesReference) {
  const auto [seed, with_faults] = GetParam();
  const Scenario s = make_scenario(seed, with_faults);
  SCOPED_TRACE("seed " + std::to_string(seed) + " n " + std::to_string(s.n) +
               " elems " + std::to_string(s.elems) + " faults " +
               std::to_string(with_faults));
  run_all_algorithms(s, [](std::int64_t a, std::int64_t b) { return a + b; });
  run_all_algorithms(s, [](std::int64_t a, std::int64_t b) { return a ^ b; });
}

TEST_P(CollPropertyP, DoubleMaxMatchesReference) {
  const auto [seed, with_faults] = GetParam();
  Scenario s = make_scenario(seed ^ 0x5eedull, with_faults);
  SCOPED_TRACE("seed " + std::to_string(seed));
  // max over doubles is exact regardless of combine order.
  mp::World::run_one_per_processor(
      s.cluster,
      [&](mp::Proc& p) {
        mp::Comm comm = p.world_comm();
        const int n = comm.size();
        std::vector<double> in(s.elems);
        for (std::size_t e = 0; e < s.elems; ++e) {
          in[e] = static_cast<double>(value_at(s.seed, comm.rank(), e));
        }
        const auto max_op = [](double a, double b) { return a > b ? a : b; };
        for (int algo = 1; algo <= algo_count(CollOp::kAllreduce); ++algo) {
          CollPolicy policy;
          policy.set_choice(CollOp::kAllreduce, algo);
          comm.set_coll_policy(policy);
          std::vector<double> out(s.elems, 0.0);
          comm.allreduce(std::span<const double>(in), std::span<double>(out),
                         max_op);
          for (std::size_t e = 0; e < s.elems; ++e) {
            double expected = static_cast<double>(value_at(s.seed, 0, e));
            for (int r = 1; r < n; ++r) {
              expected = max_op(expected,
                                static_cast<double>(value_at(s.seed, r, e)));
            }
            ASSERT_EQ(out[e], expected)
                << "allreduce/" << algo_name(CollOp::kAllreduce, algo);
          }
        }
      },
      s.options);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CollPropertyP,
    ::testing::Combine(::testing::Values(11ull, 23ull, 47ull, 83ull, 131ull,
                                         197ull),
                       ::testing::Bool()));

}  // namespace
}  // namespace hmpi::coll
