#include "telemetry/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace hmpi::telemetry {
namespace {

TEST(JsonQuote, EscapesSpecials) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("a\nb\tc"), "\"a\\nb\\tc\"");
  EXPECT_EQ(json_quote(std::string("a\x01") + "b"), "\"a\\u0001b\"");
}

TEST(JsonNumber, IntegralPrintsWithoutPoint) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-7.0), "-7");
}

TEST(JsonNumber, NonFiniteIsNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonNumber, FractionRoundTrips) {
  const std::string s = json_number(0.1);
  EXPECT_DOUBLE_EQ(std::stod(s), 0.1);
}

TEST(ParseJson, Document) {
  const auto doc = parse_json(
      R"({"a": 1, "b": [true, false, null], "c": {"nested": "x\n"}, "d": -2.5e3})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_DOUBLE_EQ(doc->find("a")->number, 1.0);
  ASSERT_TRUE(doc->find("b")->is_array());
  EXPECT_EQ(doc->find("b")->array.size(), 3u);
  EXPECT_TRUE(doc->find("b")->array[0].boolean);
  EXPECT_TRUE(doc->find("b")->array[2].is_null());
  EXPECT_EQ(doc->find("c")->find("nested")->string, "x\n");
  EXPECT_DOUBLE_EQ(doc->find("d")->number, -2500.0);
}

TEST(ParseJson, RejectsMalformed) {
  std::string error;
  EXPECT_FALSE(parse_json("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_json("[1,]").has_value());
  EXPECT_FALSE(parse_json("{\"a\": 1} trailing").has_value());
  EXPECT_FALSE(parse_json("'single'").has_value());
  EXPECT_FALSE(parse_json("01a").has_value());
  EXPECT_FALSE(parse_json("\"unterminated").has_value());
}

TEST(ParseJson, QuoteRoundTrips) {
  const std::string encoded = json_quote("line1\nline2\t\"quoted\"");
  const auto doc = parse_json(encoded);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string, "line1\nline2\t\"quoted\"");
}

TEST(ParseJson, UnicodeEscape) {
  const auto doc = parse_json("\"A\\u00e9\"");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string, "A\xC3\xA9");  // U+00E9 as UTF-8
}

}  // namespace
}  // namespace hmpi::telemetry
