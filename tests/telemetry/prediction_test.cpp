#include "telemetry/prediction.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "telemetry/json.hpp"

namespace hmpi::telemetry {
namespace {

TEST(Prediction, RecordAndMatch) {
  PredictionLedger ledger;
  ledger.record_predicted("Em3d", 1, 1.0);
  ledger.record_measured(1, 1.2);
  const auto samples = ledger.samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_TRUE(samples[0].has_measured);
  EXPECT_DOUBLE_EQ(samples[0].predicted_s, 1.0);
  EXPECT_DOUBLE_EQ(samples[0].measured_s, 1.2);
  // |1.0 - 1.2| / 1.2
  EXPECT_NEAR(ledger.mean_relative_error(), 0.2 / 1.2, 1e-12);
}

TEST(Prediction, MeasuredTotalIsSplitOverRuns) {
  PredictionLedger ledger;
  ledger.record_predicted("Em3d", 1, 2.0);
  ledger.record_measured(1, 8.0, /*runs=*/4);  // per-run mean is 2.0
  EXPECT_DOUBLE_EQ(ledger.samples()[0].measured_s, 2.0);
  EXPECT_DOUBLE_EQ(ledger.mean_relative_error(), 0.0);
}

TEST(Prediction, LatestUnmeasuredSampleWins) {
  // Group ids restart per simulated world: a measurement for id 1 must land
  // on the most recent world's prediction, not the first.
  PredictionLedger ledger;
  ledger.record_predicted("Em3d", 1, 1.0);
  ledger.record_measured(1, 1.0);
  ledger.record_predicted("Em3d", 1, 5.0);
  ledger.record_measured(1, 10.0);
  const auto samples = ledger.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].measured_s, 1.0);
  EXPECT_DOUBLE_EQ(samples[1].measured_s, 10.0);
}

TEST(Prediction, UnmatchedMeasurementIsIgnored) {
  PredictionLedger ledger;
  ledger.record_predicted("Em3d", 1, 1.0);
  ledger.record_measured(99, 1.0);  // no such group
  EXPECT_FALSE(ledger.samples()[0].has_measured);
  EXPECT_TRUE(std::isnan(ledger.mean_relative_error()));
}

TEST(Prediction, SummaryPerModelSorted) {
  PredictionLedger ledger;
  ledger.record_predicted("ParallelAxB", 1, 1.0);
  ledger.record_measured(1, 2.0);  // rel error 0.5
  ledger.record_predicted("Em3d", 2, 1.0);
  ledger.record_measured(2, 1.0);  // rel error 0
  ledger.record_predicted("Em3d", 3, 0.9);
  ledger.record_measured(3, 1.0);  // rel error 0.1
  const auto summary = ledger.summary();
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[0].model, "Em3d");
  EXPECT_EQ(summary[0].samples, 2);
  EXPECT_NEAR(summary[0].mean_rel_error, 0.05, 1e-12);
  EXPECT_NEAR(summary[0].max_rel_error, 0.1, 1e-12);
  EXPECT_EQ(summary[1].model, "ParallelAxB");
  EXPECT_NEAR(summary[1].mean_rel_error, 0.5, 1e-12);
  // Per-model filtering matches the summary.
  EXPECT_NEAR(ledger.mean_relative_error("Em3d"), 0.05, 1e-12);
  EXPECT_NEAR(ledger.mean_relative_error("ParallelAxB"), 0.5, 1e-12);
  EXPECT_TRUE(std::isnan(ledger.mean_relative_error("NoSuchModel")));
}

TEST(Prediction, EmptyLedgerIsNaN) {
  PredictionLedger ledger;
  EXPECT_TRUE(std::isnan(ledger.mean_relative_error()));
  EXPECT_TRUE(ledger.summary().empty());
  EXPECT_EQ(ledger.size(), 0u);
}

TEST(Prediction, WriteJsonParses) {
  PredictionLedger ledger;
  ledger.record_predicted("Em3d", 1, 1.5);
  ledger.record_measured(1, 2.0);
  ledger.record_predicted("Em3d", 2, 1.0);  // still unmeasured
  std::ostringstream os;
  ledger.write_json(os);
  std::string error;
  const auto doc = parse_json(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* samples = doc->find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_TRUE(samples->is_array());
  EXPECT_EQ(samples->array.size(), 2u);
  EXPECT_EQ(samples->array[0].find("model")->string, "Em3d");
  const JsonValue* models = doc->find("models");
  ASSERT_NE(models, nullptr);
  ASSERT_EQ(models->array.size(), 1u);
  EXPECT_DOUBLE_EQ(models->array[0].find("samples")->number, 1.0);
}

TEST(Prediction, CapacityPrunesOldestMatchedPairsIntoExactAggregates) {
  PredictionLedger ledger;
  ledger.set_capacity(2);
  // Three matched pairs with relative errors 0.5, 0.25, and 0.0.
  ledger.record_predicted("Em3d", 1, 1.0);
  ledger.record_measured(1, 2.0);  // |1-2|/2 = 0.5
  ledger.record_predicted("Em3d", 2, 3.0);
  ledger.record_measured(2, 4.0);  // |3-4|/4 = 0.25
  ledger.record_predicted("Em3d", 3, 5.0);
  ledger.record_measured(3, 5.0);  // 0.0

  // The oldest pair was folded away; the statistics remain exact over all 3.
  EXPECT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger.total_recorded(), 3u);
  EXPECT_EQ(ledger.samples().size(), 2u);
  EXPECT_EQ(ledger.samples()[0].group_id, 2);
  const auto summary = ledger.summary();
  ASSERT_EQ(summary.size(), 1u);
  EXPECT_EQ(summary[0].samples, 3);
  EXPECT_NEAR(summary[0].mean_rel_error, 0.75 / 3.0, 1e-12);
  EXPECT_NEAR(summary[0].max_rel_error, 0.5, 1e-12);
  EXPECT_NEAR(ledger.mean_relative_error("Em3d"), 0.25, 1e-12);
}

TEST(Prediction, UnmatchedPredictionsAreNeverPruned) {
  PredictionLedger ledger;
  ledger.set_capacity(1);
  // Two outstanding predictions, then enough matched pairs to overflow.
  ledger.record_predicted("Open", 100, 1.0);
  ledger.record_predicted("Open", 101, 1.0);
  for (int id = 1; id <= 4; ++id) {
    ledger.record_predicted("Churn", id, 1.0);
    ledger.record_measured(id, 1.0);
  }
  // Retained: 1 matched pair + the 2 unmatched predictions.
  EXPECT_EQ(ledger.size(), 3u);
  int unmatched = 0;
  for (const auto& s : ledger.samples()) {
    if (!s.has_measured) unmatched += 1;
  }
  EXPECT_EQ(unmatched, 2);
  // A late measurement still finds its prediction and can be pruned next.
  ledger.record_measured(100, 2.0);
  EXPECT_NEAR(ledger.mean_relative_error("Open"), 0.5, 1e-12);
}

TEST(Prediction, ShrinkingCapacityPrunesImmediately) {
  PredictionLedger ledger;
  for (int id = 1; id <= 10; ++id) {
    ledger.record_predicted("Em3d", id, 1.0);
    ledger.record_measured(id, 2.0);
  }
  EXPECT_EQ(ledger.size(), 10u);
  ledger.set_capacity(3);
  EXPECT_EQ(ledger.size(), 3u);
  EXPECT_EQ(ledger.total_recorded(), 10u);
  EXPECT_EQ(ledger.summary()[0].samples, 10);
  EXPECT_NEAR(ledger.mean_relative_error(), 0.5, 1e-12);
}

TEST(Prediction, PrunedStatisticsSurviveInWriteJson) {
  PredictionLedger ledger;
  ledger.set_capacity(1);
  ledger.record_predicted("Em3d", 1, 1.0);
  ledger.record_measured(1, 2.0);
  ledger.record_predicted("Em3d", 2, 1.0);
  ledger.record_measured(2, 1.0);
  std::ostringstream os;
  ledger.write_json(os);
  std::string error;
  const auto doc = parse_json(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("samples")->array.size(), 1u);  // retained window only
  const JsonValue* models = doc->find("models");
  ASSERT_NE(models, nullptr);
  ASSERT_EQ(models->array.size(), 1u);
  EXPECT_DOUBLE_EQ(models->array[0].find("samples")->number, 2.0);  // exact
}

TEST(Prediction, ClearEmpties) {
  PredictionLedger ledger;
  ledger.record_predicted("Em3d", 1, 1.0);
  ledger.clear();
  EXPECT_EQ(ledger.size(), 0u);
  EXPECT_TRUE(ledger.samples().empty());
}

}  // namespace
}  // namespace hmpi::telemetry
