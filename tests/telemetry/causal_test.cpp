// Causal log and critical-path analyzer units (docs/observability.md):
// HMPI_PROF mode resolution, ring rotation and drop accounting, the
// synthetic-DAG path walk (telescoping to the makespan, blame attribution,
// ring-horizon truncation), the `{"critical_path": {...}}` JSON shape, the
// crit.* gauge export, and Perfetto flow-event pairing.
#include "telemetry/causal.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "telemetry/critpath.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace hmpi::telemetry {
namespace {

/// Scoped setenv/unsetenv (tests in this binary run single-threaded).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = ::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

// ---------------------------------------------------------------------------
// Mode resolution.
// ---------------------------------------------------------------------------

TEST(ProfModeResolution, UnsetDefaultsToRing) {
  ScopedEnv env("HMPI_PROF", nullptr);
  EXPECT_EQ(resolve_prof_mode(ProfMode::kAuto), ProfMode::kRing);
}

TEST(ProfModeResolution, EnvSpellings) {
  for (const char* v : {"0", "off", "false", "no"}) {
    ScopedEnv env("HMPI_PROF", v);
    EXPECT_EQ(resolve_prof_mode(ProfMode::kAuto), ProfMode::kOff) << v;
  }
  for (const char* v : {"1", "on", "true", "yes", "full"}) {
    ScopedEnv env("HMPI_PROF", v);
    EXPECT_EQ(resolve_prof_mode(ProfMode::kAuto), ProfMode::kFull) << v;
  }
  {
    ScopedEnv env("HMPI_PROF", "ring");
    EXPECT_EQ(resolve_prof_mode(ProfMode::kAuto), ProfMode::kRing);
  }
  {
    // Unrecognised spellings keep the always-on default.
    ScopedEnv env("HMPI_PROF", "banana");
    EXPECT_EQ(resolve_prof_mode(ProfMode::kAuto), ProfMode::kRing);
  }
}

TEST(ProfModeResolution, ExplicitModesIgnoreEnv) {
  ScopedEnv env("HMPI_PROF", "full");
  EXPECT_EQ(resolve_prof_mode(ProfMode::kOff), ProfMode::kOff);
  EXPECT_EQ(resolve_prof_mode(ProfMode::kRing), ProfMode::kRing);
}

// ---------------------------------------------------------------------------
// Ring storage.
// ---------------------------------------------------------------------------

CausalEvent compute_event(int rank, double t0, double t1) {
  CausalEvent e;
  e.kind = CausalEvent::Kind::kCompute;
  e.rank = rank;
  e.proc = rank;
  e.t0 = t0;
  e.t1 = t1;
  return e;
}

TEST(CausalLog, RingOverwritesOldestAndCountsDrops) {
  CausalLog log(1, ProfMode::kRing, /*ring_capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    log.record(0, compute_event(0, i, i + 1));
  }
  const auto events = log.events_of(0);
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving first: events 2..5 remain, 0 and 1 were overwritten.
  EXPECT_DOUBLE_EQ(events.front().t0, 2.0);
  EXPECT_DOUBLE_EQ(events.back().t1, 6.0);
  EXPECT_EQ(log.dropped_of(0), 2u);
  EXPECT_EQ(log.size(), 4u);
}

TEST(CausalLog, FullModeKeepsEverything) {
  CausalLog log(1, ProfMode::kFull, /*ring_capacity=*/4);
  for (int i = 0; i < 100; ++i) log.record(0, compute_event(0, i, i + 1));
  EXPECT_EQ(log.events_of(0).size(), 100u);
  EXPECT_EQ(log.dropped_of(0), 0u);
}

TEST(CausalLog, OffModeRecordsNothing) {
  CausalLog log(2, ProfMode::kOff);
  EXPECT_FALSE(log.enabled());
  log.record(0, compute_event(0, 0.0, 1.0));
  EXPECT_EQ(log.size(), 0u);
}

TEST(CausalLog, OutOfRangeRankIsIgnored) {
  CausalLog log(2, ProfMode::kFull);
  log.record(-1, compute_event(-1, 0.0, 1.0));
  log.record(2, compute_event(2, 0.0, 1.0));
  EXPECT_EQ(log.size(), 0u);
}

// ---------------------------------------------------------------------------
// Synthetic path walk. Two ranks, one message:
//   rank 0 (machine 0): compute [0, 1], send [1, 1.1] -> arrival 1.6
//   rank 1 (machine 1): recv   [0, 1.7] (arrival 1.6), compute [1.7, 2.0]
// The path must telescope 2.0 -> 0 through the message edge.
// ---------------------------------------------------------------------------

CausalLog two_rank_log() {
  CausalLog log(2, ProfMode::kFull);
  log.record(0, compute_event(0, 0.0, 1.0));
  CausalEvent send;
  send.kind = CausalEvent::Kind::kSend;
  send.rank = 0;
  send.proc = 0;
  send.peer = 1;
  send.peer_proc = 1;
  send.seq = 0;
  send.bytes = 1000;
  send.t0 = 1.0;
  send.t1 = 1.1;
  send.arrival = 1.6;
  log.record(0, send);
  CausalEvent recv;
  recv.kind = CausalEvent::Kind::kRecv;
  recv.rank = 1;
  recv.proc = 1;
  recv.peer = 0;
  recv.peer_proc = 0;
  recv.seq = 0;
  recv.t0 = 0.0;
  recv.t1 = 1.7;
  recv.arrival = 1.6;
  log.record(1, recv);
  log.record(1, compute_event(1, 1.7, 2.0));
  return log;
}

TEST(CriticalPath, TelescopesToTheMakespan) {
  const CriticalPathReport report = analyze_critical_path(two_rank_log());
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.end_rank, 1);
  EXPECT_DOUBLE_EQ(report.makespan_s, 2.0);
  // Bit-identical, not approximate: adjacent segments share clock values.
  EXPECT_EQ(report.path_s, report.makespan_s);
  EXPECT_EQ(report.events_dropped, 0u);

  // Chronological segments: compute(0) send transfer recv_ovh compute(1).
  ASSERT_EQ(report.segments.size(), 5u);
  EXPECT_EQ(report.segments[0].kind, PathSegment::Kind::kCompute);
  EXPECT_EQ(report.segments[1].kind, PathSegment::Kind::kSendOverhead);
  EXPECT_EQ(report.segments[2].kind, PathSegment::Kind::kTransfer);
  EXPECT_EQ(report.segments[3].kind, PathSegment::Kind::kRecvOverhead);
  EXPECT_EQ(report.segments[4].kind, PathSegment::Kind::kCompute);
  for (std::size_t i = 1; i < report.segments.size(); ++i) {
    EXPECT_DOUBLE_EQ(report.segments[i - 1].t1, report.segments[i].t0) << i;
  }

  // Blame: machine seconds to each end, all message seconds to link 0 -> 1
  // (the receive overhead charges the link that delivered the message).
  EXPECT_DOUBLE_EQ(report.machine_s.at(0), 1.0);
  EXPECT_DOUBLE_EQ(report.machine_s.at(1), 0.3);
  EXPECT_DOUBLE_EQ(report.link_s.at({0, 1}), 0.1 + 0.5 + 0.1);
  EXPECT_DOUBLE_EQ(report.compute_s, 1.3);
  EXPECT_DOUBLE_EQ(report.transfer_s, 0.5);
  EXPECT_DOUBLE_EQ(report.overhead_s, 0.2);
  EXPECT_DOUBLE_EQ(report.gap_s, 0.0);
}

TEST(CriticalPath, RingHorizonTruncatesWithGap) {
  // Capacity 2 keeps only the last two events of rank 0: the walk cannot
  // reach t = 0 and must report the unattributed prefix as a gap.
  CausalLog log(1, ProfMode::kRing, /*ring_capacity=*/2);
  for (int i = 0; i < 5; ++i) log.record(0, compute_event(0, i, i + 1));
  const CriticalPathReport report = analyze_critical_path(log);
  EXPECT_FALSE(report.complete);
  EXPECT_DOUBLE_EQ(report.makespan_s, 5.0);
  EXPECT_DOUBLE_EQ(report.path_s, 2.0);  // the two surviving events
  EXPECT_DOUBLE_EQ(report.gap_s, 3.0);
  EXPECT_EQ(report.events_dropped, 3u);
  ASSERT_FALSE(report.segments.empty());
  EXPECT_EQ(report.segments.front().kind, PathSegment::Kind::kGap);
}

TEST(CriticalPath, MarksStayOffThePath) {
  CausalLog log(1, ProfMode::kFull);
  log.record(0, compute_event(0, 0.0, 1.0));
  CausalEvent mark;
  mark.kind = CausalEvent::Kind::kMark;
  mark.flags = CausalEvent::kCrash;
  mark.rank = 0;
  mark.proc = 0;
  mark.t0 = mark.t1 = 1.0;
  log.record(0, mark);
  const CriticalPathReport report = analyze_critical_path(log);
  EXPECT_TRUE(report.complete);
  EXPECT_DOUBLE_EQ(report.makespan_s, 1.0);
  ASSERT_EQ(report.segments.size(), 1u);
  EXPECT_EQ(report.segments[0].kind, PathSegment::Kind::kCompute);
}

TEST(CriticalPath, EmptyLogIsTriviallyComplete) {
  const CriticalPathReport on = analyze_critical_path(
      CausalLog(2, ProfMode::kFull));
  EXPECT_TRUE(on.complete);
  EXPECT_DOUBLE_EQ(on.makespan_s, 0.0);
  const CriticalPathReport off = analyze_critical_path(
      CausalLog(2, ProfMode::kOff));
  EXPECT_FALSE(off.complete);  // a disabled log has nothing to say
}

TEST(CriticalPath, CollectiveAnnotationsAccumulate) {
  CausalLog log(1, ProfMode::kFull);
  CausalEvent e = compute_event(0, 0.0, 1.0);
  e.coll_op = 2;
  e.coll_algo = 1;
  log.record(0, e);
  const CriticalPathReport report = analyze_critical_path(log);
  ASSERT_EQ(report.coll_s.size(), 1u);
  EXPECT_DOUBLE_EQ(report.coll_s.at({2, 1}), 1.0);
}

// ---------------------------------------------------------------------------
// Exports.
// ---------------------------------------------------------------------------

TEST(CriticalPath, JsonReportShape) {
  const CriticalPathReport report = analyze_critical_path(two_rank_log());
  std::ostringstream os;
  write_critpath_json(os, report);
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* cp = doc->find("critical_path");
  ASSERT_NE(cp, nullptr);
  ASSERT_TRUE(cp->is_object());
  const JsonValue* complete = cp->find("complete");
  ASSERT_NE(complete, nullptr);
  EXPECT_EQ(complete->type, JsonValue::Type::kBool);
  EXPECT_TRUE(complete->boolean);
  const JsonValue* path_s = cp->find("path_s");
  ASSERT_NE(path_s, nullptr);
  EXPECT_DOUBLE_EQ(path_s->number, 2.0);
  const JsonValue* links = cp->find("links");
  ASSERT_NE(links, nullptr);
  ASSERT_EQ(links->array.size(), 1u);
  EXPECT_DOUBLE_EQ(links->array[0].find("seconds")->number, 0.7);
  const JsonValue* segments = cp->find("segments");
  ASSERT_NE(segments, nullptr);
  EXPECT_EQ(segments->array.size(), 5u);
}

TEST(CriticalPath, GaugesLandInTheRegistry) {
  MetricsRegistry reg;
  report_to_metrics(analyze_critical_path(two_rank_log()), reg);
  const auto snap = reg.snapshot();
  auto gauge = [&](const std::string& name) {
    for (const auto& [n, v] : snap.gauges) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing gauge " << name;
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(gauge("crit.path_seconds"), 2.0);
  EXPECT_DOUBLE_EQ(gauge("crit.makespan_seconds"), 2.0);
  EXPECT_DOUBLE_EQ(gauge("crit.complete"), 1.0);
  EXPECT_DOUBLE_EQ(gauge("crit.machine.0.seconds"), 1.0);
  EXPECT_DOUBLE_EQ(gauge("crit.link.0.1.seconds"), 0.7);
}

TEST(CriticalPath, FlowEventsPairSendsWithReceives) {
  const auto flows = causal_flow_events(two_rank_log());
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].ph, 's');
  EXPECT_EQ(flows[1].ph, 'f');
  EXPECT_EQ(flows[0].flow_id, flows[1].flow_id);
  EXPECT_EQ(flows[0].tid, 0);  // start on the sender's timeline
  EXPECT_EQ(flows[1].tid, 1);  // finish on the receiver's
  EXPECT_DOUBLE_EQ(flows[0].ts_us, 1.0 * 1e6);
  EXPECT_DOUBLE_EQ(flows[1].ts_us, 1.7 * 1e6);
}

}  // namespace
}  // namespace hmpi::telemetry
