#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "telemetry/json.hpp"

namespace hmpi::telemetry {
namespace {

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("events");
  c.add();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  // Same name returns the same instance.
  EXPECT_EQ(&reg.counter("events"), &c);
}

TEST(Metrics, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("level");
  g.set(0.25);
  g.set(0.75);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
}

TEST(Metrics, HistogramBucketsAndStats) {
  MetricsRegistry reg;
  const std::vector<double> bounds{1.0, 10.0};
  Histogram& h = reg.histogram("latency", bounds);
  h.observe(0.5);   // bucket le=1
  h.observe(1.0);   // le=1 (inclusive ceiling)
  h.observe(5.0);   // le=10
  h.observe(100.0); // overflow
  const Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[0], 2);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_EQ(snap.count, 4);
  EXPECT_DOUBLE_EQ(snap.sum, 106.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
}

TEST(Metrics, ResetZeroesButPreservesInstances) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  Histogram& h = reg.histogram("h");
  c.add(7.0);
  h.observe(0.01);
  reg.reset();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_EQ(h.snapshot().count, 0);
  // Cached references stay valid and usable after reset.
  c.add(1.0);
  EXPECT_DOUBLE_EQ(reg.counter("x").value(), 1.0);
  EXPECT_EQ(&reg.counter("x"), &c);
}

TEST(Metrics, SnapshotSortedAndQueryable) {
  MetricsRegistry reg;
  reg.counter("zeta").add(1.0);
  reg.counter("alpha").add(2.0);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "zeta");
  EXPECT_DOUBLE_EQ(snap.counter_value("zeta"), 1.0);
  EXPECT_DOUBLE_EQ(snap.counter_value("missing"), 0.0);
}

TEST(Metrics, WriteJsonIsValidAndCarriesValues) {
  MetricsRegistry reg;
  reg.counter("sends").add(3.0);
  reg.gauge("rate").set(0.5);
  reg.histogram("t", std::vector<double>{1.0}).observe(2.0);
  std::ostringstream os;
  reg.write_json(os);
  std::string error;
  const auto doc = parse_json(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_DOUBLE_EQ(doc->find("counters")->find("sends")->number, 3.0);
  EXPECT_DOUBLE_EQ(doc->find("gauges")->find("rate")->number, 0.5);
  const JsonValue* hist = doc->find("histograms")->find("t");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->number, 1.0);
  const JsonValue* buckets = hist->find("buckets");
  ASSERT_TRUE(buckets->is_array());
  ASSERT_EQ(buckets->array.size(), 2u);
  // The overflow bucket has le null and holds the observation.
  EXPECT_TRUE(buckets->array[1].find("le")->is_null());
  EXPECT_DOUBLE_EQ(buckets->array[1].find("count")->number, 1.0);
}

TEST(Metrics, EmptyRegistryJsonParses) {
  MetricsRegistry reg;
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_TRUE(parse_json(os.str()).has_value());
}

TEST(Metrics, ConcurrentCountersAreExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(c.value(), kThreads * kIncrements);
}

TEST(Metrics, GlobalRegistryIsProcessWide) {
  Counter& a = metrics().counter("test.global_registry_counter");
  Counter& b = metrics().counter("test.global_registry_counter");
  EXPECT_EQ(&a, &b);
}

// ---------------------------------------------------------------------------
// Percentile estimation (docs/observability.md): the interpolation is pinned
// exactly — lower edge = previous ceiling (min for the first bucket), upper
// edge = ceiling (max for overflow), rank within the bucket sets the
// fraction, result clamped to [min, max].
// ---------------------------------------------------------------------------

TEST(Percentiles, InterpolationIsPinned) {
  Histogram h({1.0, 2.0, 4.0});
  // One observation per finite bucket plus one in overflow:
  // counts = {1, 1, 1, 1}, min = 0.5, max = 8.
  for (double v : {0.5, 1.5, 3.0, 8.0}) h.observe(v);
  const Histogram::Snapshot s = h.snapshot();
  // p50: target = 2 lands on bucket (1, 2] with fraction 1 -> exactly 2.
  EXPECT_DOUBLE_EQ(s.percentile(0.50), 2.0);
  // p95: target = 3.8 lands in overflow (4, max=8] at fraction 0.8.
  EXPECT_DOUBLE_EQ(s.percentile(0.95), 4.0 + 4.0 * 0.8);
  // p99: fraction 0.96 of the same bucket.
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 4.0 + 4.0 * 0.96);
}

TEST(Percentiles, SingleObservationClampsToItself) {
  Histogram h({10.0});
  h.observe(5.0);
  const Histogram::Snapshot s = h.snapshot();
  // Interpolation inside (min=5, le=10] would say 10; the [min, max] clamp
  // pins every quantile of a single observation to that observation.
  EXPECT_DOUBLE_EQ(s.percentile(0.50), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 5.0);
}

TEST(Percentiles, EmptyBucketsAreSkipped) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  // Everything in the (2, 4] bucket; the empty buckets around it must not
  // shift the interpolation edges.
  for (int i = 0; i < 10; ++i) h.observe(3.0);
  const Histogram::Snapshot s = h.snapshot();
  // All mass in one bucket: lower = 2, upper = 4, p50 at fraction 0.5, but
  // min = max = 3 clamps every quantile to 3.
  EXPECT_DOUBLE_EQ(s.percentile(0.50), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 3.0);
}

TEST(Percentiles, EmptyHistogramIsNaN) {
  Histogram h({1.0});
  EXPECT_TRUE(std::isnan(h.snapshot().percentile(0.5)));
}

TEST(Percentiles, JsonDumpCarriesP50P95P99) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", std::vector<double>{1.0, 2.0, 4.0});
  for (double v : {0.5, 1.5, 3.0, 8.0}) h.observe(v);
  reg.histogram("empty", std::vector<double>{1.0});
  std::ostringstream os;
  reg.write_json(os);
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* hists = doc->find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* lat = hists->find("lat");
  ASSERT_NE(lat, nullptr);
  const JsonValue* p50 = lat->find("p50");
  ASSERT_NE(p50, nullptr);
  ASSERT_TRUE(p50->is_number());
  EXPECT_DOUBLE_EQ(p50->number, 2.0);
  const JsonValue* p95 = lat->find("p95");
  ASSERT_NE(p95, nullptr);
  ASSERT_TRUE(p95->is_number());
  EXPECT_DOUBLE_EQ(p95->number, 4.0 + 4.0 * 0.8);
  // An empty histogram's percentiles are NaN, which JSON renders as null.
  const JsonValue* empty = hists->find("empty");
  ASSERT_NE(empty, nullptr);
  const JsonValue* empty_p99 = empty->find("p99");
  ASSERT_NE(empty_p99, nullptr);
  EXPECT_TRUE(empty_p99->is_null());
}

}  // namespace
}  // namespace hmpi::telemetry
