// End-to-end acceptance tests for the telemetry subsystem: the Chrome-trace
// export of an EM3D-style failover run (nested runtime spans over the
// simulator's virtual timeline), the Timeof prediction-accuracy regression
// (mean relative error < 25% for both paper applications), runtime metric
// wiring, and the RuntimeConfig telemetry sinks.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "apps/em3d/app.hpp"
#include "apps/matmul/app.hpp"
#include "hmpi/hmpi_c.hpp"
#include "hmpi/runtime.hpp"
#include "hnoc/cluster.hpp"
#include "mpsim/trace.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prediction.hpp"
#include "telemetry/span.hpp"

namespace hmpi {
namespace {

using mp::Proc;
using mp::World;
using pmdl::InstanceBuilder;
using pmdl::Model;
using pmdl::ParamValue;
using pmdl::ScheduleSink;
using telemetry::JsonValue;

/// Compute-only model: p abstract processors, volumes[a] units each, all in
/// parallel; parent is abstract 0 (same shape as runtime_test.cpp).
Model compute_model() {
  return Model::from_factory(
      "compute", 1, [](std::span<const ParamValue> params) {
        const auto& volumes = std::get<std::vector<long long>>(params[0]);
        InstanceBuilder b("compute");
        const auto p = static_cast<long long>(volumes.size());
        b.shape({p});
        for (int a = 0; a < p; ++a) {
          b.node_volume(a, static_cast<double>(volumes[static_cast<std::size_t>(a)]));
        }
        b.scheme([p](ScheduleSink& s) {
          s.par_begin();
          for (long long a = 0; a < p; ++a) {
            s.par_iter_begin();
            const long long c[1] = {a};
            s.compute(c, 100.0);
          }
          s.par_end();
        });
        return b.build();
      });
}

std::vector<ParamValue> volumes(int p) {
  return {pmdl::array(std::vector<long long>(static_cast<std::size_t>(p), 10))};
}

TEST(Observability, FailoverTraceExportsNestedSpans) {
  // A failover run (the GroupRespawnAfterMemberDeath scenario): three
  // members exchange in a ring, rank 1 dies, the survivors respawn a
  // two-member group. The host exports the combined Chrome trace, which
  // must contain nested runtime spans (recon, group_create, mapper:*) on
  // the wall-clock pid plus the simulator's virtual-time events.
  telemetry::spans().clear();
  mp::Tracer tracer;
  World::Options options;
  options.deadlock_timeout_s = 2.0;
  options.tracer = &tracer;
  options.faults.crashes.push_back({1, 1.0});
  Model model = compute_model();
  std::string exported;
  std::atomic<int> failures{0};
  World::run_one_per_processor(
      hnoc::testbeds::homogeneous(3, 100.0),
      [&](Proc& p) {
        Runtime rt(p);
        rt.recon([](Proc& q) { q.compute(1.0); });
        auto group = rt.group_create(model, volumes(3));
        ASSERT_TRUE(group.has_value());

        const mp::Comm& comm = group->comm();
        const int next = (group->rank() + 1) % group->size();
        const int prev = (group->rank() + group->size() - 1) % group->size();
        bool failed = false;
        try {
          for (int i = 0; i < 1000; ++i) {
            p.compute(1.0);  // rank 1's clock crosses t=1.0 in here
            comm.send_value(i, next, 1);
            comm.recv_value<int>(prev, 1);
          }
        } catch (const PeerFailedError&) {
          failed = true;
        } catch (const RevokedError&) {
          failed = true;
        }
        ASSERT_TRUE(failed);
        failures.fetch_add(1);

        auto rebuilt = rt.group_respawn(*group, model, volumes(2));
        ASSERT_TRUE(rebuilt.has_value());
        EXPECT_EQ(rebuilt->size(), 2);
        rt.group_free(*rebuilt);
        if (rt.is_host()) {
          std::ostringstream os;
          rt.trace_export_json(os);
          exported = os.str();
        }
        rt.finalize();
      },
      options);
  EXPECT_EQ(failures.load(), 2);

  std::string error;
  const auto doc = telemetry::parse_json(exported, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* trace = doc->find("traceEvents");
  ASSERT_NE(trace, nullptr);
  ASSERT_TRUE(trace->is_array());
  ASSERT_FALSE(trace->array.empty());

  // Index runtime spans by id; track per-(pid,tid) ts monotonicity as we go.
  std::map<double, std::string> name_by_id;
  std::map<std::pair<double, double>, double> last_ts;
  bool saw_virtual = false;
  for (const JsonValue& e : trace->array) {
    if (e.find("ph")->string == "M") continue;
    const double pid = e.find("pid")->number;
    const double tid = e.find("tid")->number;
    const double ts = e.find("ts")->number;
    const auto [it, fresh] = last_ts.try_emplace({pid, tid}, ts);
    if (!fresh) {
      EXPECT_GE(ts, it->second) << "ts regressed on pid " << pid << " tid " << tid;
      it->second = ts;
    }
    if (pid == telemetry::kVirtualPid) saw_virtual = true;
    if (pid != telemetry::kRuntimePid) continue;
    const JsonValue* args = e.find("args");
    if (args == nullptr) continue;
    const JsonValue* id = args->find("id");
    if (id != nullptr) name_by_id[id->number] = e.find("name")->string;
  }
  EXPECT_TRUE(saw_virtual);  // the tracer's compute/send timeline rode along

  // The span names the failover path must produce.
  std::map<std::string, int> span_count;
  bool mapper_nested_in_group_create = false;
  bool group_create_nested_in_respawn = false;
  for (const JsonValue& e : trace->array) {
    if (e.find("ph")->string == "M") continue;
    if (e.find("pid")->number != telemetry::kRuntimePid) continue;
    const std::string& name = e.find("name")->string;
    span_count[name] += 1;
    const JsonValue* parent = e.find("args")->find("parent");
    if (parent == nullptr) continue;
    const auto parent_name = name_by_id.find(parent->number);
    if (parent_name == name_by_id.end()) continue;
    if (name.rfind("mapper:", 0) == 0 && parent_name->second == "group_create") {
      mapper_nested_in_group_create = true;
    }
    if (name == "group_create" && parent_name->second == "group_respawn") {
      group_create_nested_in_respawn = true;
    }
  }
  EXPECT_GE(span_count["recon"], 1);
  EXPECT_GE(span_count["group_create"], 1);
  EXPECT_GE(span_count["group_respawn"], 1);
  EXPECT_TRUE(mapper_nested_in_group_create);
  EXPECT_TRUE(group_create_nested_in_respawn);
}

TEST(Observability, PredictionErrorStaysUnder25Percent) {
  // The paper's core claim, asserted: Timeof-derived makespan predictions
  // for both paper applications land within 25% (mean) of the measured
  // simulated execution time.
  telemetry::predictions().clear();
  {
    hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
    apps::em3d::GeneratorConfig config;
    config.nodes_per_subbody = {400, 500, 700, 550, 650, 600, 800, 100, 205};
    config.degree = 4;
    config.remote_fraction = 0.05;
    config.seed = 11;
    auto result = apps::em3d::run_hmpi(cluster, config, 4,
                                       apps::em3d::WorkMode::kVirtualOnly, 100);
    ASSERT_GT(result.algorithm_time, 0.0);
  }
  {
    hnoc::Cluster cluster = hnoc::testbeds::paper_mm_network();
    apps::matmul::MmDriverConfig config;
    config.m = 3;
    config.r = 8;
    config.n = 18;
    config.l = 9;
    config.mode = apps::matmul::WorkMode::kVirtualOnly;
    auto result = apps::matmul::run_hmpi(cluster, config);
    ASSERT_GT(result.algorithm_time, 0.0);
  }

  const double em3d_error = HMPI_Prediction_error("Em3d");
  const double matmul_error = HMPI_Prediction_error("ParallelAxB");
  ASSERT_TRUE(std::isfinite(em3d_error));
  ASSERT_TRUE(std::isfinite(matmul_error));
  EXPECT_LT(em3d_error, 0.25);
  EXPECT_LT(matmul_error, 0.25);
  // The all-models aggregate is finite too (what a dashboard would chart).
  EXPECT_TRUE(std::isfinite(HMPI_Prediction_error()));

  const auto summary = telemetry::predictions().summary();
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[0].model, "Em3d");
  EXPECT_EQ(summary[1].model, "ParallelAxB");
  for (const auto& entry : summary) {
    EXPECT_GE(entry.samples, 1);
    EXPECT_GE(entry.max_rel_error, entry.mean_rel_error);
  }
}

TEST(Observability, RuntimeCountersAndSinkFiles) {
  // Runtime operations move the process-wide counters (diffed, because the
  // registry accumulates across tests), and the host's finalize writes the
  // configured sink files as parseable JSON.
  const auto before = telemetry::metrics().snapshot();
  const std::string metrics_path = ::testing::TempDir() + "obs_metrics.json";
  const std::string trace_path = ::testing::TempDir() + "obs_trace.json";
  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());

  RuntimeConfig config;
  config.telemetry.metrics_json = metrics_path;
  config.telemetry.trace_json = trace_path;
  Model model = compute_model();
  World::run_one_per_processor(
      hnoc::testbeds::homogeneous(3, 100.0), [&](Proc& p) {
        Runtime rt(p, config);
        rt.recon([](Proc& q) { q.compute(1.0); });
        if (rt.is_host()) (void)rt.timeof(model, volumes(3));
        auto group = rt.group_create(model, volumes(3));
        if (group.has_value() && group->valid()) rt.group_free(*group);
        rt.finalize();
      });

  const auto after = telemetry::metrics().snapshot();
  const auto delta = [&](const char* name) {
    return after.counter_value(name) - before.counter_value(name);
  };
  EXPECT_GE(delta("recons"), 1.0);
  EXPECT_GE(delta("timeof_calls"), 1.0);
  EXPECT_GE(delta("groups_created"), 1.0);
  EXPECT_GE(delta("mapper_searches"), 2.0);  // timeof + group_create
  EXPECT_GT(delta("estimator_evaluations"), 0.0);
  // Simulated machine activity lands in per-machine counters.
  EXPECT_GT(delta("machine.0.compute_seconds"), 0.0);

  std::ifstream metrics_in(metrics_path);
  ASSERT_TRUE(metrics_in.good()) << "host finalize did not write " << metrics_path;
  std::stringstream metrics_buf;
  metrics_buf << metrics_in.rdbuf();
  std::string error;
  const auto metrics_doc = telemetry::parse_json(metrics_buf.str(), &error);
  ASSERT_TRUE(metrics_doc.has_value()) << error;
  EXPECT_NE(metrics_doc->find("counters"), nullptr);
  EXPECT_GE(metrics_doc->find("counters")->find("recons")->number, 1.0);

  std::ifstream trace_in(trace_path);
  ASSERT_TRUE(trace_in.good()) << "host finalize did not write " << trace_path;
  std::stringstream trace_buf;
  trace_buf << trace_in.rdbuf();
  const auto trace_doc = telemetry::parse_json(trace_buf.str(), &error);
  ASSERT_TRUE(trace_doc.has_value()) << error;
  const JsonValue* events = trace_doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
  EXPECT_FALSE(events->array.empty());

  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(Observability, CApiMetricsDumpIsValidJson) {
  std::ostringstream os;
  HMPI_Metrics_dump(os);
  std::string error;
  const auto doc = telemetry::parse_json(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_NE(doc->find("counters"), nullptr);
  EXPECT_NE(doc->find("gauges"), nullptr);
  EXPECT_NE(doc->find("histograms"), nullptr);
}

}  // namespace
}  // namespace hmpi
