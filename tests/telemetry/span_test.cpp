#include "telemetry/span.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/chrome_trace.hpp"
#include "telemetry/json.hpp"

namespace hmpi::telemetry {
namespace {

/// Fetches a finished span out of the process-wide log by id. The log is
/// global and accumulates across tests in this binary, so lookups go by the
/// unique span id rather than by position.
std::optional<SpanRecord> find_span(std::uint64_t id) {
  for (const SpanRecord& r : spans().records()) {
    if (r.id == id) return r;
  }
  return std::nullopt;
}

double fake_clock(const void* ctx) { return *static_cast<const double*>(ctx); }

TEST(Span, NestingParentChildAndTrackInheritance) {
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    Span outer("span_test.outer", 7);
    outer_id = outer.id();
    {
      Span inner("span_test.inner");
      inner_id = inner.id();
    }
  }
  const auto outer = find_span(outer_id);
  const auto inner = find_span(inner_id);
  ASSERT_TRUE(outer.has_value());
  ASSERT_TRUE(inner.has_value());
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(outer->track, 7);
  EXPECT_EQ(inner->parent_id, outer_id);
  EXPECT_EQ(inner->track, 7);  // inherited from the enclosing span
  // The child is contained in the parent on the wall timeline.
  EXPECT_GE(inner->wall_start_us, outer->wall_start_us);
  EXPECT_LE(inner->wall_start_us + inner->wall_dur_us,
            outer->wall_start_us + outer->wall_dur_us);
}

TEST(Span, SiblingsShareTheParent) {
  std::uint64_t parent_id = 0;
  std::uint64_t a_id = 0;
  std::uint64_t b_id = 0;
  {
    Span parent("span_test.parent", 1);
    parent_id = parent.id();
    {
      Span a("span_test.a");
      a_id = a.id();
    }
    {
      Span b("span_test.b");
      b_id = b.id();
    }
  }
  EXPECT_EQ(find_span(a_id)->parent_id, parent_id);
  EXPECT_EQ(find_span(b_id)->parent_id, parent_id);
}

TEST(Span, VirtualClockScopeStampsVirtualTime) {
  double now = 5.0;
  std::uint64_t id = 0;
  {
    VirtualClockScope scope(fake_clock, &now);
    Span s("span_test.virt", 0);
    id = s.id();
    now = 9.0;  // the destructor samples the end
  }
  const auto rec = find_span(id);
  ASSERT_TRUE(rec.has_value());
  EXPECT_DOUBLE_EQ(rec->virt_start_s, 5.0);
  EXPECT_DOUBLE_EQ(rec->virt_end_s, 9.0);
}

TEST(Span, NoVirtualClockMeansNaN) {
  std::uint64_t id = 0;
  {
    Span s("span_test.novirt", 0);
    id = s.id();
  }
  const auto rec = find_span(id);
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(std::isnan(rec->virt_start_s));
  EXPECT_TRUE(std::isnan(rec->virt_end_s));
}

TEST(Span, VirtualClockScopeRestoresThePreviousHook) {
  double outer_clock = 1.0;
  double inner_clock = 100.0;
  std::uint64_t id = 0;
  {
    VirtualClockScope outer(fake_clock, &outer_clock);
    {
      VirtualClockScope inner(fake_clock, &inner_clock);
    }
    // The inner scope ended: spans sample the outer clock again.
    Span s("span_test.restored", 0);
    id = s.id();
  }
  EXPECT_DOUBLE_EQ(find_span(id)->virt_start_s, 1.0);
}

TEST(Span, ArgsAreEncodedAsRawJson) {
  std::uint64_t id = 0;
  {
    Span s("span_test.args", 0);
    id = s.id();
    s.arg("count", 3.0);
    s.arg("label", "hi");
    s.arg_raw("flag", "true");
  }
  const auto rec = find_span(id);
  ASSERT_TRUE(rec.has_value());
  ASSERT_EQ(rec->args.size(), 3u);
  EXPECT_EQ(rec->args[0].first, "count");
  EXPECT_EQ(rec->args[0].second, "3");
  EXPECT_EQ(rec->args[1].second, "\"hi\"");
  EXPECT_EQ(rec->args[2].second, "true");
}

TEST(Span, MacroRecordsASpan) {
  const std::size_t before = spans().size();
  { HMPI_SPAN("span_test.macro", 2); }
  EXPECT_EQ(spans().size(), before + 1);
}

TEST(ChromeTrace, SpansConvertToRuntimePidEvents) {
  SpanRecord rec;
  rec.id = 42;
  rec.parent_id = 41;
  rec.name = "group_create";
  rec.track = 3;
  rec.wall_start_us = 10.0;
  rec.wall_dur_us = 5.0;
  rec.virt_start_s = 1.5;
  rec.virt_end_s = 1.5;
  rec.args.emplace_back("model", "\"Em3d\"");
  const std::vector<SpanRecord> records{rec};
  const auto events = spans_to_chrome(records);
  ASSERT_EQ(events.size(), 1u);
  const ChromeEvent& e = events[0];
  EXPECT_EQ(e.name, "group_create");
  EXPECT_EQ(e.ph, 'X');
  EXPECT_EQ(e.pid, kRuntimePid);
  EXPECT_EQ(e.tid, 3);
  EXPECT_DOUBLE_EQ(e.ts_us, 10.0);
  EXPECT_DOUBLE_EQ(e.dur_us, 5.0);
  bool saw_id = false;
  bool saw_parent = false;
  bool saw_model = false;
  for (const auto& [key, value] : e.args) {
    if (key == "id") saw_id = true;
    if (key == "parent") saw_parent = true;
    if (key == "model") saw_model = value == "\"Em3d\"";
  }
  EXPECT_TRUE(saw_id);
  EXPECT_TRUE(saw_parent);
  EXPECT_TRUE(saw_model);
}

TEST(ChromeTrace, WriteSortsTracksAndEmitsMetadata) {
  std::vector<ChromeEvent> events;
  ChromeEvent late;
  late.name = "late";
  late.ts_us = 100.0;
  late.pid = kRuntimePid;
  late.tid = 0;
  ChromeEvent early;
  early.name = "early";
  early.ts_us = 1.0;
  early.pid = kRuntimePid;
  early.tid = 0;
  ChromeEvent other_track;
  other_track.name = "other";
  other_track.ts_us = 50.0;
  other_track.pid = kVirtualPid;
  other_track.tid = 2;
  events.push_back(late);
  events.push_back(early);
  events.push_back(other_track);

  std::ostringstream os;
  write_chrome_trace(os, std::move(events));
  std::string error;
  const auto doc = parse_json(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* trace = doc->find("traceEvents");
  ASSERT_NE(trace, nullptr);
  ASSERT_TRUE(trace->is_array());
  // 3 events + one process_name metadata record per pid.
  ASSERT_EQ(trace->array.size(), 5u);

  // ts is non-decreasing within each (pid, tid) track.
  std::vector<std::pair<std::pair<double, double>, double>> last_ts;
  for (const JsonValue& e : trace->array) {
    const std::string ph = e.find("ph")->string;
    if (ph == "M") {
      EXPECT_EQ(e.find("name")->string, "process_name");
      continue;
    }
    const std::pair<double, double> track{e.find("pid")->number,
                                          e.find("tid")->number};
    const double ts = e.find("ts")->number;
    for (auto& [key, prev] : last_ts) {
      if (key == track) EXPECT_GE(ts, prev);
    }
    bool found = false;
    for (auto& [key, prev] : last_ts) {
      if (key == track) {
        prev = ts;
        found = true;
      }
    }
    if (!found) last_ts.push_back({track, ts});
  }
}

}  // namespace
}  // namespace hmpi::telemetry
