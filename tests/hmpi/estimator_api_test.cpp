// The estimator-backend runtime surface: the EstimatorMode toggle (config +
// HMPI_EST_COMPILE), Timeof_batch, and the estimator-stats accessors, at both
// the C++ and the paper-style C layers (docs/estimator.md).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "hmpi/hmpi_c.hpp"
#include "hmpi/runtime.hpp"
#include "hnoc/cluster.hpp"
#include "mpsim/trace.hpp"

namespace hmpi {
namespace {

using mp::Proc;
using mp::World;
using pmdl::InstanceBuilder;
using pmdl::Model;
using pmdl::ParamValue;

/// Ring pipeline parameterised on p: enough comm structure that the
/// selection depends on links, so an estimator-backend bug that changes
/// scores shows up as a different group.
Model ring_model() {
  return Model::from_factory("ring", 1, [](std::span<const ParamValue> ps) {
    const long long p = std::get<long long>(ps[0]);
    InstanceBuilder b("ring");
    b.shape({p});
    for (long long a = 0; a < p; ++a) {
      b.node_volume(a, 50.0 + 10.0 * static_cast<double>(a));
      if (p > 1) b.link(a, (a + 1) % p, 2e5);
    }
    b.scheme([p](pmdl::ScheduleSink& s) {
      for (long long a = 0; a < p; ++a) {
        const long long c[1] = {a};
        s.compute(c, 100.0);
        if (p > 1) {
          const long long d[1] = {(a + 1) % p};
          s.transfer(c, d, 100.0);
        }
      }
    });
    return b.build();
  });
}

/// Heterogeneous speeds and one deliberately bad link, so arrangements are
/// far from interchangeable.
hnoc::Cluster lumpy_cluster() {
  return hnoc::ClusterBuilder()
      .add("parent", 10.0)
      .add("fast", 20.0)
      .add("faster", 25.0)
      .add("slow", 5.0)
      .add("medium", 12.0)
      .network(1e-4, 1e7)
      .symmetric_link_override(1, 2, 0.05, 1e5)
      .build();
}

/// Runs `body` at the host of a fresh 5-machine world.
template <typename Fn>
void at_host(Fn&& body, RuntimeConfig config = RuntimeConfig()) {
  hnoc::Cluster cluster = lumpy_cluster();
  World::run_one_per_processor(cluster, [&](Proc& p) {
    Runtime rt(p, config);
    if (rt.is_host()) body(rt);
    rt.finalize();
  });
}

TEST(TimeofBatch, MatchesIndividualTimeofBitForBit) {
  Model model = ring_model();
  at_host([&](Runtime& rt) {
    std::vector<std::vector<ParamValue>> sets;
    std::vector<double> individual;
    for (long long p = 2; p <= 4; ++p) {
      sets.push_back({pmdl::scalar(p)});
      individual.push_back(rt.timeof(model, {pmdl::scalar(p)}));
    }
    const std::vector<double> batch = rt.timeof_batch(model, sets);
    ASSERT_EQ(batch.size(), individual.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i], individual[i]) << "set " << i;
    }
  });
}

TEST(TimeofBatch, AggregatesOneStatsRecordAcrossTheBatch) {
  Model model = ring_model();
  at_host([&](Runtime& rt) {
    std::vector<std::vector<ParamValue>> sets;
    for (long long p = 2; p <= 4; ++p) sets.push_back({pmdl::scalar(p)});
    rt.timeof_batch(model, sets);
    const map::SearchStats& stats = rt.last_search_stats();
    EXPECT_GT(stats.evaluations, 0);
    // Three distinct instances were priced in one search record; the default
    // backend is compiled+delta, so the batch ran on the IR.
    EXPECT_GT(stats.compiled_evaluations, 0);
  });
}

TEST(EstimatorStats, CountsPlanCompilesAndDeltaWork) {
  Model model = ring_model();
  at_host([&](Runtime& rt) {
    const Runtime::EstimatorStats before = rt.estimator_stats();
    EXPECT_EQ(before.mode, EstimatorMode::kDelta);
    EXPECT_EQ(before.compiled_evaluations, 0);

    rt.timeof(model, {pmdl::scalar(3)});
    rt.timeof(model, {pmdl::scalar(3)});  // same instance: plan-cache hit

    const Runtime::EstimatorStats after = rt.estimator_stats();
    EXPECT_GE(after.plans_compiled, 1);
    EXPECT_GE(after.plan_cache_hits, 1);
    EXPECT_GT(after.compiled_evaluations, 0);
    EXPECT_GT(after.delta_evaluations, 0);
    EXPECT_GT(after.delta_ops_total, 0);
    // Replayed includes amortised checkpoint rebuilds and full-length
    // replays on a model this small, so it is only pinned positive here;
    // the savings ratio is the A9c ablation's business.
    EXPECT_GT(after.delta_ops_replayed, 0);
  });
}

TEST(EstimatorMode, SelectionsBitIdenticalAcrossModes) {
  Model model = ring_model();
  const std::vector<ParamValue> params{pmdl::scalar(4)};

  struct Outcome {
    std::vector<int> members;
    double estimated = 0.0;
  };
  auto create_with = [&](EstimatorMode mode) {
    Outcome out;
    hnoc::Cluster cluster = lumpy_cluster();
    World::run_one_per_processor(cluster, [&](Proc& p) {
      RuntimeConfig config;
      config.estimator = mode;
      Runtime rt(p, config);
      auto group = rt.group_create(model, params);
      if (group && rt.is_host()) {
        out.members = group->members();
        out.estimated = group->estimated_time();
      }
      if (group) rt.group_free(*group);
      rt.finalize();
    });
    return out;
  };

  const Outcome interpreted = create_with(EstimatorMode::kInterpret);
  const Outcome compiled = create_with(EstimatorMode::kCompiled);
  const Outcome delta = create_with(EstimatorMode::kDelta);
  EXPECT_EQ(compiled.members, interpreted.members);
  EXPECT_EQ(delta.members, interpreted.members);
  EXPECT_EQ(compiled.estimated, interpreted.estimated);
  EXPECT_EQ(delta.estimated, interpreted.estimated);
}

TEST(EstimatorMode, EnvOverrideSelectsBackend) {
  Model model = ring_model();
  auto mode_under_env = [&](const char* value) {
    ::setenv("HMPI_EST_COMPILE", value, 1);
    EstimatorMode mode = EstimatorMode::kDelta;
    at_host([&](Runtime& rt) {
      rt.timeof(model, {pmdl::scalar(3)});
      mode = rt.estimator_stats().mode;
    });
    ::unsetenv("HMPI_EST_COMPILE");
    return mode;
  };
  EXPECT_EQ(mode_under_env("off"), EstimatorMode::kInterpret);
  EXPECT_EQ(mode_under_env("0"), EstimatorMode::kInterpret);
  EXPECT_EQ(mode_under_env("1"), EstimatorMode::kCompiled);
  EXPECT_EQ(mode_under_env("compile"), EstimatorMode::kCompiled);
  EXPECT_EQ(mode_under_env("delta"), EstimatorMode::kDelta);
  EXPECT_EQ(mode_under_env("bogus"), EstimatorMode::kDelta);  // ignored
}

TEST(EstimatorMode, InterpretModePricesNothingOnTheIr) {
  Model model = ring_model();
  RuntimeConfig config;
  config.estimator = EstimatorMode::kInterpret;
  at_host(
      [&](Runtime& rt) {
        rt.timeof(model, {pmdl::scalar(3)});
        const Runtime::EstimatorStats stats = rt.estimator_stats();
        EXPECT_EQ(stats.mode, EstimatorMode::kInterpret);
        EXPECT_EQ(stats.plans_compiled, 0);
        EXPECT_EQ(stats.compiled_evaluations, 0);
        EXPECT_EQ(stats.delta_evaluations, 0);
        EXPECT_GT(rt.last_search_stats().evaluations, 0);
      },
      config);
}

TEST(EstimatorTrace, CompileEmitsAnInstantWhenATracerIsAttached) {
  Model model = ring_model();
  mp::Tracer tracer;
  World::Options options;
  options.tracer = &tracer;
  hnoc::Cluster cluster = lumpy_cluster();
  World::run_one_per_processor(
      cluster,
      [&](Proc& p) {
        Runtime rt(p);
        if (rt.is_host()) rt.timeof(model, {pmdl::scalar(3)});
        rt.finalize();
      },
      options);
  bool saw_compile = false;
  for (const mp::TraceEvent& e : tracer.events()) {
    if (e.kind != mp::TraceEvent::Kind::kEstCompile) continue;
    saw_compile = true;
    EXPECT_GT(e.compile.ops, 0);
    EXPECT_GE(e.compile.seconds, 0.0);
  }
  EXPECT_TRUE(saw_compile);
}

TEST(CApiEstimator, BatchAndStatsThroughTheCVeneer) {
  Model model = ring_model();
  hnoc::Cluster cluster = lumpy_cluster();
  World::run_one_per_processor(cluster, [&](Proc& p) {
    HMPI_Init(p);
    if (HMPI_Is_host()) {
      const std::vector<std::vector<ParamValue>> sets{
          {pmdl::scalar(2)}, {pmdl::scalar(3)}};
      const std::vector<double> batch = HMPI_Timeof_batch(model, sets);
      ASSERT_EQ(batch.size(), 2u);
      EXPECT_EQ(batch[0], HMPI_Timeof(model, sets[0]));
      EXPECT_EQ(batch[1], HMPI_Timeof(model, sets[1]));

      const Runtime::EstimatorStats stats = HMPI_Get_estimator_stats();
      EXPECT_EQ(stats.mode, EstimatorMode::kDelta);
      EXPECT_GE(stats.plans_compiled, 1);
      EXPECT_GT(stats.compiled_evaluations, 0);
    }
    HMPI_Finalize(0);
  });
}

}  // namespace
}  // namespace hmpi
