// Tests of the paper-style C interface (Figures 5/8 call shapes).
#include "hmpi/hmpi_c.hpp"

#include <gtest/gtest.h>

#include "hnoc/cluster.hpp"

namespace {

using hmpi::mp::Proc;
using hmpi::mp::World;
using hmpi::pmdl::InstanceBuilder;
using hmpi::pmdl::Model;
using hmpi::pmdl::ParamValue;

Model tiny_model() {
  return Model::from_factory("tiny", 1, [](std::span<const ParamValue> ps) {
    const long long p = std::get<long long>(ps[0]);
    InstanceBuilder b("tiny");
    b.shape({p});
    for (int a = 0; a < p; ++a) b.node_volume(a, 10.0);
    b.scheme([p](hmpi::pmdl::ScheduleSink& s) {
      s.par_begin();
      for (long long a = 0; a < p; ++a) {
        s.par_iter_begin();
        const long long c[1] = {a};
        s.compute(c, 100.0);
      }
      s.par_end();
    });
    return b.build();
  });
}

TEST(CApi, PaperLifecycle) {
  hmpi::hnoc::Cluster cluster = hmpi::hnoc::testbeds::homogeneous(4, 50.0);
  World::run_one_per_processor(cluster, [](Proc& p) {
    HMPI_Init(p);
    EXPECT_EQ(HMPI_Is_host(), p.rank() == 0);
    EXPECT_EQ(HMPI_Is_free(), p.rank() != 0);

    HMPI_Recon([](Proc& q) { q.compute(1.0); });

    Model model = tiny_model();
    const std::vector<ParamValue> params{hmpi::pmdl::scalar(3)};
    double predicted = 0.0;
    if (HMPI_Is_host()) {
      predicted = HMPI_Timeof(model, params);
      EXPECT_GT(predicted, 0.0);
    }

    HMPI_Group gid;
    if (HMPI_Is_host() || HMPI_Is_free()) {
      HMPI_Group_create(&gid, model, params);
    }
    if (HMPI_Is_member(gid)) {
      const hmpi::mp::Comm* comm = HMPI_Get_comm(gid);
      ASSERT_NE(comm, nullptr);
      EXPECT_EQ(HMPI_Group_size(gid), 3);
      EXPECT_EQ(HMPI_Group_rank(gid), comm->rank());
      int in = 1, out = 0;
      comm->allreduce(std::span<const int>(&in, 1), std::span<int>(&out, 1),
                      [](int a, int b) { return a + b; });
      EXPECT_EQ(out, 3);
    }
    if (HMPI_Is_member(gid)) HMPI_Group_free(&gid);
    EXPECT_FALSE(HMPI_Is_member(gid));
    HMPI_Finalize(0);
  });
}

TEST(CApi, RoutinesBeforeInitThrow) {
  hmpi::hnoc::Cluster cluster = hmpi::hnoc::testbeds::homogeneous(1);
  EXPECT_THROW(
      World::run_one_per_processor(cluster, [](Proc&) { HMPI_Is_host(); }),
      hmpi::RuntimeError);
}

TEST(CApi, DoubleInitThrows) {
  hmpi::hnoc::Cluster cluster = hmpi::hnoc::testbeds::homogeneous(1);
  EXPECT_THROW(World::run_one_per_processor(cluster,
                                            [](Proc& p) {
                                              HMPI_Init(p);
                                              HMPI_Init(p);
                                            }),
               hmpi::RuntimeError);
}

TEST(CApi, FinalizeWithErrorCodeThrows) {
  hmpi::hnoc::Cluster cluster = hmpi::hnoc::testbeds::homogeneous(1);
  EXPECT_THROW(World::run_one_per_processor(cluster,
                                            [](Proc& p) {
                                              HMPI_Init(p);
                                              HMPI_Finalize(1);
                                            }),
               hmpi::InvalidArgument);
}

TEST(CApi, ReconWithTimeoutAndDegradedQueriesOnHealthyRun) {
  // Fault-tolerance entry points on a healthy network: no timeout fires, no
  // group is degraded, respawn-related accessors stay callable.
  hmpi::hnoc::Cluster cluster = hmpi::hnoc::testbeds::homogeneous(4, 50.0);
  World::run_one_per_processor(cluster, [](Proc& p) {
    HMPI_Init(p);
    HMPI_Recon_with_timeout([](Proc& q) { q.compute(1.0); },
                            /*timeout_s=*/100.0, /*max_attempts=*/2);

    Model model = tiny_model();
    const std::vector<ParamValue> params{hmpi::pmdl::scalar(3)};
    HMPI_Group gid;
    HMPI_Group_create(&gid, model, params);
    if (HMPI_Is_member(gid)) {
      EXPECT_EQ(HMPI_Group_is_degraded(gid), 0);
      EXPECT_DOUBLE_EQ(HMPI_Group_degraded_delta(gid), 0.0);
      HMPI_Group_free(&gid);
    }
    HMPI_Finalize(0);
  });
}

TEST(CApi, DegradedQueriesRequireLiveGroup) {
  hmpi::hnoc::Cluster cluster = hmpi::hnoc::testbeds::homogeneous(1);
  World::run_one_per_processor(cluster, [](Proc& p) {
    HMPI_Init(p);
    HMPI_Group gid;
    EXPECT_THROW(HMPI_Group_is_degraded(gid), hmpi::InvalidArgument);
    EXPECT_THROW(HMPI_Group_degraded_delta(gid), hmpi::InvalidArgument);
    EXPECT_THROW(HMPI_Group_fail(&gid), hmpi::InvalidArgument);
    EXPECT_THROW(HMPI_Group_respawn(&gid, tiny_model(), {}), hmpi::InvalidArgument);
    HMPI_Finalize(0);
  });
}

TEST(CApi, GroupAccessorsRequireLiveGroup) {
  hmpi::hnoc::Cluster cluster = hmpi::hnoc::testbeds::homogeneous(1);
  World::run_one_per_processor(cluster, [](Proc& p) {
    HMPI_Init(p);
    HMPI_Group gid;
    EXPECT_FALSE(HMPI_Is_member(gid));
    EXPECT_THROW(HMPI_Group_rank(gid), hmpi::InvalidArgument);
    EXPECT_THROW(HMPI_Group_size(gid), hmpi::InvalidArgument);
    EXPECT_THROW(HMPI_Get_comm(gid), hmpi::InvalidArgument);
    EXPECT_THROW(HMPI_Group_free(&gid), hmpi::InvalidArgument);
    HMPI_Finalize(0);
  });
}

}  // namespace
