// Runtime- and C-API-level critical-path surface (docs/observability.md):
// HMPI_Critical_path_json emits the report shape, blame_top ranks machines
// and links with path shares, finalize publishes the crit.* gauges and the
// HMPI_CRITPATH_JSON sink, and the report names collectives through the
// runtime's coll namer.
#include "hmpi/hmpi_c.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "hnoc/cluster.hpp"
#include "mpsim/world.hpp"
#include "support/error.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace hmpi {
namespace {

using mp::Proc;
using mp::World;
using telemetry::JsonValue;
using telemetry::parse_json;

/// A short program with compute and traffic on every rank, so the path has
/// machine and link segments to blame.
void busy_body(Proc& p) {
  mp::Comm comm = p.world_comm();
  p.compute(20.0 * (p.rank() + 1));
  comm.barrier();
}

TEST(CritPathApi, JsonAndBlameTopFromALiveRuntime) {
  const hnoc::Cluster cluster = hnoc::testbeds::homogeneous(4);
  World::Options options;
  options.prof = telemetry::ProfMode::kFull;
  World::run_one_per_processor(
      cluster,
      [](Proc& p) {
        HMPI_Init(p);
        busy_body(p);

        std::ostringstream os;
        HMPI_Critical_path_json(os);
        const auto doc = parse_json(os.str());
        ASSERT_TRUE(doc.has_value());
        const JsonValue* cp = doc->find("critical_path");
        ASSERT_NE(cp, nullptr);
        const JsonValue* complete = cp->find("complete");
        ASSERT_NE(complete, nullptr);
        EXPECT_TRUE(complete->boolean);
        const JsonValue* machines = cp->find("machines");
        ASSERT_NE(machines, nullptr);
        EXPECT_FALSE(machines->array.empty());

        const auto blamed = HMPI_Blame_top(3);
        ASSERT_FALSE(blamed.empty());
        EXPECT_LE(blamed.size(), 3u);
        for (std::size_t i = 1; i < blamed.size(); ++i) {
          EXPECT_GE(blamed[i - 1].seconds, blamed[i].seconds);
        }
        for (const auto& b : blamed) {
          EXPECT_GT(b.seconds, 0.0);
          EXPECT_GT(b.share, 0.0);
          EXPECT_LE(b.share, 1.0);
          if (b.kind == Runtime::BlameEntry::Kind::kLink) {
            EXPECT_GE(b.peer_proc, 0);
          }
        }
        // Rank 3 computes 4x rank 0's volume on identical machines: its
        // processor must carry the most blame.
        EXPECT_EQ(blamed.front().kind, Runtime::BlameEntry::Kind::kMachine);
        EXPECT_EQ(blamed.front().proc, 3);

        EXPECT_THROW(HMPI_Blame_top(0), InvalidArgument);
        HMPI_Finalize(0);
      },
      options);
}

TEST(CritPathApi, FinalizePublishesGaugesAndSink) {
  const std::string path =
      ::testing::TempDir() + "/hmpi_critpath_api_test.json";
  std::remove(path.c_str());

  const hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  World::Options options;
  options.prof = telemetry::ProfMode::kFull;
  RuntimeConfig config;
  config.telemetry.critpath_json = path;
  World::run_one_per_processor(
      cluster,
      [&config](Proc& p) {
        HMPI_Init(p, config);
        busy_body(p);
        HMPI_Finalize(0);
      },
      options);

  // The host's finalize wrote the sink...
  std::ifstream is(path);
  ASSERT_TRUE(is.good()) << path;
  std::stringstream buffer;
  buffer << is.rdbuf();
  const auto doc = parse_json(buffer.str());
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->find("critical_path"), nullptr);

  // ...and the crit.* gauges landed in the process-wide registry.
  const auto snap = telemetry::metrics().snapshot();
  bool path_seconds = false;
  bool machine_gauge = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "crit.path_seconds" && value > 0.0) path_seconds = true;
    if (name.rfind("crit.machine.", 0) == 0 && value > 0.0) {
      machine_gauge = true;
    }
  }
  EXPECT_TRUE(path_seconds);
  EXPECT_TRUE(machine_gauge);
  std::remove(path.c_str());
}

TEST(CritPathApi, CollectiveBlameUsesRuntimeNames) {
  // Inside a barrier the recorded events carry the (op, algo) annotation;
  // the runtime's namer must resolve them to stable names, not opN/algoN.
  const hnoc::Cluster cluster = hnoc::testbeds::homogeneous(3);
  World::Options options;
  options.prof = telemetry::ProfMode::kFull;
  World::run_one_per_processor(
      cluster,
      [](Proc& p) {
        HMPI_Init(p);
        mp::Comm comm = p.world_comm();
        for (int i = 0; i < 3; ++i) comm.barrier();

        std::ostringstream os;
        HMPI_Critical_path_json(os);
        const std::string json = os.str();
        if (p.rank() == 0) {
          EXPECT_NE(json.find("\"barrier\""), std::string::npos) << json;
          EXPECT_EQ(json.find("\"op-1\""), std::string::npos);
        }
        HMPI_Finalize(0);
      },
      options);
}

}  // namespace
}  // namespace hmpi
