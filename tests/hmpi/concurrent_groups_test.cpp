// Two live HMPI groups executing different algorithms at the same time —
// the situation the paper warns about for *untracked* MPI groups, which the
// runtime handles fine when both groups are its own.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "hmpi/runtime.hpp"
#include "hnoc/cluster.hpp"

namespace hmpi {
namespace {

using mp::Proc;
using mp::World;
using pmdl::InstanceBuilder;
using pmdl::Model;
using pmdl::ParamValue;

Model sized_model() {
  return Model::from_factory("sized", 1, [](std::span<const ParamValue> ps) {
    const long long p = std::get<long long>(ps[0]);
    InstanceBuilder b("sized");
    b.shape({p});
    for (int a = 0; a < p; ++a) b.node_volume(a, 50.0);
    b.scheme([p](pmdl::ScheduleSink& s) {
      s.par_begin();
      for (long long a = 0; a < p; ++a) {
        s.par_iter_begin();
        const long long c[1] = {a};
        s.compute(c, 100.0);
      }
      s.par_end();
    });
    return b.build();
  });
}

TEST(ConcurrentGroups, TwoLiveGroupsRunIndependently) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(7, 50.0);
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    Model model = sized_model();

    // Creation 1 (host parents a group of 3); creation 2 follows
    // immediately (host is still the only non-free caller among the
    // participants of creation 2 — it parents that one too, while remaining
    // a member of group A).
    auto group_a = rt.group_create(model, {pmdl::scalar(3)});
    std::optional<Group> group_b;
    if (p.rank() == 0 || !group_a) {
      group_b = rt.group_create(model, {pmdl::scalar(3)});
    }

    // Both groups do work concurrently (the host is in both).
    for (auto* group : {&group_a, &group_b}) {
      if (!group->has_value()) continue;
      const mp::Comm& comm = (*group)->comm();
      p.compute(50.0);
      int in = 1, out = 0;
      comm.allreduce(std::span<const int>(&in, 1), std::span<int>(&out, 1),
                     [](int a, int b) { return a + b; });
      EXPECT_EQ(out, 3);
    }

    if (p.rank() == 0) {
      ASSERT_TRUE(group_a.has_value());
      ASSERT_TRUE(group_b.has_value());
      // Disjoint member sets apart from the shared parent.
      std::set<int> a(group_a->members().begin(), group_a->members().end());
      std::set<int> b(group_b->members().begin(), group_b->members().end());
      std::vector<int> overlap;
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(overlap));
      EXPECT_EQ(overlap, (std::vector<int>{0}));
    }

    if (group_b) rt.group_free(*group_b);
    if (group_a) rt.group_free(*group_a);
    rt.finalize();
  });
}

TEST(ConcurrentGroups, FreedProcessesServeLaterCreations) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(4, 50.0);
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    Model model = sized_model();
    // Three sequential generations; the member set can change each time.
    for (int generation = 0; generation < 3; ++generation) {
      auto group = rt.group_create(model, {pmdl::scalar(2)});
      if (group) {
        group->comm().barrier();
        rt.group_free(*group);
      }
      rt.world_comm().barrier();
    }
    rt.finalize();
  });
}

TEST(ConcurrentGroups, ReconBetweenGenerationsRefreshesSelection) {
  // The fast machine becomes loaded after the first group; a fresh recon
  // must steer the second group away from it.
  hnoc::ClusterBuilder b;
  b.add("host", 50.0);
  b.add("fast_then_busy", 200.0, hnoc::LoadProfile({{5.0, 0.01}}));
  b.add("steady", 100.0);
  b.add("steady2", 100.0);
  hnoc::Cluster cluster = b.build();

  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    Model model = sized_model();
    rt.recon([](Proc& q) { q.compute(1.0); });

    auto first = rt.group_create(model, {pmdl::scalar(2)});
    if (p.rank() == 0) {
      ASSERT_TRUE(first.has_value());
      EXPECT_EQ(first->members()[1], 1);  // machine 1 measured fastest
    }
    if (first) rt.group_free(*first);
    rt.world_comm().barrier();

    // Move past t=5 so machine 1's load kicks in, then re-measure.
    p.elapse(10.0);
    rt.recon([](Proc& q) { q.compute(1.0); });

    auto second = rt.group_create(model, {pmdl::scalar(2)});
    if (p.rank() == 0) {
      ASSERT_TRUE(second.has_value());
      EXPECT_NE(second->members()[1], 1);  // now effectively speed 2
    }
    if (second) rt.group_free(*second);
    rt.finalize();
  });
}

}  // namespace
}  // namespace hmpi
