// End-to-end of the paper's §2 recipe: HMPI provides no set-like group
// constructors; instead the programmer takes the communicator from
// HMPI_Get_comm, derives subgroups "by MPI means", and builds
// subcommunicators — here, row communicators of an HMPI-selected grid group.
#include <gtest/gtest.h>

#include "hmpi/runtime.hpp"
#include "hnoc/cluster.hpp"
#include "mpsim/group.hpp"

namespace hmpi {
namespace {

using mp::Proc;
using mp::ProcessGroup;
using mp::World;
using pmdl::InstanceBuilder;
using pmdl::Model;
using pmdl::ParamValue;

Model grid_model(int m) {
  return Model::from_factory("grid", 0, [m](std::span<const ParamValue>) {
    InstanceBuilder b("grid");
    b.shape({m, m});
    for (int a = 0; a < m * m; ++a) b.node_volume(a, 10.0);
    return b.build();
  });
}

TEST(GroupAlgebraIntegration, RowCommunicatorsOfAnHmpiGroup) {
  const int m = 2;
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(6, 50.0);
  World::run_one_per_processor(cluster, [m](Proc& p) {
    Runtime rt(p);
    Model model = grid_model(m);
    auto group = rt.group_create(model, {});
    if (group) {
      // "Obtaining the groups associated with the MPI communicator given by
      // HMPI_Get_comm" (paper §2)...
      const mp::Comm& comm = group->comm();
      ProcessGroup whole = ProcessGroup::of(comm);
      ASSERT_EQ(whole.size(), m * m);

      // ...and performing the set-like operations by MPI means: the row
      // subgroup of this process's grid row.
      const int my_row = comm.rank() / m;
      std::vector<int> row_positions;
      for (int j = 0; j < m; ++j) row_positions.push_back(my_row * m + j);
      ProcessGroup row_group = whole.incl(row_positions);
      mp::Comm row_comm = mp::create_comm(p, row_group);

      ASSERT_EQ(row_comm.size(), m);
      EXPECT_EQ(row_comm.rank(), comm.rank() % m);
      // The row communicator works: sum grid-column indices within the row.
      int in = comm.rank() % m, out = 0;
      row_comm.allreduce(std::span<const int>(&in, 1), std::span<int>(&out, 1),
                         [](int a, int b) { return a + b; });
      EXPECT_EQ(out, 0 + 1);

      // Translation between the whole group and the row group round-trips.
      const int my_whole_rank[1] = {comm.rank()};
      const auto in_row = ProcessGroup::translate(whole, my_whole_rank, row_group);
      EXPECT_EQ(in_row[0], row_comm.rank());

      rt.group_free(*group);
    }
    rt.finalize();
  });
}

TEST(GroupAlgebraIntegration, HmpiGroupCommSafeWithSplit) {
  // The paper: the communicator from HMPI_Get_comm "can safely be used in
  // other MPI routines" — including MPI_Comm_split.
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(6, 50.0);
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    Model model = grid_model(2);
    auto group = rt.group_create(model, {});
    if (group) {
      mp::Comm halves = group->comm().split(group->rank() % 2, group->rank());
      ASSERT_TRUE(halves.valid());
      EXPECT_EQ(halves.size(), 2);
      halves.barrier();
      rt.group_free(*group);
    }
    rt.finalize();
  });
}

}  // namespace
}  // namespace hmpi
