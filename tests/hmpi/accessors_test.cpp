// Tests of the HeteroMPI-style accessor extensions: group topology and
// coordinates, group performances, and the processors-info view.
#include <gtest/gtest.h>

#include "hmpi/hmpi_c.hpp"
#include "hmpi/runtime.hpp"
#include "hnoc/cluster.hpp"

namespace hmpi {
namespace {

using mp::Proc;
using mp::World;
using pmdl::InstanceBuilder;
using pmdl::Model;
using pmdl::ParamValue;

/// A 2x2 grid model with equal volumes.
Model grid_model() {
  return Model::from_factory("grid", 0, [](std::span<const ParamValue>) {
    InstanceBuilder b("grid");
    b.shape({2, 2});
    for (int a = 0; a < 4; ++a) b.node_volume(a, 10.0);
    return b.build();
  });
}

TEST(Accessors, GroupShapeAndCoordinates) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(5, 50.0);
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    Model model = grid_model();
    auto group = rt.group_create(model, {});
    if (group) {
      EXPECT_EQ(group->shape(), (std::vector<long long>{2, 2}));
      // Row-major: rank 0 -> (0,0), rank 1 -> (0,1), rank 3 -> (1,1).
      EXPECT_EQ(group->coordinates_of(0), (std::vector<long long>{0, 0}));
      EXPECT_EQ(group->coordinates_of(1), (std::vector<long long>{0, 1}));
      EXPECT_EQ(group->coordinates_of(3), (std::vector<long long>{1, 1}));
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(group->rank_at(group->coordinates_of(r)), r);
      }
      EXPECT_THROW(group->coordinates_of(4), InvalidArgument);
      const long long bad[2] = {2, 0};
      EXPECT_THROW(group->rank_at(bad), InvalidArgument);
      rt.group_free(*group);
    }
    rt.finalize();
  });
}

TEST(Accessors, GroupPerformancesReflectEstimates) {
  hnoc::Cluster cluster = hnoc::ClusterBuilder()
                              .add("host", 40.0)
                              .add("fast", 160.0)
                              .add("mid", 80.0)
                              .add("slow", 20.0)
                              .add("spare", 10.0)
                              .build();
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    rt.recon([](Proc& q) { q.compute(1.0); });
    Model model = grid_model();
    auto group = rt.group_create(model, {});
    if (group) {
      const auto perf = rt.group_performances(*group);
      ASSERT_EQ(perf.size(), 4u);
      // Member order is group-rank order; each entry is that member's
      // machine speed estimate.
      for (int r = 0; r < 4; ++r) {
        const int machine = p.world().processor_of(group->members()[static_cast<std::size_t>(r)]);
        EXPECT_DOUBLE_EQ(perf[static_cast<std::size_t>(r)],
                         p.cluster().processor(machine).speed);
      }
      rt.group_free(*group);
    }
    rt.finalize();
  });
}

TEST(Accessors, ProcessorsInfo) {
  hnoc::Cluster cluster = hnoc::ClusterBuilder()
                              .add("alpha", 100.0)
                              .add("beta", 25.0)
                              .build();
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    rt.recon([](Proc& q) { q.compute(1.0); });
    const auto info = rt.processors_info();
    ASSERT_EQ(info.size(), 2u);
    EXPECT_EQ(info[0].name, "alpha");
    EXPECT_DOUBLE_EQ(info[0].speed_estimate, 100.0);
    EXPECT_EQ(info[0].world_ranks, (std::vector<int>{0}));
    EXPECT_EQ(info[1].name, "beta");
    EXPECT_EQ(info[1].world_ranks, (std::vector<int>{1}));
    rt.finalize();
  });
}

TEST(Accessors, ProcessorsInfoWithMultipleProcessesPerMachine) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2, 50.0);
  World::run(cluster, {0, 0, 1}, [](Proc& p) {
    Runtime rt(p);
    const auto info = rt.processors_info();
    ASSERT_EQ(info.size(), 2u);
    EXPECT_EQ(info[0].world_ranks, (std::vector<int>{0, 1}));
    EXPECT_EQ(info[1].world_ranks, (std::vector<int>{2}));
    rt.finalize();
  });
}

TEST(Accessors, CApiSpellings) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(5, 50.0);
  World::run_one_per_processor(cluster, [](Proc& p) {
    HMPI_Init(p);
    HMPI_Recon([](Proc& q) { q.compute(1.0); });
    const auto info = HMPI_Get_processors_info();
    EXPECT_EQ(info.size(), 5u);

    Model model = grid_model();
    HMPI_Group gid;
    if (HMPI_Is_host() || HMPI_Is_free()) {
      HMPI_Group_create(&gid, model, {});
    }
    if (HMPI_Is_member(gid)) {
      EXPECT_EQ(HMPI_Group_topology(gid), (std::vector<long long>{2, 2}));
      EXPECT_EQ(HMPI_Group_coordof(gid, HMPI_Group_rank(gid)).size(), 2u);
      EXPECT_EQ(HMPI_Group_performances(gid).size(), 4u);
      HMPI_Group_free(&gid);
    }
    HMPI_Finalize(0);
  });
}

}  // namespace
}  // namespace hmpi
