// Regression tests for the runtime's shared estimate cache (docs/mapper.md):
// recon speed updates bump the NetworkModel version, so HMPI_Timeof can never
// serve a makespan computed from pre-recon speeds — including along the
// suspect/recover path — while repeated identical searches hit the cache.
#include "hmpi/runtime.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hmpi/hmpi_c.hpp"
#include "hnoc/cluster.hpp"
#include "mapper/mapper.hpp"
#include "mpsim/trace.hpp"

namespace hmpi {
namespace {

using mp::Proc;
using mp::World;
using pmdl::InstanceBuilder;
using pmdl::Model;
using pmdl::ParamValue;
using pmdl::ScheduleSink;

/// Compute-only model: p abstract processors, volumes[a] units each, all in
/// parallel; parent is abstract 0 (same shape as runtime_test.cpp).
Model compute_model() {
  return Model::from_factory(
      "compute", 1, [](std::span<const ParamValue> params) {
        const auto& volumes = std::get<std::vector<long long>>(params[0]);
        InstanceBuilder b("compute");
        const auto p = static_cast<long long>(volumes.size());
        b.shape({p});
        for (int a = 0; a < p; ++a) {
          b.node_volume(a, static_cast<double>(volumes[static_cast<std::size_t>(a)]));
        }
        b.scheme([p](ScheduleSink& s) {
          s.par_begin();
          for (long long a = 0; a < p; ++a) {
            s.par_iter_begin();
            const long long c[1] = {a};
            s.compute(c, 100.0);
          }
          s.par_end();
        });
        return b.build();
      });
}

ParamValue volumes(std::vector<long long> v) { return pmdl::array(std::move(v)); }

TEST(SearchCache, RepeatedTimeofHitsTheCacheBitForBit) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    if (rt.is_host()) {
      Model model = compute_model();
      const double first = rt.timeof(model, {volumes({90, 10, 50, 30})});
      const auto cold = rt.last_search_stats();
      EXPECT_GT(cold.evaluations, 0);
      EXPECT_GT(cold.cache_misses, 0);
      const double second = rt.timeof(model, {volumes({90, 10, 50, 30})});
      const auto warm = rt.last_search_stats();
      EXPECT_EQ(first, second);  // bit-identical, not just close
      // The repeat replays the same search over an unchanged network: every
      // arrangement it scores was already memoised.
      EXPECT_EQ(warm.cache_misses, 0);
      EXPECT_EQ(warm.cache_hits, warm.evaluations);
      EXPECT_DOUBLE_EQ(warm.hit_rate(), 1.0);
    }
    rt.finalize();
  });
}

TEST(SearchCache, ReconInvalidatesStaleMakespans) {
  // "fading" delivers 400 units/s until t=5, then 5% of that (20 units/s).
  // A timeof prediction made before the slowdown must not survive the recon
  // that measures the new speed.
  hnoc::Cluster cluster =
      hnoc::ClusterBuilder()
          .add("fast0", 100.0)
          .add("fast1", 100.0)
          .add("fading", 400.0, hnoc::LoadProfile({{5.0, 0.05}}))
          .build();
  // Control: a static cluster that always looks like the post-slowdown one.
  hnoc::Cluster slowed = hnoc::ClusterBuilder()
                             .add("fast0", 100.0)
                             .add("fast1", 100.0)
                             .add("fading", 20.0)
                             .build();
  double control = 0.0;
  World::run_one_per_processor(slowed, [&control](Proc& p) {
    Runtime rt(p);
    // Same benchmark as the main world's second recon, so both end up with
    // identical measured speeds (1/elapsed benchmark executions per second).
    rt.recon([](Proc& q) { q.compute(10.0); });
    if (rt.is_host()) {
      Model model = compute_model();
      control = rt.timeof(model, {volumes({10, 10, 1000})});
    }
    rt.finalize();
  });
  ASSERT_GT(control, 0.0);

  World::run_one_per_processor(cluster, [control](Proc& p) {
    Runtime rt(p);
    Model model = compute_model();
    double before = 0.0;
    if (rt.is_host()) {
      before = rt.timeof(model, {volumes({10, 10, 1000})});
    }
    // Advance every process's virtual clock past the t=5 breakpoint, then
    // re-measure. 2500 units: 25s on the fast machines; on "fading", 2000
    // units by t=5 and the rest at 20 units/s.
    p.compute(2500.0);
    rt.recon([](Proc& q) { q.compute(10.0); });
    if (rt.is_host()) {
      // Recon estimates are benchmark executions/second: the 10-unit
      // benchmark at 20 units/s takes 0.5s, so the estimate is 2.
      EXPECT_NEAR(rt.processor_speeds()[2], 2.0, 1e-9);
      const double after = rt.timeof(model, {volumes({10, 10, 1000})});
      EXPECT_GT(after, before);  // the big volume's machine slowed 20x
      // The post-recon prediction matches a fresh runtime that never saw the
      // fast speeds: nothing stale leaked out of the cache. (Tolerance, not
      // bit-equality: the two worlds measure benchmark elapsed time at
      // different absolute clocks, so the speed estimates differ in the last
      // few ulps.)
      EXPECT_NEAR(after, control, 1e-9 * control);
      const auto stats = rt.last_search_stats();
      EXPECT_GT(stats.cache_misses, 0);  // old entries were unusable
    }
    rt.finalize();
  });
}

TEST(SearchCache, SuspectRecoverPathNeverServesStaleSelections) {
  // "turbo" is effectively dead (0.1% speed) until t=20, then delivers its
  // full 1000 units/s. The strict recon marks it suspect; after recovery the
  // mapper must see the new speed, not a cached degraded makespan.
  hnoc::Cluster cluster =
      hnoc::ClusterBuilder()
          .add("fast0", 100.0)
          .add("fast1", 100.0)
          .add("turbo", 1000.0, hnoc::LoadProfile({{0.0, 0.001}, {20.0, 1.0}}))
          .build();
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    Model model = compute_model();
    RetryPolicy strict;
    strict.timeout_s = 0.5;
    rt.recon([](Proc& q) { q.compute(10.0); }, strict);
    // Parent (abstract 0) is pinned to fast0, so give it a tiny volume: the
    // 500-unit node is the one whose placement the recovery must improve.
    double degraded = 0.0;
    if (rt.is_host()) {
      EXPECT_TRUE(rt.processor_suspect(2));
      degraded = rt.timeof(model, {volumes({1, 500})});
    }
    // Pass the t=20 recovery point on every clock (the suspect machine's
    // clock advanced through its failed benchmark attempts already; the
    // barrier inside recon aligns the rest).
    p.compute(2500.0);
    rt.recon([](Proc& q) { q.compute(10.0); });
    if (rt.is_host()) {
      EXPECT_FALSE(rt.processor_suspect(2));
      // 10-unit benchmark at 1000 units/s: 0.01s -> estimate 100.
      EXPECT_NEAR(rt.processor_speeds()[2], 100.0, 1e-9);
      const double healthy = rt.timeof(model, {volumes({1, 500})});
      // With turbo back, the 500-unit block lands on a 10x faster machine.
      EXPECT_LT(healthy, degraded);
    }
    rt.finalize();
  });
}

TEST(SearchCache, DisablingTheCacheStillSelectsIdentically) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  double cached_time = 0.0;
  World::run_one_per_processor(cluster, [&cached_time](Proc& p) {
    Runtime rt(p);
    if (rt.is_host()) {
      cached_time = rt.timeof(compute_model(), {volumes({90, 10, 50, 30})});
    }
    rt.finalize();
  });
  RuntimeConfig no_cache;
  no_cache.estimate_cache = false;
  World::run_one_per_processor(cluster, [&cached_time, no_cache](Proc& p) {
    Runtime rt(p, no_cache);
    if (rt.is_host()) {
      const double uncached = rt.timeof(compute_model(), {volumes({90, 10, 50, 30})});
      EXPECT_EQ(uncached, cached_time);
      const auto stats = rt.last_search_stats();
      EXPECT_EQ(stats.cache_hits, 0);
      EXPECT_EQ(stats.cache_misses, 0);
      EXPECT_GT(stats.evaluations, 0);
    }
    rt.finalize();
  });
}

TEST(SearchCache, SearchThreadsDoNotChangeTheSelection) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  std::vector<double> times;
  for (int threads : {1, 2, 8}) {
    RuntimeConfig config;
    config.mapper = std::make_shared<map::ExhaustiveMapper>();
    config.search_threads = threads;
    double t = 0.0;
    World::run_one_per_processor(cluster, [&t, config, threads](Proc& p) {
      Runtime rt(p, config);
      if (rt.is_host()) {
        t = rt.timeof(compute_model(), {volumes({90, 10, 50, 30, 70})});
        EXPECT_EQ(rt.last_search_stats().threads, threads);
      }
      rt.finalize();
    });
    times.push_back(t);
  }
  EXPECT_EQ(times[0], times[1]);  // bit-identical across thread counts
  EXPECT_EQ(times[0], times[2]);
}

TEST(SearchCache, GroupCreateAfterTimeofReusesTheSearch) {
  // The paper's canonical pattern (Figure 8): estimate with HMPI_Timeof,
  // then create the group. The second search replays the first over an
  // unchanged network, so it should be answered almost entirely from cache.
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    Model model = compute_model();
    const ParamValue params = volumes({90, 10, 50, 30});
    if (rt.is_host()) {
      (void)rt.timeof(model, {params});
    }
    std::optional<Group> group = rt.group_create(model, {params});
    if (rt.is_host()) {
      const auto stats = rt.last_search_stats();
      EXPECT_GT(stats.evaluations, 0);
      EXPECT_GT(stats.hit_rate(), 0.5);
    }
    if (group && group->valid()) rt.group_free(*group);
    rt.finalize();
  });
}

TEST(SearchCache, MapperSearchTraceEventAndCApiStats) {
  mp::Tracer tracer;
  World::Options options;
  options.tracer = &tracer;
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  World::run_one_per_processor(
      cluster,
      [](Proc& p) {
        HMPI_Init(p);
        if (HMPI_Is_host()) {
          Model model = compute_model();
          std::vector<ParamValue> params = {volumes({90, 10, 50, 30})};
          (void)HMPI_Timeof(model, params);
          const map::SearchStats stats = HMPI_Get_mapper_stats();
          EXPECT_GT(stats.evaluations, 0);
          EXPECT_GE(stats.wall_seconds, 0.0);
          EXPECT_EQ(stats.threads, 1);  // default config searches inline
        }
        HMPI_Finalize(0);
      },
      options);
  bool saw_search = false;
  for (const mp::TraceEvent& e : tracer.events()) {
    if (e.kind == mp::TraceEvent::Kind::kMapperSearch) {
      saw_search = true;
      EXPECT_EQ(e.world_rank, 0);
      EXPECT_GT(e.search.evaluations, 0);
      EXPECT_EQ(e.search.threads, 1);
      EXPECT_GE(e.search.wall_seconds, 0.0);
      EXPECT_GE(e.search.hit_rate, 0.0);
      EXPECT_LE(e.search.hit_rate, 1.0);
    }
  }
  EXPECT_TRUE(saw_search);
}

}  // namespace
}  // namespace hmpi
