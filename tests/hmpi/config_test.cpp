// RuntimeConfig behaviour: pluggable mappers and estimate options.
#include <gtest/gtest.h>

#include "hmpi/runtime.hpp"
#include "hnoc/cluster.hpp"

namespace hmpi {
namespace {

using mp::Proc;
using mp::World;
using pmdl::InstanceBuilder;
using pmdl::Model;
using pmdl::ParamValue;

Model comm_bound_model() {
  return Model::from_factory("comm-bound", 0, [](std::span<const ParamValue>) {
    InstanceBuilder b("comm-bound");
    b.shape({2});
    b.node_volume(0, 1.0);
    b.node_volume(1, 1.0);
    b.link(0, 1, 1e6);
    b.scheme([](pmdl::ScheduleSink& s) {
      const long long a[1] = {0}, c[1] = {1};
      s.transfer(a, c, 100.0);
      s.compute(c, 100.0);
    });
    return b.build();
  });
}

/// The landscape from the mapper tests where greedy picks the raw-speed
/// machine behind a terrible link and swap-refine picks the good link.
hnoc::Cluster tricky_cluster() {
  return hnoc::ClusterBuilder()
      .add("parent", 10.0)
      .add("goodlink", 10.0)
      .add("fastbadlink", 11.0)
      .network(1e-4, 1e7)
      .symmetric_link_override(0, 2, 0.5, 1e5)
      .build();
}

TEST(RuntimeConfig, MapperChoiceChangesSelection) {
  Model model = comm_bound_model();

  auto member_with = [&](std::shared_ptr<const map::Mapper> mapper) {
    int chosen = -1;
    hnoc::Cluster cluster = tricky_cluster();
    World::run_one_per_processor(cluster, [&](Proc& p) {
      RuntimeConfig config;
      config.mapper = mapper;
      Runtime rt(p, config);
      auto group = rt.group_create(model, {});
      if (group && rt.is_host()) chosen = group->members()[1];
      if (group) rt.group_free(*group);
      rt.finalize();
    });
    return chosen;
  };

  EXPECT_EQ(member_with(std::make_shared<map::GreedyMapper>()), 2);
  EXPECT_EQ(member_with(std::make_shared<map::SwapRefineMapper>()), 1);
}

TEST(RuntimeConfig, DefaultMapperIsLinkAware) {
  Model model = comm_bound_model();
  hnoc::Cluster cluster = tricky_cluster();
  World::run_one_per_processor(cluster, [&](Proc& p) {
    Runtime rt(p);  // default config
    auto group = rt.group_create(model, {});
    if (group && rt.is_host()) {
      EXPECT_EQ(group->members()[1], 1);
    }
    if (group) rt.group_free(*group);
    rt.finalize();
  });
}

TEST(RuntimeConfig, EstimateOverheadsFlowIntoPredictions) {
  Model model = comm_bound_model();
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2, 10.0);
  double cheap = 0.0, costly = 0.0;
  for (double overhead : {0.0, 0.5}) {
    World::run_one_per_processor(cluster, [&](Proc& p) {
      RuntimeConfig config;
      config.estimate.send_overhead_s = overhead;
      config.estimate.recv_overhead_s = overhead;
      Runtime rt(p, config);
      double predicted = 0.0;
      if (rt.is_host()) predicted = rt.timeof(model, {});
      auto group = rt.group_create(model, {});
      if (group && rt.is_host()) {
        (overhead == 0.0 ? cheap : costly) = predicted;
      }
      if (group) rt.group_free(*group);
      rt.finalize();
    });
  }
  EXPECT_GT(costly, cheap + 0.4);
}

}  // namespace
}  // namespace hmpi
