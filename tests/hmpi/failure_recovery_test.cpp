// Failure-aware runtime semantics (docs/faults.md): recon retry/timeout and
// suspect marking, degraded-mode group creation, group_fail propagation, and
// group_respawn after member death.
#include "hmpi/runtime.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include "hnoc/cluster.hpp"
#include "mpsim/trace.hpp"

namespace hmpi {
namespace {

using mp::Proc;
using mp::World;
using pmdl::InstanceBuilder;
using pmdl::Model;
using pmdl::ParamValue;
using pmdl::ScheduleSink;

/// Compute-only model: p abstract processors, volumes[a] units each, all in
/// parallel; parent is abstract 0 (same shape as runtime_test.cpp).
Model compute_model() {
  return Model::from_factory(
      "compute", 1, [](std::span<const ParamValue> params) {
        const auto& volumes = std::get<std::vector<long long>>(params[0]);
        InstanceBuilder b("compute");
        const auto p = static_cast<long long>(volumes.size());
        b.shape({p});
        for (int a = 0; a < p; ++a) {
          b.node_volume(a, static_cast<double>(volumes[static_cast<std::size_t>(a)]));
        }
        b.scheme([p](ScheduleSink& s) {
          s.par_begin();
          for (long long a = 0; a < p; ++a) {
            s.par_iter_begin();
            const long long c[1] = {a};
            s.compute(c, 100.0);
          }
          s.par_end();
        });
        return b.build();
      });
}

std::vector<ParamValue> volumes(int p) {
  return {pmdl::array(std::vector<long long>(static_cast<std::size_t>(p), 10))};
}

World::Options fast_timeout() {
  World::Options o;
  o.deadlock_timeout_s = 2.0;
  return o;
}

TEST(FailureRecovery, ReconTimeoutMarksProcessorSuspect) {
  // The "hung" machine is simply 100x slower: its benchmark blows both
  // attempt budgets (1s, then 2s) while the fast machines finish in 0.1s.
  hnoc::Cluster cluster = hnoc::ClusterBuilder()
                              .add("fast0", 100.0)
                              .add("fast1", 100.0)
                              .add("hung", 1.0)
                              .build();
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    RetryPolicy policy;
    policy.timeout_s = 1.0;
    policy.max_attempts = 2;
    rt.recon([](Proc& q) { q.compute(10.0); }, policy);
    EXPECT_FALSE(rt.processor_suspect(0));
    EXPECT_FALSE(rt.processor_suspect(1));
    EXPECT_TRUE(rt.processor_suspect(2));
    EXPECT_EQ(rt.rank_health(0), Health::kAlive);
    EXPECT_EQ(rt.rank_health(2), Health::kSuspect);
    EXPECT_EQ(rt.suspect_processors(), (std::vector<int>{2}));
    rt.finalize();
  });
}

TEST(FailureRecovery, SuccessfulReconRecoversSuspect) {
  mp::Tracer tracer;
  World::Options options;
  options.tracer = &tracer;
  hnoc::Cluster cluster = hnoc::ClusterBuilder()
                              .add("fast", 100.0)
                              .add("slow", 1.0)
                              .build();
  World::run_one_per_processor(
      cluster,
      [](Proc& p) {
        Runtime rt(p);
        RetryPolicy strict;
        strict.timeout_s = 0.5;
        rt.recon([](Proc& q) { q.compute(10.0); }, strict);
        EXPECT_TRUE(rt.processor_suspect(1));
        // An untimed recon demonstrates the machine is alive, just slow.
        rt.recon([](Proc& q) { q.compute(10.0); });
        EXPECT_FALSE(rt.processor_suspect(1));
        EXPECT_TRUE(rt.suspect_processors().empty());
        EXPECT_NEAR(rt.processor_speeds()[1], 0.1, 1e-9);
        rt.finalize();
      },
      options);
  bool suspected = false;
  bool recovered = false;
  for (const mp::TraceEvent& e : tracer.events()) {
    if (e.kind == mp::TraceEvent::Kind::kSuspect && e.processor == 1) {
      suspected = true;
    }
    if (e.kind == mp::TraceEvent::Kind::kRecover && e.processor == 1) {
      recovered = true;
    }
  }
  EXPECT_TRUE(suspected);
  EXPECT_TRUE(recovered);
}

TEST(FailureRecovery, ReconClampsNearZeroBenchmarkTime) {
  // A degenerate benchmark must not manufacture an (almost) infinite speed
  // estimate; elapsed time is clamped to kMinBenchTime before inverting.
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2, 100.0);
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    rt.recon([](Proc& q) { q.compute(1e-15); });
    for (double speed : rt.processor_speeds()) {
      EXPECT_LE(speed, 1.0 / kMinBenchTime);
    }
    rt.finalize();
  });
}

TEST(FailureRecovery, GroupCreateSkipsSuspectAndReportsDegraded) {
  hnoc::Cluster cluster = hnoc::ClusterBuilder()
                              .add("fast0", 100.0)
                              .add("fast1", 100.0)
                              .add("fast2", 100.0)
                              .add("hung", 1.0)
                              .build();
  Model model = compute_model();
  World::run_one_per_processor(cluster, [&](Proc& p) {
    Runtime rt(p);
    RetryPolicy policy;
    policy.timeout_s = 1.0;
    rt.recon([](Proc& q) { q.compute(10.0); }, policy);
    ASSERT_TRUE(rt.processor_suspect(3));

    auto group = rt.group_create(model, volumes(3));
    if (p.rank() == 3) {
      // The suspect still participates in the collective but is not drafted.
      EXPECT_FALSE(group.has_value());
    } else {
      ASSERT_TRUE(group.has_value());
      EXPECT_TRUE(group->degraded());
      EXPECT_GE(group->degraded_delta(), 0.0);
      EXPECT_EQ(std::count(group->members().begin(), group->members().end(), 3),
                0);
      rt.group_free(*group);
    }
    rt.finalize();
  });
}

TEST(FailureRecovery, SuspectReadmittedWhenModelInfeasibleWithoutIt) {
  hnoc::Cluster cluster = hnoc::ClusterBuilder()
                              .add("fast0", 100.0)
                              .add("fast1", 100.0)
                              .add("fast2", 100.0)
                              .add("hung", 1.0)
                              .build();
  Model model = compute_model();
  World::run_one_per_processor(cluster, [&](Proc& p) {
    Runtime rt(p);
    RetryPolicy policy;
    policy.timeout_s = 1.0;
    rt.recon([](Proc& q) { q.compute(10.0); }, policy);

    // Four abstract processors cannot be placed on three trusted candidates:
    // the suspect is re-admitted rather than failing the creation.
    auto group = rt.group_create(model, volumes(4));
    ASSERT_TRUE(group.has_value());
    EXPECT_TRUE(group->degraded());
    EXPECT_EQ(std::count(group->members().begin(), group->members().end(), 3),
              1);
    rt.group_free(*group);
    rt.finalize();
  });
}

TEST(FailureRecovery, GroupCreateExcludesDeadRankAndReportsDegraded) {
  World::Options options = fast_timeout();
  options.faults.crashes.push_back({2, 0.005});
  Model model = compute_model();
  World::run_one_per_processor(
      hnoc::testbeds::homogeneous(4, 100.0),
      [&](Proc& p) {
        Runtime rt(p);
        if (p.rank() == 2) {
          p.compute(10.0);  // dies at t=0.005, before any group forms
          return;
        }
        if (p.rank() == 0) {
          // Sequence the failure: the host observes the death before it
          // announces the creation, so the exclusion is deterministic.
          EXPECT_THROW(p.world_comm().recv_value<int>(2, 1), PeerFailedError);
        }
        auto group = rt.group_create(model, volumes(3));
        ASSERT_TRUE(group.has_value());
        EXPECT_TRUE(group->degraded());
        EXPECT_GE(group->degraded_delta(), 0.0);
        EXPECT_EQ(group->size(), 3);
        EXPECT_EQ(std::count(group->members().begin(), group->members().end(), 2),
                  0);
        EXPECT_EQ(rt.rank_health(2), Health::kDead);
        rt.group_free(*group);
        rt.finalize();
      },
      options);
}

TEST(FailureRecovery, GroupRespawnAfterMemberDeath) {
  // Three members exchange in a ring; rank 1 dies mid-loop. Rank 2 observes
  // the death directly (PeerFailedError from its receive); rank 0 was
  // blocked on the *alive* rank 2 and is released by the context revocation
  // that rank 2's group_respawn performs. Both rebuild a 2-member group.
  World::Options options = fast_timeout();
  options.faults.crashes.push_back({1, 1.0});
  Model model = compute_model();
  std::atomic<int> peer_failed{0};
  std::atomic<int> revoked{0};
  World::run_one_per_processor(
      hnoc::testbeds::homogeneous(3, 100.0),
      [&](Proc& p) {
        Runtime rt(p);
        auto group = rt.group_create(model, volumes(3));
        ASSERT_TRUE(group.has_value());
        EXPECT_FALSE(group->degraded());

        const mp::Comm& comm = group->comm();
        const int next = (group->rank() + 1) % group->size();
        const int prev = (group->rank() + group->size() - 1) % group->size();
        bool failed = false;
        try {
          for (int i = 0; i < 1000; ++i) {
            p.compute(1.0);  // rank 1's clock crosses t=1.0 in here
            comm.send_value(i, next, 1);
            comm.recv_value<int>(prev, 1);
          }
        } catch (const PeerFailedError&) {
          peer_failed.fetch_add(1);
          failed = true;
        } catch (const RevokedError&) {
          revoked.fetch_add(1);
          failed = true;
        }
        ASSERT_TRUE(failed) << "rank " << p.rank();

        auto rebuilt = rt.group_respawn(*group, model, volumes(2));
        ASSERT_TRUE(rebuilt.has_value());
        EXPECT_TRUE(rebuilt->degraded());
        EXPECT_EQ(rebuilt->size(), 2);
        EXPECT_EQ(rebuilt->members(), (std::vector<int>{0, 2}));

        // The rebuilt communicator works.
        const mp::Comm& comm2 = rebuilt->comm();
        const int other = 1 - rebuilt->rank();
        comm2.send_value(p.rank(), other, 2);
        EXPECT_EQ(comm2.recv_value<int>(other, 2),
                  rebuilt->members()[static_cast<std::size_t>(other)]);

        rt.group_free(*rebuilt);
        rt.finalize();
      },
      options);
  EXPECT_EQ(peer_failed.load() + revoked.load(), 2);
  EXPECT_GE(peer_failed.load(), 1);  // rank 2 always sees the death directly
}

TEST(FailureRecovery, GroupRespawnDraftsReplacementFromFreePool) {
  // Four processes, three-member group on the fast machines; when a member
  // dies the respawn drafts the previously-unselected free process.
  hnoc::Cluster cluster = hnoc::ClusterBuilder()
                              .add("fast0", 100.0)
                              .add("fast1", 100.0)
                              .add("fast2", 100.0)
                              .add("spare", 50.0)
                              .build();
  World::Options options = fast_timeout();
  options.faults.crashes.push_back({1, 1.0});
  Model model = compute_model();
  World::run_one_per_processor(
      cluster,
      [&](Proc& p) {
        Runtime rt(p);
        rt.recon([](Proc& q) { q.compute(1.0); });
        auto group = rt.group_create(model, volumes(3));
        if (!group.has_value()) {
          // The spare stays free and joins the respawn rendezvous.
          EXPECT_EQ(p.rank(), 3);
          auto drafted = rt.group_create(model, {});
          ASSERT_TRUE(drafted.has_value());
          EXPECT_TRUE(drafted->degraded());
          rt.group_free(*drafted);
          rt.finalize();
          return;
        }
        std::set<int> initial(group->members().begin(), group->members().end());
        EXPECT_EQ(initial, (std::set<int>{0, 1, 2}));
        const mp::Comm& comm = group->comm();
        const int next = (group->rank() + 1) % group->size();
        const int prev = (group->rank() + group->size() - 1) % group->size();
        bool failed = false;
        try {
          for (int i = 0; i < 1000; ++i) {
            p.compute(1.0);
            comm.send_value(i, next, 1);
            comm.recv_value<int>(prev, 1);
          }
        } catch (const PeerFailedError&) {
          failed = true;
        } catch (const RevokedError&) {
          failed = true;
        }
        ASSERT_TRUE(failed);  // rank 1's ProcessKilledError propagates instead

        auto rebuilt = rt.group_respawn(*group, model, volumes(3));
        ASSERT_TRUE(rebuilt.has_value());
        EXPECT_TRUE(rebuilt->degraded());
        EXPECT_EQ(rebuilt->size(), 3);
        EXPECT_EQ(std::count(rebuilt->members().begin(),
                             rebuilt->members().end(), 1),
                  0);
        EXPECT_EQ(std::count(rebuilt->members().begin(),
                             rebuilt->members().end(), 3),
                  1);
        rt.group_free(*rebuilt);
        rt.finalize();
      },
      options);
}

TEST(FailureRecovery, GroupFailReleasesWithoutBarrier) {
  World::Options options = fast_timeout();
  options.faults.crashes.push_back({2, 1.0});
  Model model = compute_model();
  World::run_one_per_processor(
      hnoc::testbeds::homogeneous(3, 100.0),
      [&](Proc& p) {
        Runtime rt(p);
        auto group = rt.group_create(model, volumes(3));
        ASSERT_TRUE(group.has_value());
        const mp::Comm& comm = group->comm();
        if (p.rank() == 2) {
          p.compute(200.0);  // dies at t=1.0
          return;
        }
        bool failed = false;
        try {
          // Both survivors block on the dying rank.
          comm.recv_value<int>(group->comm().rank_of_world(2), 1);
        } catch (const MpError&) {
          failed = true;
        }
        ASSERT_TRUE(failed);
        rt.group_fail(*group);
        EXPECT_FALSE(group->valid());
        // Membership released: the survivor is free again (host excepted).
        if (p.rank() != 0) {
          EXPECT_TRUE(rt.is_free());
        }
        rt.finalize();
      },
      options);
}

}  // namespace
}  // namespace hmpi {
