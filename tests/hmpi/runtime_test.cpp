#include "hmpi/runtime.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "hnoc/cluster.hpp"

namespace hmpi {
namespace {

using mp::Proc;
using mp::World;
using pmdl::InstanceBuilder;
using pmdl::Model;
using pmdl::ParamValue;
using pmdl::ScheduleSink;

/// Compute-only model factory: p abstract processors, volumes[a] units each,
/// all running in parallel; parent is abstract 0.
Model compute_model() {
  return Model::from_factory(
      "compute", 1, [](std::span<const ParamValue> params) {
        const auto& volumes = std::get<std::vector<long long>>(params[0]);
        InstanceBuilder b("compute");
        const auto p = static_cast<long long>(volumes.size());
        b.shape({p});
        for (int a = 0; a < p; ++a) {
          b.node_volume(a, static_cast<double>(volumes[static_cast<std::size_t>(a)]));
        }
        b.scheme([p](ScheduleSink& s) {
          s.par_begin();
          for (long long a = 0; a < p; ++a) {
            s.par_iter_begin();
            const long long c[1] = {a};
            s.compute(c, 100.0);
          }
          s.par_end();
        });
        return b.build();
      });
}

/// Recon benchmark calibrated so 1 benchmark unit == 1 simulator unit.
void unit_bench(Proc& p) { p.compute(1.0); }

TEST(Runtime, InitHostAndFreeRoles) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(4, 50.0);
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    EXPECT_EQ(rt.is_host(), p.rank() == 0);
    EXPECT_EQ(rt.is_free(), p.rank() != 0);
    EXPECT_EQ(rt.world_comm().size(), 4);
    rt.finalize();
  });
}

TEST(Runtime, FreeRanksExcludesHost) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(3);
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    EXPECT_EQ(rt.free_ranks(), (std::vector<int>{1, 2}));
    rt.finalize();
  });
}

TEST(Runtime, ReconMeasuresEffectiveSpeeds) {
  hnoc::Cluster cluster = hnoc::ClusterBuilder()
                              .add("fast", 100.0)
                              .add("slow", 20.0)
                              .build();
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    rt.recon([](Proc& q) { q.compute(10.0); });  // 10 sim units per bench
    const auto speeds = rt.processor_speeds();
    // speed = 1 benchmark / elapsed = sim_speed / 10.
    EXPECT_NEAR(speeds[0], 10.0, 1e-9);
    EXPECT_NEAR(speeds[1], 2.0, 1e-9);
    rt.finalize();
  });
}

TEST(Runtime, ReconSeesExternalLoad) {
  hnoc::Cluster cluster =
      hnoc::ClusterBuilder()
          .add("idle", 100.0)
          .add("busy", 100.0, hnoc::LoadProfile::constant(0.25))
          .build();
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    rt.recon(unit_bench);
    const auto speeds = rt.processor_speeds();
    EXPECT_NEAR(speeds[0], 100.0, 1e-9);
    EXPECT_NEAR(speeds[1], 25.0, 1e-9);  // multi-user load discovered
    rt.finalize();
  });
}

TEST(Runtime, ReconRejectsZeroWorkBenchmark) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2);
  EXPECT_THROW(World::run_one_per_processor(cluster,
                                            [](Proc& p) {
                                              Runtime rt(p);
                                              rt.recon([](Proc&) {});
                                            }),
               InvalidArgument);
}

TEST(Runtime, GroupCreateSelectsAndOrdersMembers) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(5, 50.0);
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    rt.recon(unit_bench);
    Model model = compute_model();
    auto group = rt.group_create(model, {pmdl::array({100, 100, 100})});
    if (p.rank() == 0) {
      ASSERT_TRUE(group.has_value());  // the parent always belongs
      EXPECT_EQ(group->size(), 3);
      EXPECT_EQ(group->parent_rank(), 0);
      EXPECT_EQ(group->members()[0], 0);
      EXPECT_GT(group->estimated_time(), 0.0);
    }
    if (group) {
      // Group communicator is fully usable.
      int in = 1, out = 0;
      group->comm().allreduce(std::span<const int>(&in, 1),
                              std::span<int>(&out, 1),
                              [](int a, int b) { return a + b; });
      EXPECT_EQ(out, 3);
      // Members are no longer free.
      EXPECT_FALSE(rt.is_free());
      rt.group_free(*group);
    }
    rt.finalize();
  });
}

TEST(Runtime, GroupCreatePrefersFastProcessors) {
  // Host on a slow machine (pinned anyway); the two other slots must go to
  // the fast machines, never to the slow non-host ones.
  hnoc::Cluster cluster = hnoc::ClusterBuilder()
                              .add("host", 10.0)
                              .add("slow1", 1.0)
                              .add("fast1", 100.0)
                              .add("slow2", 1.0)
                              .add("fast2", 100.0)
                              .build();
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    rt.recon(unit_bench);
    Model model = compute_model();
    auto group = rt.group_create(model, {pmdl::array({100, 100, 100})});
    if (p.rank() == 0) {
      ASSERT_TRUE(group.has_value());
      std::set<int> members(group->members().begin(), group->members().end());
      EXPECT_EQ(members, (std::set<int>{0, 2, 4}));
    }
    EXPECT_EQ(group.has_value(), p.rank() == 0 || p.rank() == 2 || p.rank() == 4);
    rt.finalize();
  });
}

TEST(Runtime, HeadlineInvariantFasterThanEveryOtherGroup) {
  // The paper's claim: the HMPI-selected group executes the algorithm faster
  // than any other group of processes. Verify by exhaustive comparison of
  // the predicted times of all alternative member sets.
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    rt.recon(unit_bench);
    Model model = compute_model();
    const std::vector<long long> volumes{500, 900, 100, 300};
    auto group = rt.group_create(model, {pmdl::array(volumes)});
    if (p.rank() == 0) {
      ASSERT_TRUE(group.has_value());
      // Compare against every injective alternative assignment.
      auto instance = model.instantiate({pmdl::array(volumes)});
      hnoc::NetworkModel net(p.cluster());
      for (int i = 0; i < 9; ++i) net.set_speed(i, rt.processor_speeds()[static_cast<std::size_t>(i)]);
      double best_alternative = 1e300;
      // Brute force: parent fixed on processor 0, choose 3 of 8 others.
      std::vector<int> mapping(4);
      mapping[0] = 0;
      for (int a = 1; a < 9; ++a)
        for (int b = 1; b < 9; ++b)
          for (int c = 1; c < 9; ++c) {
            if (a == b || b == c || a == c) continue;
            mapping[1] = a;
            mapping[2] = b;
            mapping[3] = c;
            best_alternative = std::min(
                best_alternative, est::estimate_time(instance, mapping, net));
          }
      EXPECT_LE(group->estimated_time(), best_alternative + 1e-12);
    }
    if (group) rt.group_free(*group);
    rt.finalize();
  });
}

TEST(Runtime, GroupFreeReturnsMembersToThePool) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(4);
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    Model model = compute_model();
    // Frees loop over creations; the host drives two successive groups.
    for (int round = 0; round < 2; ++round) {
      auto group = rt.group_create(model, {pmdl::array({10, 10})});
      if (group) {
        EXPECT_EQ(group->size(), 2);
        rt.group_free(*group);
        EXPECT_FALSE(group->valid());
      }
      // Only assert the free pool inside a barrier window: the first barrier
      // guarantees every member has freed the group, the second keeps the
      // host from racing into the next round's creation (which would mark
      // processes busy again) before the slower processes assert.
      rt.world_comm().barrier();
      EXPECT_EQ(rt.free_ranks().size(), 3u);
      rt.world_comm().barrier();
    }
    rt.finalize();
  });
}

TEST(Runtime, TimeofPredictsGroupCreateChoice) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    rt.recon(unit_bench);
    Model model = compute_model();
    double predicted = 0.0;
    if (p.rank() == 0) predicted = rt.timeof(model, {pmdl::array({400, 200})});
    auto group = rt.group_create(model, {pmdl::array({400, 200})});
    if (p.rank() == 0) {
      ASSERT_TRUE(group.has_value());
      EXPECT_DOUBLE_EQ(predicted, group->estimated_time());
    }
    if (group) rt.group_free(*group);
    rt.finalize();
  });
}

TEST(Runtime, TimeofTracksExecutedVirtualTime) {
  // Run the modelled algorithm for real and compare with the prediction.
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    rt.recon(unit_bench);
    Model model = compute_model();
    const std::vector<long long> volumes{800, 400, 200, 600};
    auto group = rt.group_create(model, {pmdl::array(volumes)});
    if (group) {
      group->comm().barrier();
      const double t0 = p.clock();
      p.compute(static_cast<double>(volumes[static_cast<std::size_t>(group->rank())]));
      // Group-wide makespan of the compute phase.
      double elapsed = p.clock() - t0;
      double makespan = 0.0;
      group->comm().allreduce(std::span<const double>(&elapsed, 1),
                              std::span<double>(&makespan, 1),
                              [](double a, double b) { return a > b ? a : b; });
      if (group->rank() == 0) {
        EXPECT_NEAR(group->estimated_time(), makespan, 0.05 * makespan);
      }
      rt.group_free(*group);
    }
    rt.finalize();
  });
}

TEST(Runtime, NestedGroupParenting) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(5);
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    Model model = compute_model();
    // Round 1: host creates group A of size 2 -> members {0, x}.
    auto group_a = rt.group_create(model, {pmdl::array({10, 10})});
    // Round 2: the non-host member of A parents group B; remaining frees join.
    std::optional<Group> group_b;
    if (group_a && p.rank() != 0) {
      group_b = rt.group_create(model, {pmdl::array({10, 10})});
      ASSERT_TRUE(group_b.has_value());  // parents always belong
      EXPECT_EQ(group_b->members()[0], p.rank());
    } else if (!group_a) {
      group_b = rt.group_create(model, {});  // frees follow
    }
    if (group_b) {
      int in = 1, out = 0;
      group_b->comm().allreduce(std::span<const int>(&in, 1),
                                std::span<int>(&out, 1),
                                [](int a, int b) { return a + b; });
      EXPECT_EQ(out, 2);
      rt.group_free(*group_b);
    }
    if (group_a) rt.group_free(*group_a);
    rt.finalize();
  });
}

TEST(Runtime, GroupAutoCreatePicksLargestUsefulSize) {
  // Perfectly parallel work: the best p is everything available.
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(4, 50.0);
  World::run_one_per_processor(cluster, [](Proc& p) {
    Runtime rt(p);
    rt.recon(unit_bench);
    Model model = compute_model();
    auto group = rt.group_auto_create(
        model,
        [](int p_size) {
          // Total work 1200 split evenly.
          std::vector<long long> volumes(static_cast<std::size_t>(p_size),
                                         1200 / p_size);
          return std::vector<pmdl::ParamValue>{pmdl::array(volumes)};
        },
        /*max_p=*/8);
    ASSERT_TRUE(group.has_value());  // everyone is taken
    EXPECT_EQ(group->size(), 4);
    rt.group_free(*group);
    rt.finalize();
  });
}

TEST(Runtime, GroupAutoCreateAvoidsOverDecomposition) {
  // Heavy per-pair communication: adding processes hurts; auto-create must
  // settle on a small group.
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(6, 50.0);
  Model model = Model::from_factory(
      "comm-heavy", 1, [](std::span<const pmdl::ParamValue> params) {
        const long long p = std::get<long long>(params[0]);
        InstanceBuilder b("comm-heavy");
        b.shape({p});
        for (int a = 0; a < p; ++a) b.node_volume(a, 1000.0 / static_cast<double>(p));
        for (int a = 0; a < p; ++a) {
          for (int c = 0; c < p; ++c) {
            // Halo traffic that grows with the decomposition width, so wide
            // groups are communication-bound.
            if (a != c) b.link(a, c, 2e7 * static_cast<double>(p));
          }
        }
        b.scheme([p](ScheduleSink& s) {
          s.par_begin();
          for (long long a = 0; a < p; ++a) {
            s.par_iter_begin();
            const long long ca[1] = {a};
            for (long long c = 0; c < p; ++c) {
              if (a == c) continue;
              const long long cc[1] = {c};
              s.transfer(ca, cc, 100.0);
            }
            s.compute(ca, 100.0);
          }
          s.par_end();
        });
        return b.build();
      });
  World::run_one_per_processor(cluster, [&model](Proc& p) {
    Runtime rt(p);
    rt.recon(unit_bench);
    auto group = rt.group_auto_create(
        model,
        [](int p_size) {
          return std::vector<pmdl::ParamValue>{pmdl::scalar(p_size)};
        },
        /*max_p=*/6);
    if (p.rank() == 0) {
      ASSERT_TRUE(group.has_value());
      EXPECT_LT(group->size(), 6);  // communication made full width a loss
    }
    if (group) rt.group_free(*group);
    rt.finalize();
  });
}

TEST(Runtime, GroupCreateFailsWhenTooFewProcesses) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2);
  EXPECT_THROW(
      World::run_one_per_processor(cluster,
                                   [](Proc& p) {
                                     Runtime rt(p);
                                     Model model = compute_model();
                                     rt.group_create(
                                         model, {pmdl::array({1, 1, 1, 1})});
                                   }),
      Error);
}

TEST(Runtime, DeterministicGroupSelection) {
  auto run_once = [] {
    std::vector<int> members;
    hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
    World::run_one_per_processor(cluster, [&members](Proc& p) {
      Runtime rt(p);
      rt.recon(unit_bench);
      Model model = compute_model();
      auto group = rt.group_create(model, {pmdl::array({70, 20, 50})});
      if (p.rank() == 0) members = group->members();
      if (group) rt.group_free(*group);
      rt.finalize();
    });
    return members;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hmpi
