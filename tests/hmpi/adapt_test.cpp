// Closed-loop adaptation (docs/adaptation.md): controller policy units
// (EWMA, hysteresis, cooldown, exponential backoff, ledger closure),
// environment overrides, and full runtime integration — drift-triggered
// guarded migration, rollback of a bad move, ping-pong draft cooldown,
// decision determinism across search thread counts, and the HMPI_ADAPT=off
// bit-identity contract.
#include "hmpi/adapt.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "hmpi/runtime.hpp"
#include "hnoc/cluster.hpp"
#include "hnoc/load_profile.hpp"
#include "mpsim/trace.hpp"
#include "support/error.hpp"
#include "telemetry/metrics.hpp"

namespace hmpi {
namespace {

using adapt::AdaptConfig;
using adapt::AdaptDecision;
using adapt::AdaptOutcomeKind;
using adapt::AdaptRecord;
using adapt::AdaptSignal;
using adapt::AdaptationController;
using mp::Proc;
using mp::World;
using pmdl::InstanceBuilder;
using pmdl::Model;
using pmdl::ParamValue;
using pmdl::ScheduleSink;

// ---------------------------------------------------------------------------
// Controller policy units (no simulated world).
// ---------------------------------------------------------------------------

/// Policy with no smoothing and no gates: each round judged on its own.
AdaptConfig plain_config() {
  AdaptConfig c;
  c.enabled = true;
  c.threshold = 0.25;
  c.ewma_alpha = 1.0;
  c.hysteresis = 2;
  c.cooldown_s = 0.0;
  return c;
}

TEST(AdaptController, StableRoundsNeverTrigger) {
  AdaptationController ctl(plain_config());
  for (int i = 0; i < 50; ++i) {
    const AdaptDecision d = ctl.note_progress(1, 1.0, 1.0);
    EXPECT_FALSE(d.migrate);
    EXPECT_EQ(d.signal, AdaptSignal::kNone);
    EXPECT_DOUBLE_EQ(d.severity, 0.0);
  }
  EXPECT_DOUBLE_EQ(ctl.divergence(1), 0.0);
  EXPECT_TRUE(ctl.ledger().empty());
  EXPECT_DOUBLE_EQ(ctl.now_s(), 50.0);
}

TEST(AdaptController, HysteresisRequiresConsecutiveViolations) {
  AdaptationController ctl(plain_config());
  // One violation: streak 1 of 2.
  EXPECT_FALSE(ctl.note_progress(1, 1.0, 2.0).migrate);
  // A clean round resets the streak...
  EXPECT_FALSE(ctl.note_progress(1, 1.0, 1.0).migrate);
  EXPECT_FALSE(ctl.note_progress(1, 1.0, 2.0).migrate);
  // ...so only two *consecutive* violations trigger.
  const AdaptDecision d = ctl.note_progress(1, 1.0, 2.0);
  EXPECT_TRUE(d.migrate);
  EXPECT_EQ(d.signal, AdaptSignal::kDivergence);
  EXPECT_DOUBLE_EQ(d.severity, 1.0);
}

TEST(AdaptController, EwmaSmoothsSingleSpike) {
  AdaptConfig c = plain_config();
  c.ewma_alpha = 0.5;
  c.threshold = 0.5;
  c.hysteresis = 1;
  AdaptationController ctl(c);
  // Seed with a clean round (ewma = 0), then one big spike: the smoothed
  // value is half the raw error.
  EXPECT_FALSE(ctl.note_progress(1, 1.0, 1.0).migrate);
  const AdaptDecision spike = ctl.note_progress(1, 1.0, 1.8);
  EXPECT_NEAR(spike.severity, 0.4, 1e-12);  // 0.5 * 0.8
  EXPECT_FALSE(spike.migrate);
  // A second spike pushes the EWMA over the threshold.
  const AdaptDecision second = ctl.note_progress(1, 1.0, 1.8);
  EXPECT_NEAR(second.severity, 0.6, 1e-12);  // 0.5*0.8 + 0.5*0.4
  EXPECT_TRUE(second.migrate);
}

TEST(AdaptController, CooldownSuppressesUntilTimePasses) {
  AdaptConfig c = plain_config();
  c.hysteresis = 1;
  c.cooldown_s = 10.0;
  AdaptationController ctl(c);
  ctl.note_progress(1, 1.0, 1.0);  // now = 1
  AdaptRecord rec;
  rec.group_id = 1;
  rec.new_group_id = 2;
  ctl.note_migration(rec);  // cooldown until now + 10 = 11
  // A gross violation inside the window must not trigger.
  EXPECT_TRUE(ctl.in_cooldown());
  EXPECT_FALSE(ctl.note_progress(2, 1.0, 5.0).migrate);  // now = 6
  // Once measured time carries the clock past the window, it does.
  EXPECT_TRUE(ctl.note_progress(2, 1.0, 5.0).migrate);  // now = 11
  EXPECT_FALSE(ctl.in_cooldown());
}

TEST(AdaptController, RollbackArmsExponentialBackoffAndBoundedRetry) {
  AdaptConfig c = plain_config();
  c.hysteresis = 1;
  c.cooldown_s = 1.0;
  c.retry_backoff = 2.0;
  c.max_retries = 2;
  AdaptationController ctl(c);
  AdaptRecord rec;
  rec.group_id = 1;

  ctl.note_rollback(rec);  // cooldown until 0 + 1*2^1 = 2
  EXPECT_EQ(ctl.rollbacks(), 1);
  EXPECT_TRUE(ctl.in_cooldown());
  EXPECT_EQ(ctl.ledger().back().outcome, AdaptOutcomeKind::kRolledBack);

  // Past the backoff window and under max_retries: triggers again.
  EXPECT_TRUE(ctl.note_progress(1, 1.0, 5.0).migrate);  // now = 5

  ctl.note_rollback(rec);  // cooldown until 5 + 1*2^2 = 9
  EXPECT_EQ(ctl.rollbacks(), 2);
  EXPECT_TRUE(ctl.in_cooldown());

  // max_retries exhausted: no amount of time or violation reopens the gate.
  EXPECT_FALSE(ctl.note_progress(1, 1.0, 100.0).migrate);  // now = 105
  EXPECT_FALSE(ctl.in_cooldown());
  EXPECT_FALSE(ctl.note_progress(1, 1.0, 100.0).migrate);
}

TEST(AdaptController, RealizedGainClosesMigrationLedgerEntry) {
  AdaptationController ctl(plain_config());
  // Last measured round on the old roster: 2.0s.
  ctl.note_progress(1, 2.0, 2.0);
  AdaptRecord rec;
  rec.group_id = 1;
  rec.new_group_id = 2;
  rec.predicted_old_s = 2.0;
  rec.predicted_new_s = 0.5;
  ctl.note_migration(rec);
  ASSERT_EQ(ctl.ledger().size(), 1u);
  EXPECT_FALSE(ctl.ledger()[0].has_realized);

  // First measured round on the successor closes the entry.
  const AdaptDecision d = ctl.note_progress(2, 0.5, 0.5);
  EXPECT_TRUE(d.closed_migration);
  EXPECT_NEAR(d.realized_gain_s, 1.5, 1e-12);  // 2.0 old round - 0.5 new
  EXPECT_TRUE(ctl.ledger()[0].has_realized);
  EXPECT_NEAR(ctl.ledger()[0].realized_gain_s, 1.5, 1e-12);

  // Later rounds do not re-close it.
  EXPECT_FALSE(ctl.note_progress(2, 0.5, 0.5).closed_migration);
}

TEST(AdaptController, DriftSignalHasItsOwnHysteresis) {
  AdaptationController ctl(plain_config());
  EXPECT_FALSE(ctl.note_drift(1, 0.5).migrate);
  EXPECT_EQ(ctl.note_drift(1, 0.5).signal, AdaptSignal::kSpeedDrift);
  // Streak is now 2 -> but the second call above already triggered.
  AdaptationController ctl2(plain_config());
  ctl2.note_drift(1, 0.5);
  ctl2.note_drift(1, 0.1);  // below threshold: resets the streak
  EXPECT_FALSE(ctl2.note_drift(1, 0.5).migrate);
  EXPECT_TRUE(ctl2.note_drift(1, 0.5).migrate);
  // Drift does not advance the controller clock.
  EXPECT_DOUBLE_EQ(ctl2.now_s(), 0.0);
}

TEST(AdaptController, BlameSignalIsFlagGatedWithHysteresis) {
  // Blame is default-off: even a decisive share produces no decision.
  AdaptationController off(plain_config());
  const AdaptDecision silent =
      off.note_blame(1, AdaptSignal::kBlameMachine, 0.9);
  EXPECT_FALSE(silent.migrate);
  EXPECT_EQ(silent.signal, AdaptSignal::kNone);

  AdaptConfig c = plain_config();
  c.blame = true;
  c.blame_share = 0.5;
  AdaptationController ctl(c);
  // Shares at or below the threshold reset the streak.
  EXPECT_FALSE(ctl.note_blame(1, AdaptSignal::kBlameLink, 0.5).migrate);
  EXPECT_EQ(ctl.note_blame(1, AdaptSignal::kBlameLink, 0.8).signal,
            AdaptSignal::kBlameLink);
  ctl.note_blame(1, AdaptSignal::kBlameLink, 0.2);  // resets
  EXPECT_FALSE(ctl.note_blame(1, AdaptSignal::kBlameLink, 0.8).migrate);
  // Two consecutive decisive shares clear the hysteresis (2) and trigger.
  const AdaptDecision d = ctl.note_blame(1, AdaptSignal::kBlameLink, 0.8);
  EXPECT_TRUE(d.migrate);
  EXPECT_EQ(d.signal, AdaptSignal::kBlameLink);
  EXPECT_DOUBLE_EQ(d.severity, 0.8);
  // Triggering resets the streak.
  EXPECT_FALSE(ctl.note_blame(1, AdaptSignal::kBlameLink, 0.8).migrate);
}

TEST(AdaptController, BlameValidatesItsInputs) {
  AdaptConfig c = plain_config();
  c.blame = true;
  AdaptationController ctl(c);
  EXPECT_THROW(ctl.note_blame(1, AdaptSignal::kDivergence, 0.5),
               InvalidArgument);
  EXPECT_THROW(ctl.note_blame(1, AdaptSignal::kBlameMachine, 1.5),
               InvalidArgument);
  AdaptConfig bad = plain_config();
  bad.blame_share = 0.0;  // must be in (0, 1]
  EXPECT_THROW(AdaptationController{bad}, InvalidArgument);
}

TEST(AdaptController, SuppressedAttemptResetsStreak) {
  AdaptationController ctl(plain_config());
  ctl.note_progress(1, 1.0, 2.0);  // streak 1
  AdaptRecord rec;
  rec.group_id = 1;
  ctl.note_suppressed(rec);
  // The gate said no: a single new violation must not re-trigger.
  EXPECT_FALSE(ctl.note_progress(1, 1.0, 2.0).migrate);
  EXPECT_TRUE(ctl.note_progress(1, 1.0, 2.0).migrate);
  EXPECT_EQ(ctl.ledger().back().outcome, AdaptOutcomeKind::kSuppressed);
}

TEST(AdaptController, DecisionSequenceIsDeterministic) {
  const auto drive = [](AdaptationController& ctl) {
    std::string log;
    char buf[128];
    const double measured[] = {1.0, 1.4, 2.0, 0.9, 3.0, 3.0, 1.0, 5.0};
    for (double m : measured) {
      const AdaptDecision d = ctl.note_progress(7, 1.0, m);
      std::snprintf(buf, sizeof buf, "%d/%d/%.17g;", d.migrate ? 1 : 0,
                    static_cast<int>(d.signal), d.severity);
      log += buf;
      const AdaptDecision dr = ctl.note_drift(7, m > 2.0 ? 0.6 : 0.0);
      std::snprintf(buf, sizeof buf, "%d/%.17g;", dr.migrate ? 1 : 0,
                    dr.severity);
      log += buf;
    }
    return log;
  };
  AdaptConfig c = plain_config();
  c.ewma_alpha = 0.5;
  AdaptationController a(c);
  AdaptationController b(c);
  EXPECT_EQ(drive(a), drive(b));
  EXPECT_DOUBLE_EQ(a.now_s(), b.now_s());
}

TEST(AdaptController, WriteJsonEmitsLedgerShape) {
  AdaptationController ctl(plain_config());
  ctl.note_progress(1, 1.0, 2.0);
  AdaptRecord rec;
  rec.group_id = 1;
  rec.new_group_id = 2;
  rec.signal = AdaptSignal::kDivergence;
  rec.severity = 1.0;
  rec.predicted_old_s = 2.0;
  rec.predicted_new_s = 0.5;
  rec.old_members = {0, 1};
  rec.new_members = {0, 2};
  ctl.note_migration(rec);

  std::ostringstream open;
  ctl.write_json(open);
  EXPECT_NE(open.str().find("\"adaptations\""), std::string::npos);
  EXPECT_NE(open.str().find("\"outcome\": \"migrated\""), std::string::npos);
  EXPECT_NE(open.str().find("\"signal\": \"divergence\""), std::string::npos);
  EXPECT_NE(open.str().find("\"realized_gain_s\": null"), std::string::npos);
  EXPECT_NE(open.str().find("\"old_members\": [0, 1]"), std::string::npos);

  ctl.note_progress(2, 0.5, 0.4);  // closes the entry
  std::ostringstream closed;
  ctl.write_json(closed);
  EXPECT_EQ(closed.str().find("null"), std::string::npos);

  // An empty ledger is still a valid document.
  ctl.clear();
  std::ostringstream empty;
  ctl.write_json(empty);
  EXPECT_NE(empty.str().find("\"adaptations\": []"), std::string::npos);
}

TEST(AdaptController, ValidatesConfig) {
  const auto with = [](auto mutate) {
    AdaptConfig c = plain_config();
    mutate(c);
    return c;
  };
  EXPECT_THROW(AdaptationController(with([](AdaptConfig& c) { c.threshold = 0.0; })),
               InvalidArgument);
  EXPECT_THROW(AdaptationController(with([](AdaptConfig& c) { c.ewma_alpha = 0.0; })),
               InvalidArgument);
  EXPECT_THROW(AdaptationController(with([](AdaptConfig& c) { c.ewma_alpha = 1.5; })),
               InvalidArgument);
  EXPECT_THROW(AdaptationController(with([](AdaptConfig& c) { c.hysteresis = 0; })),
               InvalidArgument);
  EXPECT_THROW(AdaptationController(with([](AdaptConfig& c) { c.cooldown_s = -1.0; })),
               InvalidArgument);
  EXPECT_THROW(AdaptationController(with([](AdaptConfig& c) { c.retry_backoff = 0.5; })),
               InvalidArgument);
  EXPECT_THROW(AdaptationController(with([](AdaptConfig& c) { c.max_retries = -1; })),
               InvalidArgument);
}

TEST(AdaptConfigEnv, OverridesApplyAndGarbageIsIgnored) {
  AdaptConfig base;
  base.enabled = true;
  base.threshold = 0.25;
  base.cooldown_s = 1.0;

  ::setenv("HMPI_ADAPT", "off", 1);
  EXPECT_FALSE(base.with_env().enabled);
  ::setenv("HMPI_ADAPT", "on", 1);
  EXPECT_TRUE(base.with_env().enabled);
  ::setenv("HMPI_ADAPT", "maybe", 1);
  EXPECT_TRUE(base.with_env().enabled);  // unknown spelling: unchanged
  ::unsetenv("HMPI_ADAPT");

  ::setenv("HMPI_ADAPT_THRESHOLD", "0.5", 1);
  EXPECT_DOUBLE_EQ(base.with_env().threshold, 0.5);
  ::setenv("HMPI_ADAPT_THRESHOLD", "-1", 1);
  EXPECT_DOUBLE_EQ(base.with_env().threshold, 0.25);
  ::setenv("HMPI_ADAPT_THRESHOLD", "abc", 1);
  EXPECT_DOUBLE_EQ(base.with_env().threshold, 0.25);
  ::unsetenv("HMPI_ADAPT_THRESHOLD");

  ::setenv("HMPI_ADAPT_COOLDOWN", "7.5", 1);
  EXPECT_DOUBLE_EQ(base.with_env().cooldown_s, 7.5);
  ::setenv("HMPI_ADAPT_COOLDOWN", "-2", 1);
  EXPECT_DOUBLE_EQ(base.with_env().cooldown_s, 1.0);
  ::unsetenv("HMPI_ADAPT_COOLDOWN");

  EXPECT_FALSE(base.blame);  // default off
  ::setenv("HMPI_ADAPT_BLAME", "on", 1);
  EXPECT_TRUE(base.with_env().blame);
  ::setenv("HMPI_ADAPT_BLAME", "off", 1);
  EXPECT_FALSE(base.with_env().blame);
  ::unsetenv("HMPI_ADAPT_BLAME");
}

// ---------------------------------------------------------------------------
// Runtime integration. Same compute-only model shape as runtime_test.cpp:
// p abstract processors, volumes[a] units each, all in parallel, parent 0.
// ---------------------------------------------------------------------------

Model compute_model() {
  return Model::from_factory(
      "compute", 1, [](std::span<const ParamValue> params) {
        const auto& volumes = std::get<std::vector<long long>>(params[0]);
        InstanceBuilder b("compute");
        const auto p = static_cast<long long>(volumes.size());
        b.shape({p});
        for (int a = 0; a < p; ++a) {
          b.node_volume(a, static_cast<double>(volumes[static_cast<std::size_t>(a)]));
        }
        b.scheme([p](ScheduleSink& s) {
          s.par_begin();
          for (long long a = 0; a < p; ++a) {
            s.par_iter_begin();
            const long long c[1] = {a};
            s.compute(c, 100.0);
          }
          s.par_end();
        });
        return b.build();
      });
}

std::vector<ParamValue> volumes(int p) {
  return {pmdl::array(std::vector<long long>(static_cast<std::size_t>(p), 10))};
}

/// Max of the members' round times on the group's communicator.
double round_max(const Group& group, double elapsed) {
  double out = 0.0;
  group.comm().allreduce(std::span<const double>(&elapsed, 1),
                         std::span<double>(&out, 1),
                         [](double a, double b) { return a > b ? a : b; });
  return out;
}

std::vector<int> sorted(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// What the parent saw during a closed-loop run (copied out under `mutex`).
struct RunLog {
  std::vector<std::string> rounds;   ///< One formatted decision per round.
  std::vector<AdaptRecord> ledger;   ///< Parent controller ledger.
  std::vector<int> final_members;    ///< Sorted members at loop exit.
  bool realized_closed = false;
  double realized_gain_s = 0.0;
};

std::string format_decision(const AdaptDecision& d) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "migrate=%d signal=%d sev=%.17g closed=%d gain=%.17g",
                d.migrate ? 1 : 0, static_cast<int>(d.signal), d.severity,
                d.closed_migration ? 1 : 0, d.realized_gain_s);
  return buf;
}

/// The canonical closed-loop scenario: alpha/beta/gamma selected at speed
/// 100 each; beta's machine drops to 5% at t=0.45 mid-run; the divergence
/// trigger fires after two slow rounds, adapt_recon re-measures the members,
/// and adapt_migrate moves the group onto the idle 90-speed spare. The
/// member loop ends on the round that closes the realized gain.
RunLog run_drifting_scenario(int search_threads, mp::Tracer* tracer = nullptr) {
  hnoc::Cluster cluster =
      hnoc::ClusterBuilder()
          .add("alpha", 100.0)
          .add("beta", 100.0, hnoc::LoadProfile({{0.45, 0.05}}))
          .add("gamma", 100.0)
          .add("delta", 90.0)
          .build();
  RuntimeConfig config;
  config.search_threads = search_threads;
  config.adapt.enabled = true;
  config.adapt.threshold = 0.25;
  config.adapt.ewma_alpha = 1.0;
  config.adapt.hysteresis = 2;
  config.adapt.cooldown_s = 5.0;

  Model model = compute_model();
  const std::vector<ParamValue> params = volumes(3);
  RunLog log;
  std::mutex mutex;

  World::Options options;
  options.tracer = tracer;
  World::run_one_per_processor(
      cluster,
      [&](Proc& p) {
        Runtime rt(p, config);
        while (!rt.adapt_quiesced()) {
          std::optional<Group> group = rt.group_create(model, params);
          if (!group) continue;
          int rounds = 0;
          bool done = false;
          while (group && !done) {
            group->comm().barrier();
            const double start = p.clock();
            p.compute(10.0);
            const double measured = round_max(*group, p.clock() - start);
            const AdaptDecision d = rt.adapt_observe(*group, measured);
            rounds += 1;
            if (rt.is_host()) {
              std::lock_guard<std::mutex> lock(mutex);
              log.rounds.push_back(format_decision(d));
              if (d.closed_migration) {
                log.realized_closed = true;
                log.realized_gain_s = d.realized_gain_s;
              }
            }
            if (d.closed_migration || rounds >= 20) {
              done = true;
            } else if (d.migrate) {
              rt.adapt_recon(*group, [](Proc& q) { q.compute(1.0); });
              Runtime::AdaptMigrateOptions opt;
              opt.trigger = d;
              const Runtime::AdaptOutcome out =
                  rt.adapt_migrate(*group, model, params, opt);
              if (!out.member) group.reset();  // released: back to serving
            }
          }
          if (group) {
            if (rt.is_host()) {
              std::lock_guard<std::mutex> lock(mutex);
              log.final_members = sorted(group->members());
              log.ledger = rt.adapt_ledger();
              rt.adapt_quiesce();
            }
            rt.group_free(*group);
          }
        }
        rt.finalize();
      },
      options);
  return log;
}

TEST(AdaptIntegration, DriftingLoadTriggersGuardedMigration) {
  telemetry::metrics().reset();
  mp::Tracer tracer;
  const RunLog log = run_drifting_scenario(/*search_threads=*/1, &tracer);

  // Four clean rounds, the partial round 5, the fully slow round 6 that
  // triggers, and the single post-migration round that closes the gain.
  ASSERT_EQ(log.rounds.size(), 7u);
  EXPECT_NE(log.rounds[5].find("migrate=1"), std::string::npos);

  ASSERT_EQ(log.ledger.size(), 1u);
  const AdaptRecord& rec = log.ledger[0];
  EXPECT_EQ(rec.outcome, AdaptOutcomeKind::kMigrated);
  EXPECT_EQ(rec.signal, AdaptSignal::kDivergence);
  EXPECT_GT(rec.severity, 0.25);
  EXPECT_NEAR(rec.predicted_old_s, 2.0, 1e-9);    // 10 units at speed 5
  EXPECT_NEAR(rec.predicted_new_s, 10.0 / 90.0, 1e-9);
  EXPECT_EQ(sorted(rec.old_members), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sorted(rec.new_members), (std::vector<int>{0, 2, 3}));
  EXPECT_TRUE(rec.has_realized);
  EXPECT_NEAR(rec.realized_gain_s, 2.0 - 10.0 / 90.0, 1e-6);
  EXPECT_TRUE(log.realized_closed);
  EXPECT_GT(log.realized_gain_s, 1.0);

  // The evacuated machine is out of the final roster.
  EXPECT_EQ(log.final_members, (std::vector<int>{0, 2, 3}));

  const auto snap = telemetry::metrics().snapshot();
  // 7 observed rounds plus the drift check of the one adapt_recon.
  EXPECT_DOUBLE_EQ(snap.counter_value("adapt.checks"), 8.0);
  EXPECT_DOUBLE_EQ(snap.counter_value("adapt.triggers"), 1.0);
  EXPECT_DOUBLE_EQ(snap.counter_value("adapt.migrations"), 1.0);
  EXPECT_DOUBLE_EQ(snap.counter_value("adapt.rollbacks"), 0.0);

  int triggers = 0, migrates = 0, rollbacks = 0;
  for (const mp::TraceEvent& e : tracer.events()) {
    if (e.kind == mp::TraceEvent::Kind::kAdaptTrigger) triggers += 1;
    if (e.kind == mp::TraceEvent::Kind::kAdaptMigrate) migrates += 1;
    if (e.kind == mp::TraceEvent::Kind::kAdaptRollback) rollbacks += 1;
  }
  EXPECT_EQ(triggers, 1);
  EXPECT_EQ(migrates, 1);
  EXPECT_EQ(rollbacks, 0);
}

TEST(AdaptIntegration, StableClusterNeverMigrates) {
  telemetry::metrics().reset();
  hnoc::Cluster cluster = hnoc::ClusterBuilder()
                              .add("a", 100.0)
                              .add("b", 100.0)
                              .add("c", 100.0)
                              .add("spare", 90.0)
                              .build();
  RuntimeConfig config;
  config.adapt.enabled = true;
  config.adapt.threshold = 0.25;
  config.adapt.hysteresis = 2;

  Model model = compute_model();
  const std::vector<ParamValue> params = volumes(3);
  std::mutex mutex;
  std::vector<AdaptRecord> ledger;
  std::vector<int> members;
  bool any_migrate = false;
  int spare_groups = 0;

  mp::Tracer tracer;
  World::Options options;
  options.tracer = &tracer;
  World::run_one_per_processor(
      cluster,
      [&](Proc& p) {
        Runtime rt(p, config);
        while (!rt.adapt_quiesced()) {
          std::optional<Group> group = rt.group_create(model, params);
          if (!group) continue;
          if (rt.world_comm().rank() == 3) {
            std::lock_guard<std::mutex> lock(mutex);
            spare_groups += 1;
          }
          for (int round = 0; round < 8; ++round) {
            group->comm().barrier();
            const double start = p.clock();
            p.compute(10.0);
            const AdaptDecision d =
                rt.adapt_observe(*group, round_max(*group, p.clock() - start));
            if (d.migrate) {
              std::lock_guard<std::mutex> lock(mutex);
              any_migrate = true;
            }
          }
          if (rt.is_host()) {
            std::lock_guard<std::mutex> lock(mutex);
            ledger = rt.adapt_ledger();
            members = sorted(group->members());
            rt.adapt_quiesce();
          }
          rt.group_free(*group);
        }
        rt.finalize();
      },
      options);

  EXPECT_FALSE(any_migrate);
  EXPECT_TRUE(ledger.empty());
  EXPECT_EQ(members, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(spare_groups, 0);  // the spare was never drafted

  const auto snap = telemetry::metrics().snapshot();
  EXPECT_DOUBLE_EQ(snap.counter_value("adapt.checks"), 8.0);
  EXPECT_DOUBLE_EQ(snap.counter_value("adapt.triggers"), 0.0);
  EXPECT_DOUBLE_EQ(snap.counter_value("adapt.migrations"), 0.0);
  for (const mp::TraceEvent& e : tracer.events()) {
    EXPECT_NE(e.kind, mp::TraceEvent::Kind::kAdaptTrigger);
    EXPECT_NE(e.kind, mp::TraceEvent::Kind::kAdaptMigrate);
    EXPECT_NE(e.kind, mp::TraceEvent::Kind::kAdaptRollback);
  }
}

TEST(AdaptIntegration, DecisionSequenceIdenticalAcrossSearchThreads) {
  const RunLog one = run_drifting_scenario(1);
  const RunLog two = run_drifting_scenario(2);
  const RunLog eight = run_drifting_scenario(8);

  EXPECT_EQ(one.rounds, two.rounds);
  EXPECT_EQ(one.rounds, eight.rounds);
  EXPECT_EQ(one.final_members, two.final_members);
  EXPECT_EQ(one.final_members, eight.final_members);

  const auto summarize = [](const RunLog& log) {
    std::string out;
    char buf[256];
    for (const AdaptRecord& r : log.ledger) {
      std::snprintf(buf, sizeof buf, "%lld->%lld %d %d %.17g %.17g %.17g %.17g;",
                    r.group_id, r.new_group_id, static_cast<int>(r.signal),
                    static_cast<int>(r.outcome), r.severity, r.predicted_old_s,
                    r.predicted_new_s, r.realized_gain_s);
      out += buf;
    }
    return out;
  };
  EXPECT_EQ(summarize(one), summarize(two));
  EXPECT_EQ(summarize(one), summarize(eight));
}

/// Ping-pong regression: beta's machine collapses mid-run, the group
/// migrates off it, and the machine then RECOVERS. With a cooldown, the next
/// selection must not draft it straight back; with cooldown 0 (the control)
/// it does — proving the cooldown is what breaks the ping-pong cycle.
bool run_pingpong_scenario(double cooldown_s, std::vector<int>* second_members) {
  hnoc::Cluster cluster =
      hnoc::ClusterBuilder()
          .add("alpha", 100.0)
          .add("beta", 150.0, hnoc::LoadProfile({{0.05, 0.02}, {5.0, 1.0}}))
          .add("gamma", 100.0)
          .add("delta", 95.0)
          .build();
  RuntimeConfig config;
  config.adapt.enabled = true;
  config.adapt.threshold = 0.25;
  config.adapt.ewma_alpha = 1.0;
  config.adapt.hysteresis = 2;
  config.adapt.cooldown_s = cooldown_s;

  Model model = compute_model();
  const std::vector<ParamValue> params = volumes(3);
  std::mutex mutex;
  bool beta_in_second = false;
  second_members->clear();

  World::run_one_per_processor(cluster, [&](Proc& p) {
    Runtime rt(p, config);
    const int wr = rt.world_comm().rank();

    // Phase 1: initial group from base speeds {100, 150, 100, 95} ->
    // {alpha, beta, gamma}. The spare immediately re-enters the rendezvous
    // and is drafted by the migration.
    std::optional<Group> group = rt.group_create(model, params);
    if (wr == 3) {
      EXPECT_FALSE(group.has_value());
      group = rt.group_create(model, params);  // joins the migration
      EXPECT_TRUE(group.has_value());
    } else {
      EXPECT_TRUE(group.has_value());
      // Two rounds on the collapsed machine trip the divergence trigger.
      AdaptDecision d;
      for (int round = 0; round < 2; ++round) {
        group->comm().barrier();
        const double start = p.clock();
        p.compute(10.0);
        d = rt.adapt_observe(*group, round_max(*group, p.clock() - start));
      }
      EXPECT_TRUE(d.migrate);
      rt.adapt_recon(*group, [](Proc& q) { q.compute(1.0); });
      Runtime::AdaptMigrateOptions opt;
      opt.trigger = d;
      const Runtime::AdaptOutcome out = rt.adapt_migrate(*group, model, params, opt);
      EXPECT_TRUE(out.migrated);
      if (wr == 1) {
        EXPECT_FALSE(out.member);  // beta evacuated
        group.reset();
      } else {
        EXPECT_TRUE(out.member);
      }
    }
    if (group) {
      EXPECT_EQ(sorted(group->members()), (std::vector<int>{0, 2, 3}));
      rt.group_free(*group);
      group.reset();
    } else {
      // Evacuated beta: run its clock past the t=5 recovery point.
      p.compute(30.0);
    }

    // Phase 2: beta has recovered; a fresh world recon proves it (measured
    // speed 150 again). Does the next selection draft it back?
    rt.world_comm().barrier();
    rt.recon([](Proc& q) { q.compute(1.0); });
    std::optional<Group> second = rt.group_create(model, params);
    if (wr == 1) {
      std::lock_guard<std::mutex> lock(mutex);
      beta_in_second = second.has_value();
    }
    if (second) {
      if (rt.is_host()) {
        std::lock_guard<std::mutex> lock(mutex);
        *second_members = sorted(second->members());
      }
      rt.group_free(*second);
    }
    rt.finalize();
  });
  return beta_in_second;
}

TEST(AdaptIntegration, DraftCooldownPreventsPingPong) {
  std::vector<int> with_cooldown, without_cooldown;
  // Control first: with no cooldown the recovered machine (fastest in the
  // cluster) bounces straight back into the roster.
  EXPECT_TRUE(run_pingpong_scenario(0.0, &without_cooldown));
  EXPECT_EQ(without_cooldown, (std::vector<int>{0, 1, 2}));
  // With a cooldown the evacuated machine stays barred despite being fast.
  EXPECT_FALSE(run_pingpong_scenario(100.0, &with_cooldown));
  EXPECT_EQ(with_cooldown, (std::vector<int>{0, 2, 3}));
}

TEST(AdaptIntegration, ForcedBadMigrationRollsBackAndArmsBackoff) {
  telemetry::metrics().reset();
  hnoc::Cluster cluster = hnoc::ClusterBuilder()
                              .add("a", 100.0)
                              .add("b", 100.0)
                              .add("c", 100.0)
                              .add("slow", 1.0)
                              .build();
  RuntimeConfig config;
  config.adapt.enabled = true;
  config.adapt.threshold = 0.25;
  config.adapt.ewma_alpha = 1.0;
  config.adapt.hysteresis = 1;
  config.adapt.cooldown_s = 5.0;
  config.adapt.retry_backoff = 2.0;

  Model model = compute_model();
  const std::vector<ParamValue> params = volumes(3);
  std::mutex mutex;
  std::vector<AdaptRecord> ledger;
  bool slow_drafted_durably = false;
  int suppressed_after_rollback = 0;

  mp::Tracer tracer;
  World::Options options;
  options.tracer = &tracer;
  World::run_one_per_processor(
      cluster,
      [&](Proc& p) {
        Runtime rt(p, config);
        const int wr = rt.world_comm().rank();
        if (wr == 3) {
          // The slow spare serves the rendezvous. The bad migration drafts
          // it, the rollback guard evicts it, and its group_create returns
          // empty-handed — it must never durably hold a group.
          while (!rt.adapt_quiesced()) {
            std::optional<Group> g = rt.group_create(model, params);
            if (g) {
              std::lock_guard<std::mutex> lock(mutex);
              slow_drafted_durably = true;
            }
          }
        } else {
          std::optional<Group> group = rt.group_create(model, params);
          EXPECT_TRUE(group.has_value());
          const long long old_id = group->id();

          // Force a roster that prices 100x worse: abstract 2 lands on the
          // speed-1 machine. The gate is bypassed; the guard is not.
          const std::vector<int> bad_roster{0, 1, 3};
          Runtime::AdaptMigrateOptions opt;
          opt.force_roster = &bad_roster;
          opt.trigger.migrate = true;
          opt.trigger.signal = AdaptSignal::kDivergence;
          opt.trigger.severity = 1.0;
          const Runtime::AdaptOutcome out =
              rt.adapt_migrate(*group, model, params, opt);
          EXPECT_TRUE(out.rolled_back);
          EXPECT_FALSE(out.migrated);
          EXPECT_TRUE(out.member);  // everyone is back on the old roster
          EXPECT_TRUE(group.has_value());
          EXPECT_EQ(sorted(group->members()), (std::vector<int>{0, 1, 2}));
          EXPECT_NE(group->id(), old_id);  // restored group, fresh id

          // Backoff: gross violations right after the rollback must be
          // suppressed by the (doubled) cooldown window.
          for (int round = 0; round < 2; ++round) {
            group->comm().barrier();
            p.compute(10.0);
            const AdaptDecision d = rt.adapt_observe(*group, 4.0);
            if (rt.is_host() && d.severity > config.adapt.threshold &&
                !d.migrate) {
              std::lock_guard<std::mutex> lock(mutex);
              suppressed_after_rollback += 1;
            }
            EXPECT_FALSE(d.migrate);
          }
          if (rt.is_host()) {
            std::lock_guard<std::mutex> lock(mutex);
            ledger = rt.adapt_ledger();
            rt.adapt_quiesce();
          }
          rt.group_free(*group);
        }
        rt.finalize();
      },
      options);

  EXPECT_FALSE(slow_drafted_durably);
  EXPECT_EQ(suppressed_after_rollback, 2);
  ASSERT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger[0].outcome, AdaptOutcomeKind::kRolledBack);
  EXPECT_NEAR(ledger[0].predicted_old_s, 0.1, 1e-9);
  EXPECT_EQ(sorted(ledger[0].new_members), (std::vector<int>{0, 1, 2}));

  const auto snap = telemetry::metrics().snapshot();
  EXPECT_DOUBLE_EQ(snap.counter_value("adapt.rollbacks"), 1.0);
  EXPECT_DOUBLE_EQ(snap.counter_value("adapt.migrations"), 0.0);
  bool rollback_event = false;
  for (const mp::TraceEvent& e : tracer.events()) {
    if (e.kind == mp::TraceEvent::Kind::kAdaptRollback) rollback_event = true;
  }
  EXPECT_TRUE(rollback_event);
}

/// One fixed workload used by the bit-identity runs below: a group on a
/// drifting cluster doing three measured rounds. `call_observe` switches the
/// adapt_observe calls on; with adaptation disabled they must not change the
/// trace by a single event.
std::string run_disabled_trace(const RuntimeConfig& config, bool call_observe,
                               bool expect_enabled) {
  hnoc::Cluster cluster =
      hnoc::ClusterBuilder()
          .add("alpha", 100.0)
          .add("beta", 100.0, hnoc::LoadProfile({{0.2, 0.1}}))
          .add("gamma", 80.0)
          .build();
  Model model = compute_model();
  const std::vector<ParamValue> params = volumes(2);
  mp::Tracer tracer;
  World::Options options;
  options.tracer = &tracer;
  World::run_one_per_processor(
      cluster,
      [&](Proc& p) {
        Runtime rt(p, config);
        EXPECT_EQ(rt.adapt_enabled(), expect_enabled);
        std::optional<Group> group = rt.group_create(model, params);
        if (group) {
          for (int round = 0; round < 3; ++round) {
            group->comm().barrier();
            const double start = p.clock();
            p.compute(10.0);
            const double measured = round_max(*group, p.clock() - start);
            if (call_observe) {
              const AdaptDecision d = rt.adapt_observe(*group, measured);
              EXPECT_FALSE(d.migrate);
              EXPECT_DOUBLE_EQ(d.severity, 0.0);
            }
          }
          rt.group_free(*group);
        }
        rt.finalize();
      },
      options);
  std::ostringstream csv;
  tracer.write_csv(csv);
  // The est_compile / mapper_search diagnostics carry WALL-clock seconds in
  // the units column — run-to-run noise with no virtual-time meaning. Scrub
  // it; every other column (and every other event) must match bit-for-bit.
  std::istringstream lines(csv.str());
  std::string out, line;
  while (std::getline(lines, line)) {
    if (line.rfind("est_compile,", 0) == 0 || line.rfind("mapper_search,", 0) == 0) {
      std::vector<std::string> fields;
      std::string field;
      std::istringstream split(line);
      while (std::getline(split, field, ',')) fields.push_back(field);
      if (fields.size() > 7) fields[7] = "W";
      line.clear();
      for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) line += ',';
        line += fields[i];
      }
    }
    out += line;
    out += '\n';
  }
  return out;
}

TEST(AdaptIntegration, DisabledAdaptIsTraceBitIdentical) {
  RuntimeConfig off;  // adapt.enabled defaults to false
  const std::string with_calls = run_disabled_trace(off, true, false);
  const std::string without_calls = run_disabled_trace(off, false, false);
  EXPECT_EQ(with_calls, without_calls);

  // HMPI_ADAPT=off neutralizes an enabled config the same way.
  RuntimeConfig on;
  on.adapt.enabled = true;
  ::setenv("HMPI_ADAPT", "off", 1);
  const std::string env_off = run_disabled_trace(on, true, false);
  ::unsetenv("HMPI_ADAPT");
  EXPECT_EQ(env_off, with_calls);
}

TEST(AdaptIntegration, QuiesceReleasesServeLoop) {
  hnoc::Cluster cluster =
      hnoc::ClusterBuilder().add("host", 100.0).add("spare", 90.0).build();
  RuntimeConfig config;
  config.adapt.enabled = true;
  Model model = compute_model();
  const std::vector<ParamValue> params = volumes(1);
  std::mutex mutex;
  int spare_iterations = 0;
  bool spare_selected = false;

  World::run_one_per_processor(cluster, [&](Proc& p) {
    Runtime rt(p, config);
    if (rt.is_host()) {
      std::optional<Group> group = rt.group_create(model, params);
      EXPECT_TRUE(group.has_value());
      EXPECT_EQ(group->size(), 1);
      rt.adapt_quiesce();
      rt.group_free(*group);
    } else {
      while (!rt.adapt_quiesced()) {
        std::optional<Group> g = rt.group_create(model, params);
        std::lock_guard<std::mutex> lock(mutex);
        spare_iterations += 1;
        spare_selected = spare_selected || g.has_value();
      }
    }
    EXPECT_TRUE(rt.adapt_quiesced());
    rt.finalize();
  });
  EXPECT_FALSE(spare_selected);
  // 0 when the host quiesces before the spare reaches its first check; at
  // most one nullopt from the host's creation plus one from the quiesce.
  EXPECT_LE(spare_iterations, 2);
}

TEST(AdaptIntegration, GroupMigrateMovesOntoRecoveredMachine) {
  // m2 is 10x degraded until t=1 and measures at 20; after it recovers, a
  // fresh recon and a voluntary group_migrate move the second slot from m1
  // (speed 100) onto m2 (speed 200), with the handoff hook telling every
  // old member where the state goes.
  hnoc::Cluster cluster =
      hnoc::ClusterBuilder()
          .add("m0", 100.0)
          .add("m1", 100.0)
          .add("m2", 200.0, hnoc::LoadProfile({{0.0, 0.1}, {1.0, 1.0}}))
          .build();
  Model model = compute_model();
  const std::vector<ParamValue> params = volumes(2);
  std::mutex mutex;
  std::vector<std::pair<int, std::vector<int>>> handoffs;
  std::vector<int> new_members;
  bool m1_kept = true;

  World::run_one_per_processor(cluster, [&](Proc& p) {
    Runtime rt(p, RuntimeConfig());  // group_migrate needs no adapt policy
    const int wr = rt.world_comm().rank();
    rt.recon([](Proc& q) { q.compute(1.0); });  // m2 measures ~20

    std::optional<Group> group = rt.group_create(model, params);
    if (wr == 2) {
      EXPECT_FALSE(group.has_value());
      p.compute(30.0);  // ride out the degraded window (past t=1)
    } else {
      EXPECT_TRUE(group.has_value());
      p.compute(150.0);  // the old roster works until t>1
    }
    rt.recon([](Proc& q) { q.compute(1.0); });  // m2 now measures ~200

    if (wr == 2) {
      group = rt.group_create(model, params);  // drafted by the migration
      EXPECT_TRUE(group.has_value());
    } else {
      const long long old_id = group->id();
      group = rt.group_migrate(
          *group, model, params,
          [&](int old_rank, const std::vector<int>& members) {
            std::lock_guard<std::mutex> lock(mutex);
            handoffs.emplace_back(old_rank, members);
          });
      if (wr == 1) {
        EXPECT_FALSE(group.has_value());
        std::lock_guard<std::mutex> lock(mutex);
        m1_kept = false;
      } else {
        EXPECT_TRUE(group.has_value());
        EXPECT_NE(group->id(), old_id);
      }
    }
    if (group) {
      if (rt.is_host()) {
        std::lock_guard<std::mutex> lock(mutex);
        new_members = sorted(group->members());
      }
      rt.group_free(*group);
    }
    rt.finalize();
  });

  EXPECT_FALSE(m1_kept);
  EXPECT_EQ(new_members, (std::vector<int>{0, 2}));
  // Both old members (group ranks 0 and 1) saw the handoff, pointing at the
  // new roster.
  ASSERT_EQ(handoffs.size(), 2u);
  std::sort(handoffs.begin(), handoffs.end());
  EXPECT_EQ(handoffs[0].first, 0);
  EXPECT_EQ(handoffs[1].first, 1);
  EXPECT_EQ(sorted(handoffs[0].second), (std::vector<int>{0, 2}));
  EXPECT_EQ(sorted(handoffs[1].second), (std::vector<int>{0, 2}));
}

}  // namespace
}  // namespace hmpi
