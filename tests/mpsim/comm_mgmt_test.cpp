#include <gtest/gtest.h>

#include <vector>

#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"

namespace hmpi::mp {
namespace {

hnoc::Cluster uniform(int n) { return hnoc::testbeds::homogeneous(n, 100.0); }

TEST(CommMgmt, WorldCommCoversAllRanks) {
  World::run_one_per_processor(uniform(4), [](Proc& p) {
    Comm comm = p.world_comm();
    EXPECT_TRUE(comm.valid());
    EXPECT_EQ(comm.size(), 4);
    EXPECT_EQ(comm.rank(), p.rank());
    EXPECT_EQ(comm.context(), 0);
    ASSERT_EQ(comm.group().size(), 4u);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(comm.world_rank_of(i), i);
      EXPECT_EQ(comm.rank_of_world(i), i);
    }
  });
}

TEST(CommMgmt, SplitByParity) {
  World::run_one_per_processor(uniform(6), [](Proc& p) {
    Comm world = p.world_comm();
    Comm sub = world.split(p.rank() % 2, p.rank());
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), p.rank() / 2);
    EXPECT_EQ(sub.world_rank_of(sub.rank()), p.rank());
    // The subcommunicator works: sum ranks within my parity class.
    int in = p.rank();
    int out = 0;
    sub.allreduce(std::span<const int>(&in, 1), std::span<int>(&out, 1),
                  [](int a, int b) { return a + b; });
    EXPECT_EQ(out, p.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
  });
}

TEST(CommMgmt, SplitKeyOrdersRanks) {
  World::run_one_per_processor(uniform(4), [](Proc& p) {
    Comm world = p.world_comm();
    // Reverse the order via descending keys.
    Comm sub = world.split(0, -p.rank());
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.rank(), 3 - p.rank());
  });
}

TEST(CommMgmt, SplitUndefinedColorYieldsInvalid) {
  World::run_one_per_processor(uniform(3), [](Proc& p) {
    Comm world = p.world_comm();
    Comm sub = world.split(p.rank() == 1 ? kUndefinedColor : 0, 0);
    if (p.rank() == 1) {
      EXPECT_FALSE(sub.valid());
    } else {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 2);
    }
  });
}

TEST(CommMgmt, SplitOfSplit) {
  World::run_one_per_processor(uniform(8), [](Proc& p) {
    Comm half = p.world_comm().split(p.rank() / 4, p.rank());
    ASSERT_EQ(half.size(), 4);
    Comm quarter = half.split(half.rank() / 2, half.rank());
    ASSERT_EQ(quarter.size(), 2);
    int in = 1, out = 0;
    quarter.allreduce(std::span<const int>(&in, 1), std::span<int>(&out, 1),
                      [](int a, int b) { return a + b; });
    EXPECT_EQ(out, 2);
  });
}

TEST(CommMgmt, DupIsIndependentContext) {
  World::run_one_per_processor(uniform(3), [](Proc& p) {
    Comm world = p.world_comm();
    Comm copy = world.dup();
    ASSERT_TRUE(copy.valid());
    EXPECT_EQ(copy.size(), world.size());
    EXPECT_EQ(copy.rank(), world.rank());
    EXPECT_NE(copy.context(), world.context());
    // Messages on the dup are invisible to the original context: receive on
    // the dup while an identically tagged message is pending on world.
    if (p.rank() == 0) {
      world.send_value(1, 1, 0);
      copy.send_value(2, 1, 0);
    } else if (p.rank() == 1) {
      EXPECT_EQ(copy.recv_value<int>(0, 0), 2);
      EXPECT_EQ(world.recv_value<int>(0, 0), 1);
    }
  });
}

TEST(CommMgmt, CreateSubcommOverSubset) {
  World::run_one_per_processor(uniform(5), [](Proc& p) {
    std::vector<int> members{1, 3, 4};
    const bool mine =
        std::find(members.begin(), members.end(), p.rank()) != members.end();
    if (!mine) return;  // non-members do not participate at all
    Comm sub = Comm::create_subcomm(p, members);
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 3);
    const int expected_rank = p.rank() == 1 ? 0 : (p.rank() == 3 ? 1 : 2);
    EXPECT_EQ(sub.rank(), expected_rank);
    int in = p.rank(), out = 0;
    sub.allreduce(std::span<const int>(&in, 1), std::span<int>(&out, 1),
                  [](int a, int b) { return a + b; });
    EXPECT_EQ(out, 8);
  });
}

TEST(CommMgmt, CreateSubcommRequiresMembership) {
  World::Options o;
  o.deadlock_timeout_s = 1.0;
  EXPECT_THROW(World::run_one_per_processor(
                   uniform(3),
                   [](Proc& p) {
                     if (p.rank() == 0) {
                       Comm::create_subcomm(p, {1, 2});  // caller not listed
                     }
                   },
                   o),
               hmpi::InvalidArgument);
}

TEST(CommMgmt, CreateSubcommRejectsDuplicates) {
  World::Options o;
  o.deadlock_timeout_s = 1.0;
  EXPECT_THROW(World::run_one_per_processor(
                   uniform(3),
                   [](Proc& p) {
                     if (p.rank() == 0) Comm::create_subcomm(p, {0, 2, 0});
                   },
                   o),
               hmpi::InvalidArgument);
}

TEST(CommMgmt, CreateSubcommRespectsListOrder) {
  // The list order defines the new ranks (HMPI orders group members by
  // abstract processor, not by world rank).
  World::run_one_per_processor(uniform(4), [](Proc& p) {
    std::vector<int> members{3, 1, 2};
    if (p.rank() == 0) return;
    Comm sub = Comm::create_subcomm(p, members);
    const int expected = p.rank() == 3 ? 0 : (p.rank() == 1 ? 1 : 2);
    EXPECT_EQ(sub.rank(), expected);
    EXPECT_EQ(sub.world_rank_of(0), 3);
    // The reordered communicator must be fully functional.
    int in = p.rank(), out = 0;
    sub.allreduce(std::span<const int>(&in, 1), std::span<int>(&out, 1),
                  [](int a, int b) { return a + b; });
    EXPECT_EQ(out, 6);
  });
}

TEST(CommMgmt, ConcurrentDisjointSubcomms) {
  World::run_one_per_processor(uniform(6), [](Proc& p) {
    std::vector<int> members =
        p.rank() < 3 ? std::vector<int>{0, 1, 2} : std::vector<int>{3, 4, 5};
    Comm sub = Comm::create_subcomm(p, members);
    int in = 1, out = 0;
    sub.allreduce(std::span<const int>(&in, 1), std::span<int>(&out, 1),
                  [](int a, int b) { return a + b; });
    EXPECT_EQ(out, 3);
  });
}

TEST(CommMgmt, InvalidCommRejectsOperations) {
  World::run_one_per_processor(uniform(1), [](Proc&) {
    Comm invalid;
    EXPECT_FALSE(invalid.valid());
    EXPECT_THROW(invalid.barrier(), hmpi::InvalidArgument);
    int v = 0;
    EXPECT_THROW(invalid.bcast_value(v, 0), hmpi::InvalidArgument);
  });
}

TEST(CommMgmt, ContextsAreUniquePerCreation) {
  World::run_one_per_processor(uniform(2), [](Proc& p) {
    Comm a = p.world_comm().dup();
    Comm b = p.world_comm().dup();
    Comm c = p.world_comm().split(0, 0);
    EXPECT_NE(a.context(), b.context());
    EXPECT_NE(a.context(), c.context());
    EXPECT_NE(b.context(), c.context());
  });
}

}  // namespace
}  // namespace hmpi::mp
