// Tests of the virtual-time accounting model: computation speed scaling,
// transfer costs, link serialisation, determinism, heterogeneity effects.
#include <gtest/gtest.h>

#include <vector>

#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"

namespace hmpi::mp {
namespace {

World::Options zero_overhead() {
  World::Options o;
  o.send_overhead_s = 0.0;
  o.recv_overhead_s = 0.0;
  return o;
}

TEST(VirtualTime, ComputeScalesWithSpeed) {
  hnoc::Cluster c = hnoc::ClusterBuilder().add("fast", 100.0).add("slow", 10.0).build();
  auto result = World::run_one_per_processor(c, [](Proc& p) { p.compute(100.0); });
  EXPECT_DOUBLE_EQ(result.clocks[0], 1.0);
  EXPECT_DOUBLE_EQ(result.clocks[1], 10.0);
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);
}

TEST(VirtualTime, ComputeAccumulates) {
  hnoc::Cluster c = hnoc::testbeds::homogeneous(1, 10.0);
  auto result = World::run_one_per_processor(c, [](Proc& p) {
    p.compute(5.0);
    p.compute(5.0);
    EXPECT_DOUBLE_EQ(p.clock(), 1.0);
    EXPECT_DOUBLE_EQ(p.stats().compute_units, 10.0);
    EXPECT_DOUBLE_EQ(p.stats().compute_time, 1.0);
  });
  EXPECT_DOUBLE_EQ(result.clocks[0], 1.0);
}

TEST(VirtualTime, LoadProfileSlowsComputation) {
  hnoc::Cluster c = hnoc::ClusterBuilder()
                        .add("m", 10.0, hnoc::LoadProfile({{0.5, 0.5}}))
                        .build();
  // 10 units: 0.5 s at 10 u/s (5 units), then 5 units at 5 u/s (1 s) -> 1.5 s.
  auto result = World::run_one_per_processor(c, [](Proc& p) { p.compute(10.0); });
  EXPECT_DOUBLE_EQ(result.clocks[0], 1.5);
}

TEST(VirtualTime, TransferCostLatencyPlusBandwidth) {
  hnoc::Cluster c = hnoc::ClusterBuilder()
                        .add("a", 100.0)
                        .add("b", 100.0)
                        .network(0.001, 1e6)  // 1 ms + bytes/1MBps
                        .build();
  auto result = World::run_one_per_processor(
      c,
      [](Proc& p) {
        Comm comm = p.world_comm();
        std::vector<std::byte> buf(1000000);
        if (p.rank() == 0) {
          comm.send_bytes(buf, 1, 0);
        } else {
          comm.recv_bytes(buf, 0, 0);
        }
      },
      zero_overhead());
  // Receiver: 0.001 + 1e6/1e6 = 1.001 s; sender pays nothing (buffered).
  EXPECT_DOUBLE_EQ(result.clocks[1], 1.001);
  EXPECT_DOUBLE_EQ(result.clocks[0], 0.0);
}

TEST(VirtualTime, IntraMachineUsesSharedMemoryLink) {
  hnoc::Cluster c = hnoc::ClusterBuilder()
                        .add("a", 100.0)
                        .network(0.001, 1e6)
                        .shared_memory(1e-6, 1e9)
                        .build();
  auto result = World::run(
      c, {0, 0},
      [](Proc& p) {
        Comm comm = p.world_comm();
        std::vector<std::byte> buf(1000000);
        if (p.rank() == 0) {
          comm.send_bytes(buf, 1, 0);
        } else {
          comm.recv_bytes(buf, 0, 0);
        }
      },
      zero_overhead());
  // 1 us + 1e6/1e9 = 1.001 ms, far below the 1.001 s Ethernet figure.
  EXPECT_NEAR(result.clocks[1], 0.001001, 1e-9);
}

TEST(VirtualTime, LinkSerialisesSuccessiveTransfers) {
  hnoc::Cluster c = hnoc::ClusterBuilder()
                        .add("a", 100.0)
                        .add("b", 100.0)
                        .network(0.0, 1e6)
                        .build();
  auto result = World::run_one_per_processor(
      c,
      [](Proc& p) {
        Comm comm = p.world_comm();
        std::vector<std::byte> buf(500000);  // 0.5 s each on the wire
        if (p.rank() == 0) {
          comm.send_bytes(buf, 1, 0);
          comm.send_bytes(buf, 1, 0);  // sender is free immediately, but the
                                       // link carries them back-to-back
        } else {
          comm.recv_bytes(buf, 0, 0);
          EXPECT_DOUBLE_EQ(p.clock(), 0.5);
          comm.recv_bytes(buf, 0, 0);
          EXPECT_DOUBLE_EQ(p.clock(), 1.0);
        }
      },
      zero_overhead());
  EXPECT_DOUBLE_EQ(result.clocks[1], 1.0);
}

TEST(VirtualTime, DistinctLinksRunInParallel) {
  // A switched network: transfers 0->2 and 1->2 share only the destination;
  // our model serialises per directed (src,dst) pair, so they overlap.
  hnoc::Cluster c = hnoc::ClusterBuilder()
                        .add("a", 100.0)
                        .add("b", 100.0)
                        .add("dst", 100.0)
                        .network(0.0, 1e6)
                        .build();
  auto result = World::run_one_per_processor(
      c,
      [](Proc& p) {
        Comm comm = p.world_comm();
        std::vector<std::byte> buf(1000000);  // 1 s on the wire
        if (p.rank() < 2) {
          comm.send_bytes(buf, 2, 0);
        } else {
          comm.recv_bytes(buf, 0, 0);
          comm.recv_bytes(buf, 1, 0);
        }
      },
      zero_overhead());
  // Both arrive at t=1; the receiver finishes at 1, not 2.
  EXPECT_DOUBLE_EQ(result.clocks[2], 1.0);
}

TEST(VirtualTime, ReceiverWaitsForArrival) {
  hnoc::Cluster c = hnoc::ClusterBuilder()
                        .add("slow", 1.0)
                        .add("fast", 1000.0)
                        .network(0.0, 1e9)
                        .build();
  auto result = World::run_one_per_processor(
      c,
      [](Proc& p) {
        Comm comm = p.world_comm();
        if (p.rank() == 0) {
          p.compute(10.0);  // 10 s
          comm.send_value(1, 1, 0);
        } else {
          comm.recv_value<int>(0, 0);
          EXPECT_GE(p.clock(), 10.0);
          EXPECT_GE(p.stats().wait_time, 10.0 - 1e-9);
        }
      },
      zero_overhead());
  EXPECT_GE(result.clocks[1], 10.0);
}

TEST(VirtualTime, LateReceiverDoesNotWait) {
  hnoc::Cluster c = hnoc::testbeds::homogeneous(2, 1.0);
  World::run_one_per_processor(
      c,
      [](Proc& p) {
        Comm comm = p.world_comm();
        if (p.rank() == 0) {
          comm.send_value(1, 1, 0);
        } else {
          p.compute(100.0);  // 100 s; message arrived long ago
          const double before = p.clock();
          comm.recv_value<int>(0, 0);
          EXPECT_DOUBLE_EQ(p.clock(), before);
          EXPECT_DOUBLE_EQ(p.stats().wait_time, 0.0);
        }
      },
      zero_overhead());
}

TEST(VirtualTime, DeterministicAcrossRuns) {
  // Virtual results must be identical run to run despite real threading.
  auto run_once = [] {
    hnoc::Cluster c = hnoc::testbeds::paper_em3d_network();
    auto result = World::run_one_per_processor(c, [](Proc& p) {
      Comm comm = p.world_comm();
      p.compute(10.0 * (p.rank() + 1));
      comm.barrier();
      std::vector<double> all(static_cast<std::size_t>(p.nprocs()));
      double mine = p.clock();
      comm.allgather(std::span<const double>(&mine, 1), std::span<double>(all));
      p.compute(5.0);
    });
    return result.clocks;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(VirtualTime, SendOverheadCharged) {
  hnoc::Cluster c = hnoc::testbeds::homogeneous(2, 1.0);
  World::Options o;
  o.send_overhead_s = 0.25;
  o.recv_overhead_s = 0.0;
  auto result = World::run_one_per_processor(
      c,
      [](Proc& p) {
        Comm comm = p.world_comm();
        if (p.rank() == 0) {
          comm.send_value(1, 1, 0);
          comm.send_value(1, 1, 0);
        } else {
          comm.recv_value<int>(0, 0);
          comm.recv_value<int>(0, 0);
        }
      },
      o);
  EXPECT_DOUBLE_EQ(result.clocks[0], 0.5);
}

TEST(VirtualTime, ElapseAdvancesClock) {
  hnoc::Cluster c = hnoc::testbeds::homogeneous(1);
  auto result = World::run_one_per_processor(c, [](Proc& p) {
    p.elapse(2.5);
    EXPECT_THROW(p.elapse(-1.0), hmpi::InvalidArgument);
  });
  EXPECT_DOUBLE_EQ(result.clocks[0], 2.5);
}

TEST(VirtualTime, HeterogeneousBarrierBoundByslowest) {
  hnoc::Cluster c = hnoc::testbeds::paper_em3d_network();
  auto result = World::run_one_per_processor(c, [](Proc& p) {
    p.compute(90.0);  // 90/9 = 10 s on the slowest machine
    p.world_comm().barrier();
  });
  for (double clock : result.clocks) EXPECT_GE(clock, 10.0);
}

TEST(VirtualTime, PlacementControlsSpeed) {
  hnoc::Cluster c = hnoc::ClusterBuilder().add("fast", 100.0).add("slow", 10.0).build();
  // Both processes on the fast machine.
  auto result = World::run(c, {0, 0}, [](Proc& p) { p.compute(100.0); });
  EXPECT_DOUBLE_EQ(result.clocks[0], 1.0);
  EXPECT_DOUBLE_EQ(result.clocks[1], 1.0);
}

TEST(VirtualTime, PlacementValidated) {
  hnoc::Cluster c = hnoc::testbeds::homogeneous(2);
  EXPECT_THROW(World::run(c, {0, 5}, [](Proc&) {}), hmpi::InvalidArgument);
  EXPECT_THROW(World::run(c, {}, [](Proc&) {}), hmpi::InvalidArgument);
}

}  // namespace
}  // namespace hmpi::mp
