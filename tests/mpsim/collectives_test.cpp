#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"

namespace hmpi::mp {
namespace {

hnoc::Cluster uniform(int n) { return hnoc::testbeds::homogeneous(n, 100.0); }

// Collective correctness is checked for several communicator sizes,
// including non-powers of two, via parameterized tests.
class CollectivesP : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesP, BcastDeliversFromEveryRoot) {
  const int n = GetParam();
  World::run_one_per_processor(uniform(n), [n](Proc& p) {
    Comm comm = p.world_comm();
    for (int root = 0; root < n; ++root) {
      std::vector<int> data(4, p.rank() == root ? root * 100 + 7 : -1);
      comm.bcast(std::span<int>(data), root);
      for (int v : data) EXPECT_EQ(v, root * 100 + 7);
    }
  });
}

TEST_P(CollectivesP, ReduceSumsAtRoot) {
  const int n = GetParam();
  World::run_one_per_processor(uniform(n), [n](Proc& p) {
    Comm comm = p.world_comm();
    for (int root = 0; root < n; ++root) {
      std::vector<long> in{static_cast<long>(p.rank()), 1};
      std::vector<long> out(2, -1);
      comm.reduce(std::span<const long>(in), std::span<long>(out),
                  [](long a, long b) { return a + b; }, root);
      if (p.rank() == root) {
        EXPECT_EQ(out[0], static_cast<long>(n) * (n - 1) / 2);
        EXPECT_EQ(out[1], n);
      }
    }
  });
}

TEST_P(CollectivesP, AllreduceMax) {
  const int n = GetParam();
  World::run_one_per_processor(uniform(n), [n](Proc& p) {
    Comm comm = p.world_comm();
    double in = static_cast<double>(p.rank());
    double out = -1;
    comm.allreduce(std::span<const double>(&in, 1), std::span<double>(&out, 1),
                   [](double a, double b) { return a > b ? a : b; });
    EXPECT_DOUBLE_EQ(out, n - 1);
  });
}

TEST_P(CollectivesP, GatherCollectsInRankOrder) {
  const int n = GetParam();
  World::run_one_per_processor(uniform(n), [n](Proc& p) {
    Comm comm = p.world_comm();
    std::vector<int> mine{p.rank() * 2, p.rank() * 2 + 1};
    std::vector<int> all(static_cast<std::size_t>(2 * n), -1);
    comm.gather(std::span<const int>(mine), std::span<int>(all), 0);
    if (p.rank() == 0) {
      for (int i = 0; i < 2 * n; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
    }
  });
}

TEST_P(CollectivesP, AllgatherGivesEveryoneEverything) {
  const int n = GetParam();
  World::run_one_per_processor(uniform(n), [n](Proc& p) {
    Comm comm = p.world_comm();
    int mine = p.rank() + 1;
    std::vector<int> all(static_cast<std::size_t>(n), 0);
    comm.allgather(std::span<const int>(&mine, 1), std::span<int>(all));
    for (int i = 0; i < n; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i + 1);
  });
}

TEST_P(CollectivesP, ScatterDistributesPieces) {
  const int n = GetParam();
  World::run_one_per_processor(uniform(n), [n](Proc& p) {
    Comm comm = p.world_comm();
    std::vector<int> src;
    if (p.rank() == 0) {
      src.resize(static_cast<std::size_t>(3 * n));
      std::iota(src.begin(), src.end(), 0);
    }
    std::vector<int> mine(3, -1);
    comm.scatter(std::span<const int>(src), std::span<int>(mine), 0);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(mine[static_cast<std::size_t>(i)], p.rank() * 3 + i);
    }
  });
}

TEST_P(CollectivesP, AlltoallTransposes) {
  const int n = GetParam();
  World::run_one_per_processor(uniform(n), [n](Proc& p) {
    Comm comm = p.world_comm();
    // send[j] = rank * n + j; after alltoall, recv[j] = j * n + rank.
    std::vector<int> send(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) send[static_cast<std::size_t>(j)] = p.rank() * n + j;
    std::vector<int> recv(static_cast<std::size_t>(n), -1);
    comm.alltoall(std::span<const int>(send), std::span<int>(recv));
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(recv[static_cast<std::size_t>(j)], j * n + p.rank());
    }
  });
}

TEST_P(CollectivesP, ReduceScatterSumsOwnBlock) {
  const int n = GetParam();
  World::run_one_per_processor(uniform(n), [n](Proc& p) {
    Comm comm = p.world_comm();
    // Block b element e of rank r contributes r*1000 + b*10 + e; rank b ends
    // up with the sum over r for its own block.
    std::vector<long> in(static_cast<std::size_t>(2 * n));
    for (int b = 0; b < n; ++b) {
      for (int e = 0; e < 2; ++e) {
        in[static_cast<std::size_t>(2 * b + e)] = p.rank() * 1000 + b * 10 + e;
      }
    }
    std::vector<long> out(2, -1);
    comm.reduce_scatter(std::span<const long>(in), std::span<long>(out),
                        [](long a, long b) { return a + b; });
    const long rank_sum = static_cast<long>(n) * (n - 1) / 2;
    for (int e = 0; e < 2; ++e) {
      EXPECT_EQ(out[static_cast<std::size_t>(e)],
                rank_sum * 1000 + n * (p.rank() * 10 + e));
    }
  });
}

TEST_P(CollectivesP, BarrierSynchronisesClocks) {
  const int n = GetParam();
  auto result = World::run_one_per_processor(uniform(n), [](Proc& p) {
    // Skew the clocks, then barrier: no clock may end before the maximum
    // pre-barrier clock.
    p.elapse(static_cast<double>(p.rank()));
    p.world_comm().barrier();
  });
  const double max_skew = n - 1.0;
  for (double c : result.clocks) EXPECT_GE(c, max_skew);
}

TEST_P(CollectivesP, BackToBackCollectivesDoNotInterfere) {
  const int n = GetParam();
  World::run_one_per_processor(uniform(n), [n](Proc& p) {
    Comm comm = p.world_comm();
    for (int round = 0; round < 5; ++round) {
      int v = p.rank() == round % n ? round : -1;
      comm.bcast_value(v, round % n);
      EXPECT_EQ(v, round);
      int sum = 0;
      int mine = 1;
      comm.allreduce(std::span<const int>(&mine, 1), std::span<int>(&sum, 1),
                     [](int a, int b) { return a + b; });
      EXPECT_EQ(sum, n);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesP, ::testing::Values(1, 2, 3, 5, 8, 9, 13));

TEST(Collectives, BcastVectorResizesReceivers) {
  World::run_one_per_processor(uniform(3), [](Proc& p) {
    Comm comm = p.world_comm();
    std::vector<double> v;
    if (p.rank() == 1) v = {1.0, 2.0, 3.0, 4.0};
    comm.bcast_vector(v, 1);
    ASSERT_EQ(v.size(), 4u);
    EXPECT_DOUBLE_EQ(v[3], 4.0);
  });
}

TEST(Collectives, BcastVectorEmpty) {
  World::run_one_per_processor(uniform(2), [](Proc& p) {
    Comm comm = p.world_comm();
    std::vector<int> v;
    if (p.rank() != 0) v = {1, 2};  // stale content must be cleared
    comm.bcast_vector(v, 0);
    EXPECT_TRUE(v.empty());
  });
}

TEST(Collectives, AlltoallNonPowerOfTwoOnRotatedSplit) {
  // Regression for the pairwise rounds with a non-power-of-two member count:
  // an even size (6, exercising the self-partner round s == n/2) carved out
  // of a larger world, with keys chosen so comm ranks differ from world
  // ranks, and multi-element pieces.
  World::run_one_per_processor(uniform(7), [](Proc& p) {
    Comm world = p.world_comm();
    const bool in_comm = p.rank() != 3;
    Comm comm = world.split(in_comm ? 0 : kUndefinedColor,
                            /*key=*/(p.rank() + 5) % 7);
    if (!in_comm) return;
    const int n = comm.size();
    ASSERT_EQ(n, 6);
    std::vector<int> send(static_cast<std::size_t>(3 * n));
    for (int j = 0; j < n; ++j) {
      for (int e = 0; e < 3; ++e) {
        send[static_cast<std::size_t>(3 * j + e)] =
            comm.rank() * 100 + j * 10 + e;
      }
    }
    std::vector<int> recv(send.size(), -1);
    comm.alltoall(std::span<const int>(send), std::span<int>(recv));
    for (int j = 0; j < n; ++j) {
      for (int e = 0; e < 3; ++e) {
        EXPECT_EQ(recv[static_cast<std::size_t>(3 * j + e)],
                  j * 100 + comm.rank() * 10 + e);
      }
    }
  });
}

TEST(Collectives, ReduceFloatDeterministicOrder) {
  // Two runs of the same reduction must produce bit-identical results.
  auto run_once = [] {
    double result = 0;
    World::run_one_per_processor(uniform(7), [&](Proc& p) {
      Comm comm = p.world_comm();
      double in = 0.1 * (p.rank() + 1);
      double out = 0;
      comm.reduce(std::span<const double>(&in, 1), std::span<double>(&out, 1),
                  [](double a, double b) { return a + b; }, 0);
      if (p.rank() == 0) result = out;
    });
    return result;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Collectives, RootValidation) {
  World::Options o;
  o.deadlock_timeout_s = 1.0;
  EXPECT_THROW(World::run_one_per_processor(
                   uniform(2),
                   [](Proc& p) {
                     int v = 0;
                     p.world_comm().bcast_value(v, 5);
                   },
                   o),
               hmpi::InvalidArgument);
}

}  // namespace
}  // namespace hmpi::mp
