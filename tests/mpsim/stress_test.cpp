// Stress and property tests of the substrate: random traffic patterns must
// produce scheduling-independent virtual times, collectives must compose on
// arbitrary subcommunicators, and failures must release every blocked peer.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <vector>

#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"
#include "support/rng.hpp"
#include "telemetry/critpath.hpp"

namespace hmpi::mp {
namespace {

hnoc::Cluster random_cluster(std::uint64_t seed, int n) {
  support::Rng rng(seed);
  hnoc::ClusterBuilder b;
  for (int i = 0; i < n; ++i) {
    b.add("m" + std::to_string(i), rng.next_double_in(5.0, 200.0));
  }
  b.network(rng.next_double_in(1e-5, 1e-3), rng.next_double_in(1e6, 1e8));
  return b.build();
}

class TrafficStormP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrafficStormP, RandomTrafficIsDeterministic) {
  const std::uint64_t seed = GetParam();
  const int n = 6;
  hnoc::Cluster cluster = random_cluster(seed, n);

  // A deterministic random program: every process interleaves computes with
  // sends to known peers, then drains the exact set of messages addressed
  // to it (sender/tag known a priori, so matching is deterministic).
  // plan[src][dst] = number of messages src sends dst.
  support::Rng plan_rng(seed ^ 0xfeed);
  std::vector<std::vector<int>> plan(static_cast<std::size_t>(n),
                                     std::vector<int>(static_cast<std::size_t>(n), 0));
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s != d) plan[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)] =
          static_cast<int>(plan_rng.next_in(0, 6));
    }
  }

  auto run_once = [&] {
    auto result = World::run_one_per_processor(cluster, [&](Proc& p) {
      Comm comm = p.world_comm();
      const int me = p.rank();
      support::Rng rng(seed * 31 + static_cast<std::uint64_t>(me));
      // Send phase (buffered, interleaved with compute).
      for (int d = 0; d < n; ++d) {
        for (int k = 0; k < plan[static_cast<std::size_t>(me)][static_cast<std::size_t>(d)]; ++k) {
          p.compute(rng.next_double_in(0.1, 5.0));
          comm.send_placeholder(static_cast<std::size_t>(rng.next_in(16, 4096)),
                                d, 40 + k);
        }
      }
      // Drain phase: receive everything addressed to me, in (src, k) order.
      for (int s = 0; s < n; ++s) {
        for (int k = 0; k < plan[static_cast<std::size_t>(s)][static_cast<std::size_t>(me)]; ++k) {
          comm.recv_placeholder(s, 40 + k);
        }
      }
    });
    return result.clocks;
  };

  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrafficStormP,
                         ::testing::Values(7, 17, 27, 37, 47, 57));

TEST(Stress, CollectivesOnRandomSubcommunicators) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(8, 50.0);
  World::run_one_per_processor(cluster, [](Proc& p) {
    Comm world = p.world_comm();
    // Three generations of splits with interleaved collectives.
    Comm level1 = world.split(p.rank() % 2, p.rank());
    Comm level2 = level1.split(level1.rank() % 2, level1.rank());
    for (int round = 0; round < 3; ++round) {
      int ones = 1, total = 0;
      world.allreduce(std::span<const int>(&ones, 1), std::span<int>(&total, 1),
                      [](int a, int b) { return a + b; });
      EXPECT_EQ(total, 8);
      level1.allreduce(std::span<const int>(&ones, 1), std::span<int>(&total, 1),
                       [](int a, int b) { return a + b; });
      EXPECT_EQ(total, 4);
      level2.allreduce(std::span<const int>(&ones, 1), std::span<int>(&total, 1),
                       [](int a, int b) { return a + b; });
      EXPECT_EQ(total, 2);
      level2.barrier();
      level1.barrier();
      world.barrier();
    }
  });
}

TEST(Stress, WaitAnyCompletesInArrivalOpportunityOrder) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(3, 50.0);
  World::run_one_per_processor(cluster, [](Proc& p) {
    Comm comm = p.world_comm();
    if (p.rank() != 0) {
      if (p.rank() == 2) p.compute(100.0);  // rank 2 sends much later
      comm.send_value(p.rank(), 0, 9);
      return;
    }
    int a = 0, b = 0;
    std::vector<Request> reqs;
    reqs.push_back(comm.irecv(std::span<int>(&a, 1), 1, 9));
    reqs.push_back(comm.irecv(std::span<int>(&b, 1), 2, 9));
    Status status;
    const int first = Request::wait_any(reqs, &status);
    ASSERT_GE(first, 0);
    const int second = Request::wait_any(reqs, &status);
    ASSERT_GE(second, 0);
    EXPECT_NE(first, second);
    EXPECT_EQ(Request::wait_any(reqs), -1);  // all done
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 2);
  });
}

TEST(Stress, FailureReleasesManyBlockedPeers) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(6, 50.0);
  World::Options o;
  o.deadlock_timeout_s = 30.0;
  try {
    World::run_one_per_processor(
        cluster,
        [](Proc& p) {
          if (p.rank() == 3) throw std::runtime_error("injected failure");
          // Everyone else blocks on a message that will never come.
          p.world_comm().recv_value<int>(3, 0);
        },
        o);
    FAIL() << "expected the injected failure to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "injected failure");
  }
}

TEST(Stress, ManyProcessesPerMachine) {
  // 12 processes on 3 machines, ring of placeholder messages.
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(3, 50.0);
  std::vector<int> placement{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2};
  auto result = World::run(cluster, placement, [](Proc& p) {
    Comm comm = p.world_comm();
    const int n = comm.size();
    comm.send_placeholder(1024, (p.rank() + 1) % n, 1);
    comm.recv_placeholder((p.rank() + n - 1) % n, 1);
    comm.barrier();
  });
  EXPECT_EQ(result.stats.size(), 12u);
  for (const auto& s : result.stats) EXPECT_GE(s.msgs_sent, 1u);
}

TEST(Stress, LongCollectiveChainsKeepVirtualTimeFinite) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  auto result = World::run_one_per_processor(cluster, [](Proc& p) {
    Comm comm = p.world_comm();
    double value = 1.0;
    for (int i = 0; i < 50; ++i) {
      double sum = 0.0;
      comm.allreduce(std::span<const double>(&value, 1),
                     std::span<double>(&sum, 1),
                     [](double a, double b) { return a + b; });
      value = sum / 9.0;
    }
    EXPECT_NEAR(value, 1.0, 1e-9);
  });
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_LT(result.makespan, 1.0);  // pure latency, no data volume
}

// --- at-scale stress (the event engine's reason to exist) -----------------

/// Peak resident set size (VmHWM) in bytes, or 0 when unavailable.
std::size_t peak_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%zu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
#else
  return 0;
#endif
}

TEST(StressAtScale, TenThousandProcessRingAndBarrier) {
  // P = 10000 simulated processes — far beyond what thread-per-process can
  // host (10k OS threads x 8 MiB default stacks) — on 16 machines under the
  // event engine. The program is hand-rolled p2p (Comm collectives build
  // O(P^2 log P) schedule steps per member at this scale): one ring
  // exchange, then a dissemination barrier, then a second ring round so
  // traffic crosses the barrier's clock alignment.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  const int P = 2000;  // sanitizer shadow memory makes 10k fibers too heavy
#else
  const int P = 10000;
#endif
  const int machines = 16;
  hnoc::Cluster cluster = hnoc::testbeds::two_level(4, 4, 100.0);
  std::vector<int> placement(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) placement[static_cast<std::size_t>(r)] = r % machines;

  World::Options options;
  options.engine = sim::SimEngine::kEvent;
  options.fiber_stack_bytes = 256 * 1024;

  const auto wall_start = std::chrono::steady_clock::now();
  auto result = World::run(
      cluster, placement,
      [P](Proc& p) {
        Comm comm = p.world_comm();
        const int me = p.rank();
        auto ring_round = [&](int tag) {
          comm.send_placeholder(256, (me + 1) % P, tag);
          comm.recv_placeholder((me + P - 1) % P, tag);
        };
        auto dissemination_barrier = [&](int tag_base) {
          for (int k = 1, round = 0; k < P; k <<= 1, ++round) {
            comm.send_placeholder(1, (me + k) % P, tag_base + round);
            comm.recv_placeholder((me + P - k) % P, tag_base + round);
          }
        };
        ring_round(1);
        dissemination_barrier(100);
        ring_round(2);
      },
      options);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  ASSERT_EQ(result.clocks.size(), static_cast<std::size_t>(P));
  // The dissemination barrier aligns everyone: after the final ring round
  // every clock is positive and the makespan is finite and tiny (pure
  // latency, no data volume).
  for (double c : result.clocks) EXPECT_GT(c, 0.0);
  EXPECT_LT(result.makespan, 10.0);
  for (const auto& s : result.stats) {
    EXPECT_GE(s.msgs_sent, 2u);      // 2 ring rounds + barrier rounds
    EXPECT_EQ(s.msgs_sent, s.msgs_received);
  }
#if defined(NDEBUG) && !defined(__SANITIZE_THREAD__) && \
    !defined(__SANITIZE_ADDRESS__)
  // Budgets only enforced on optimized non-sanitizer builds: the run must
  // stay interactive (A12's acceptance bar) and fiber stacks must stay
  // guard-paged-lazy, not fully resident.
  EXPECT_LT(wall_s, 60.0) << "10k-process run too slow";
  const std::size_t rss = peak_rss_bytes();
  if (rss != 0) {
    EXPECT_LT(rss, 8ull * 1024 * 1024 * 1024) << "peak RSS over budget";
  }
#else
  (void)wall_s;
#endif
}

TEST(StressAtScale, FullProfilingStaysWithinWallBudget) {
  // The same 10k-process pattern as above with HMPI_PROF-style full causal
  // logging: every send/recv/compute is recorded (~60 events x 10k ranks),
  // the analyzer still telescopes the path to the makespan, and the whole
  // run stays within an interactive wall budget — the acceptance bar for
  // leaving profiling on during at-scale experiments.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  const int P = 2000;
#else
  const int P = 10000;
#endif
  const int machines = 16;
  hnoc::Cluster cluster = hnoc::testbeds::two_level(4, 4, 100.0);
  std::vector<int> placement(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) placement[static_cast<std::size_t>(r)] = r % machines;

  World::Options options;
  options.engine = sim::SimEngine::kEvent;
  options.fiber_stack_bytes = 256 * 1024;
  options.prof = telemetry::ProfMode::kFull;

  const auto wall_start = std::chrono::steady_clock::now();
  auto result = World::run(
      cluster, placement,
      [P](Proc& p) {
        Comm comm = p.world_comm();
        const int me = p.rank();
        comm.send_placeholder(256, (me + 1) % P, 1);
        comm.recv_placeholder((me + P - 1) % P, 1);
        for (int k = 1, round = 0; k < P; k <<= 1, ++round) {
          comm.send_placeholder(1, (me + k) % P, 100 + round);
          comm.recv_placeholder((me + P - k) % P, 100 + round);
        }
      },
      options);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  ASSERT_NE(result.causal, nullptr);
  EXPECT_EQ(result.causal->mode(), telemetry::ProfMode::kFull);
  const telemetry::CriticalPathReport report =
      telemetry::analyze_critical_path(*result.causal);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.events_dropped, 0u);
  EXPECT_EQ(report.makespan_s, result.makespan);
  EXPECT_EQ(report.path_s, result.makespan);
#if defined(NDEBUG) && !defined(__SANITIZE_THREAD__) && \
    !defined(__SANITIZE_ADDRESS__)
  // Full-mode recording rides the existing per-event work; budget it at the
  // same interactive bar as the unprofiled run (which passes well under it).
  EXPECT_LT(wall_s, 90.0) << "full causal profiling too slow at 10k processes";
#else
  (void)wall_s;
#endif
}

TEST(StressAtScale, RepeatedRunsAreBitIdentical) {
  // Determinism does not degrade with scale: two 1000-process event-engine
  // runs of an irregular pattern produce identical clocks.
  const int P = 1000;
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(8, 100.0);
  std::vector<int> placement(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) placement[static_cast<std::size_t>(r)] = r % 8;
  World::Options options;
  options.engine = sim::SimEngine::kEvent;
  options.fiber_stack_bytes = 256 * 1024;
  auto run_once = [&] {
    return World::run(
               cluster, placement,
               [P](Proc& p) {
                 Comm comm = p.world_comm();
                 const int me = p.rank();
                 p.compute(0.01 * (me % 7 + 1));
                 comm.send_placeholder(64 + me % 128, (me + 37) % P, 5);
                 comm.recv_placeholder((me + P - 37) % P, 5);
               },
               options)
        .clocks;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hmpi::mp
