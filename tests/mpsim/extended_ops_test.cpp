// Tests of the extended operations: sendrecv, gatherv/scatterv, scan, and
// the event tracer.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <vector>

#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"
#include "mpsim/trace.hpp"

namespace hmpi::mp {
namespace {

hnoc::Cluster uniform(int n) { return hnoc::testbeds::homogeneous(n, 100.0); }

TEST(ExtendedOps, SendrecvRing) {
  World::run_one_per_processor(uniform(4), [](Proc& p) {
    Comm comm = p.world_comm();
    const int right = (p.rank() + 1) % 4;
    const int left = (p.rank() + 3) % 4;
    int outgoing = p.rank() * 10;
    int incoming = -1;
    Status s = comm.sendrecv(std::span<const int>(&outgoing, 1), right, 5,
                             std::span<int>(&incoming, 1), left, 5);
    EXPECT_EQ(incoming, left * 10);
    EXPECT_EQ(s.source, left);
  });
}

class VariableOpsP : public ::testing::TestWithParam<int> {};

TEST_P(VariableOpsP, GathervCollectsRaggedContributions) {
  const int n = GetParam();
  World::run_one_per_processor(uniform(n), [n](Proc& p) {
    Comm comm = p.world_comm();
    // Rank r contributes r+1 elements of value r.
    std::vector<int> mine(static_cast<std::size_t>(p.rank() + 1), p.rank());
    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < n; ++r) {
      counts.push_back(r + 1);
      displs.push_back(total);
      total += r + 1;
    }
    std::vector<int> all(static_cast<std::size_t>(total), -1);
    comm.gatherv(std::span<const int>(mine), std::span<int>(all),
                 std::span<const int>(counts), std::span<const int>(displs), 0);
    if (p.rank() == 0) {
      int idx = 0;
      for (int r = 0; r < n; ++r) {
        for (int i = 0; i <= r; ++i) {
          EXPECT_EQ(all[static_cast<std::size_t>(idx++)], r);
        }
      }
    }
  });
}

TEST_P(VariableOpsP, ScattervDistributesRaggedPieces) {
  const int n = GetParam();
  World::run_one_per_processor(uniform(n), [n](Proc& p) {
    Comm comm = p.world_comm();
    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < n; ++r) {
      counts.push_back(r + 1);
      displs.push_back(total);
      total += r + 1;
    }
    std::vector<int> source;
    if (p.rank() == 0) {
      source.resize(static_cast<std::size_t>(total));
      std::iota(source.begin(), source.end(), 0);
    }
    std::vector<int> mine(static_cast<std::size_t>(p.rank() + 1), -1);
    comm.scatterv(std::span<const int>(source), std::span<const int>(counts),
                  std::span<const int>(displs), std::span<int>(mine), 0);
    for (int i = 0; i <= p.rank(); ++i) {
      EXPECT_EQ(mine[static_cast<std::size_t>(i)],
                displs[static_cast<std::size_t>(p.rank())] + i);
    }
  });
}

TEST_P(VariableOpsP, ScanComputesPrefixSums) {
  const int n = GetParam();
  World::run_one_per_processor(uniform(n), [](Proc& p) {
    Comm comm = p.world_comm();
    std::vector<long> in{static_cast<long>(p.rank() + 1), 1};
    std::vector<long> out(2, -1);
    comm.scan(std::span<const long>(in), std::span<long>(out),
              [](long a, long b) { return a + b; });
    // out[0] = 1 + 2 + ... + (rank+1); out[1] = rank+1.
    const long r = p.rank() + 1;
    EXPECT_EQ(out[0], r * (r + 1) / 2);
    EXPECT_EQ(out[1], static_cast<long>(p.rank() + 1));
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, VariableOpsP, ::testing::Values(1, 2, 3, 5, 9));

TEST(ExtendedOps, GathervValidation) {
  World::Options o;
  o.deadlock_timeout_s = 1.0;
  EXPECT_THROW(World::run_one_per_processor(
                   uniform(2),
                   [](Proc& p) {
                     Comm comm = p.world_comm();
                     int mine = 0;
                     std::vector<int> all(1);   // too small for 2 ranks
                     std::vector<int> counts{1, 1}, displs{0, 1};
                     comm.gatherv(std::span<const int>(&mine, 1),
                                  std::span<int>(all),
                                  std::span<const int>(counts),
                                  std::span<const int>(displs), 0);
                   },
                   o),
               hmpi::InvalidArgument);
}

// --- tracer -------------------------------------------------------------------

TEST(Tracer, RecordsSendsRecvsAndComputes) {
  Tracer tracer;
  World::Options o;
  o.tracer = &tracer;
  World::run_one_per_processor(
      uniform(2),
      [](Proc& p) {
        Comm comm = p.world_comm();
        if (p.rank() == 0) {
          p.compute(10.0);
          comm.send_value(1, 1, 3);
        } else {
          comm.recv_value<int>(0, 3);
        }
      },
      o);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  const TraceEvent* compute = nullptr;
  const TraceEvent* send = nullptr;
  const TraceEvent* recv = nullptr;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEvent::Kind::kCompute) compute = &e;
    if (e.kind == TraceEvent::Kind::kSend) send = &e;
    if (e.kind == TraceEvent::Kind::kRecv) recv = &e;
  }
  ASSERT_TRUE(compute && send && recv);
  EXPECT_DOUBLE_EQ(compute->units, 10.0);
  EXPECT_DOUBLE_EQ(compute->end_time - compute->start_time, 0.1);
  EXPECT_EQ(send->world_rank, 0);
  EXPECT_EQ(send->peer, 1);
  EXPECT_EQ(send->bytes, sizeof(int));
  EXPECT_GE(send->start_time, compute->end_time);  // sent after computing
  EXPECT_EQ(recv->world_rank, 1);
  EXPECT_EQ(recv->peer, 0);
  // Recv completes no earlier than the send's arrival.
  EXPECT_GE(recv->end_time, send->end_time);
}

TEST(Tracer, CountsMatchStats) {
  Tracer tracer;
  World::Options o;
  o.tracer = &tracer;
  auto result = World::run_one_per_processor(
      uniform(3),
      [](Proc& p) {
        int v = p.rank();
        p.world_comm().bcast_value(v, 0);
        p.world_comm().barrier();
      },
      o);
  std::uint64_t sends = 0, recvs = 0;
  for (const auto& e : tracer.events()) {
    if (e.kind == TraceEvent::Kind::kSend) ++sends;
    if (e.kind == TraceEvent::Kind::kRecv) ++recvs;
  }
  std::uint64_t stat_sends = 0, stat_recvs = 0;
  for (const auto& s : result.stats) {
    stat_sends += s.msgs_sent;
    stat_recvs += s.msgs_received;
  }
  EXPECT_EQ(sends, stat_sends);
  EXPECT_EQ(recvs, stat_recvs);
  EXPECT_EQ(sends, recvs);  // everything sent was received
}

TEST(Tracer, CsvOutput) {
  Tracer tracer;
  World::Options o;
  o.tracer = &tracer;
  World::run_one_per_processor(
      uniform(1), [](Proc& p) { p.compute(1.0); }, o);
  std::ostringstream os;
  tracer.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("kind,world_rank,processor"), std::string::npos);
  EXPECT_NE(out.find("compute,0,0"), std::string::npos);
}

TEST(Tracer, ClearResets) {
  Tracer tracer;
  TraceEvent e;
  tracer.record(e);
  EXPECT_EQ(tracer.size(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

}  // namespace
}  // namespace hmpi::mp
