// Dual-engine differential harness (docs/simulator.md).
//
// Runs the same simulated program under the thread engine and the event
// engine and asserts that everything observable is bit-identical: final
// virtual clocks, per-process stats, failed ranks, makespan, and the trace
// CSV. This is the executable form of the engines' equivalence contract —
// any program that is deterministic under the thread engine must not be able
// to tell the engines apart. That class excludes kAnySource races and
// concurrently-contended directed links (several senders sharing one
// processor pair reserve it in host-scheduling order under the thread
// engine); the event engine is deterministic even for those, which is a
// strictly stronger guarantee pinned separately in engine_test.cpp.
//
// Trace masking: kMapperSearch and kEstCompile events pack *real* wall-clock
// durations into their CSV columns (see Tracer::write_csv), which legitimately
// differ between runs; those lines are dropped before comparison. Everything
// else on the trace timeline is virtual and must match exactly.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "hnoc/cluster.hpp"
#include "mpsim/trace.hpp"
#include "mpsim/world.hpp"

namespace hmpi::mp::testing {

/// Everything observable from one engine's run.
struct EngineRun {
  World::RunResult result;
  std::string trace_csv;  ///< write_csv output with wall-clock kinds masked.
  bool threw = false;
  std::string error;  ///< what() of the body/world exception, if any.
};

inline std::string mask_wall_clock_lines(const std::string& csv) {
  std::istringstream in(csv);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("mapper_search,", 0) == 0) continue;
    if (line.rfind("est_compile,", 0) == 0) continue;
    out << line << '\n';
  }
  return out.str();
}

inline EngineRun run_with_engine(sim::SimEngine engine,
                                 const hnoc::Cluster& cluster,
                                 std::vector<int> placement,
                                 const std::function<void(Proc&)>& body,
                                 World::Options options = {},
                                 int event_workers = 1) {
  Tracer tracer;
  options.engine = engine;
  options.event_workers = event_workers;
  options.tracer = &tracer;
  EngineRun run;
  try {
    run.result = World::run(cluster, std::move(placement), body, options);
  } catch (const std::exception& e) {
    run.threw = true;
    run.error = e.what();
  }
  std::ostringstream csv;
  tracer.write_csv(csv);
  run.trace_csv = mask_wall_clock_lines(csv.str());
  return run;
}

inline void expect_identical_runs(const EngineRun& thread_run,
                                  const EngineRun& event_run) {
  ASSERT_EQ(thread_run.threw, event_run.threw)
      << "thread: " << thread_run.error << "\nevent: " << event_run.error;
  if (thread_run.threw) {
    // Both runs aborted with a body exception. The abort tears the world
    // down at real-time-racy points, so partial traces and stats are not
    // comparable; agreeing that the program fails is the contract here.
    return;
  }
  const World::RunResult& a = thread_run.result;
  const World::RunResult& b = event_run.result;
  ASSERT_EQ(a.clocks.size(), b.clocks.size());
  for (std::size_t r = 0; r < a.clocks.size(); ++r) {
    // Bit-identical, not approximately equal: both engines must execute the
    // exact same arithmetic in the exact same order.
    EXPECT_EQ(a.clocks[r], b.clocks[r]) << "clock of rank " << r;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.failed_ranks, b.failed_ranks);
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (std::size_t r = 0; r < a.stats.size(); ++r) {
    EXPECT_EQ(a.stats[r].msgs_sent, b.stats[r].msgs_sent) << "rank " << r;
    EXPECT_EQ(a.stats[r].bytes_sent, b.stats[r].bytes_sent) << "rank " << r;
    EXPECT_EQ(a.stats[r].msgs_received, b.stats[r].msgs_received)
        << "rank " << r;
    EXPECT_EQ(a.stats[r].bytes_received, b.stats[r].bytes_received)
        << "rank " << r;
    EXPECT_EQ(a.stats[r].compute_units, b.stats[r].compute_units)
        << "rank " << r;
    EXPECT_EQ(a.stats[r].compute_time, b.stats[r].compute_time)
        << "rank " << r;
    EXPECT_EQ(a.stats[r].wait_time, b.stats[r].wait_time) << "rank " << r;
  }
  EXPECT_EQ(thread_run.trace_csv, event_run.trace_csv);
}

/// Runs `body` under both engines and asserts bit-identical observables.
/// Returns the thread-engine run for additional assertions.
inline EngineRun expect_engines_agree(const hnoc::Cluster& cluster,
                                      std::vector<int> placement,
                                      const std::function<void(Proc&)>& body,
                                      World::Options options = {},
                                      int event_workers = 1) {
  EngineRun thread_run = run_with_engine(sim::SimEngine::kThread, cluster,
                                         placement, body, options);
  EngineRun event_run = run_with_engine(sim::SimEngine::kEvent, cluster,
                                        std::move(placement), body, options,
                                        event_workers);
  expect_identical_runs(thread_run, event_run);
  return thread_run;
}

}  // namespace hmpi::mp::testing
