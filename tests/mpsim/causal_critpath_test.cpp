// Causal profiling under the simulator (docs/observability.md): the
// critical-path length telescopes to the makespan bit-identically under both
// engines, a deliberately slowed machine or link tops the blame tables, the
// always-on ring mode leaves every existing observable bit-identical to a
// profiling-off run, ring truncation degrades gracefully, and the Perfetto
// export (trace events + flow arrows) is identical across engines and event
// worker counts (the span-nesting contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"
#include "mpsim/trace.hpp"
#include "mpsim/world.hpp"
#include "telemetry/causal.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/critpath.hpp"

#include "differential.hpp"

namespace hmpi::mp {
namespace {

using telemetry::CausalLog;
using telemetry::CriticalPathReport;
using telemetry::ProfMode;

/// Scoped setenv/unsetenv (tests in this binary run single-threaded).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = ::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

/// An irregular but deterministic program: skewed compute, a ring exchange,
/// and a reduction-to-rank-0 chain, so the critical path crosses machines.
void mixed_program(Proc& p) {
  Comm comm = p.world_comm();
  const int me = p.rank();
  const int n = comm.size();
  p.compute(50.0 * (me % 3 + 1));
  comm.send_placeholder(4096, (me + 1) % n, 7);
  comm.recv_placeholder((me + n - 1) % n, 7);
  p.compute(25.0);
  if (me != 0) {
    comm.send_placeholder(1024, 0, 8);
  } else {
    for (int src = 1; src < n; ++src) comm.recv_placeholder(src, 8);
  }
}

World::RunResult run_with(sim::SimEngine engine, const hnoc::Cluster& cluster,
                          ProfMode prof, int event_workers = 1) {
  std::vector<int> placement(static_cast<std::size_t>(cluster.size()));
  for (int r = 0; r < cluster.size(); ++r)
    placement[static_cast<std::size_t>(r)] = r;
  World::Options options;
  options.engine = engine;
  options.event_workers = event_workers;
  options.prof = prof;
  return World::run(cluster, placement, mixed_program, options);
}

TEST(CausalSim, PathEqualsMakespanBitIdenticallyUnderBothEngines) {
  const hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  const auto thread_run =
      run_with(sim::SimEngine::kThread, cluster, ProfMode::kFull);
  const auto event_run =
      run_with(sim::SimEngine::kEvent, cluster, ProfMode::kFull, 4);

  for (const auto& run : {thread_run, event_run}) {
    ASSERT_NE(run.causal, nullptr);
    const CriticalPathReport report =
        telemetry::analyze_critical_path(*run.causal);
    EXPECT_TRUE(report.complete);
    EXPECT_EQ(report.events_dropped, 0u);
    // Bit-identical, not approximately equal: the virtual clock only moves
    // inside recorded events, so the backward walk telescopes exactly.
    EXPECT_EQ(report.makespan_s, run.makespan);
    EXPECT_EQ(report.path_s, run.makespan);
  }

  // And the two engines agree on the path itself, segment by segment.
  const CriticalPathReport a =
      telemetry::analyze_critical_path(*thread_run.causal);
  const CriticalPathReport b =
      telemetry::analyze_critical_path(*event_run.causal);
  EXPECT_EQ(a.end_rank, b.end_rank);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].kind, b.segments[i].kind) << i;
    EXPECT_EQ(a.segments[i].rank, b.segments[i].rank) << i;
    EXPECT_EQ(a.segments[i].t0, b.segments[i].t0) << i;
    EXPECT_EQ(a.segments[i].t1, b.segments[i].t1) << i;
  }
  EXPECT_EQ(a.machine_s, b.machine_s);
  EXPECT_EQ(a.link_s, b.link_s);
}

/// The label (machine or link identity) with the most on-path seconds —
/// exactly the top row of tools/hmpiprof's blame table.
std::string top_blamed(const CriticalPathReport& report) {
  std::string label;
  double best = -1.0;
  for (const auto& [proc, s] : report.machine_s) {
    if (s > best) {
      best = s;
      label = "machine " + std::to_string(proc);
    }
  }
  for (const auto& [link, s] : report.link_s) {
    if (s > best) {
      best = s;
      label = "link " + std::to_string(link.first) + " -> " +
              std::to_string(link.second);
    }
  }
  return label;
}

TEST(CausalSim, SlowMachineTopsTheBlameTable) {
  // Machine 2 is 20x slower; everyone computes the same volume, so its
  // compute interval dominates the path.
  hnoc::ClusterBuilder builder;
  builder.add("fast0", 100.0).add("fast1", 100.0).add("slow", 5.0);
  builder.network(1e-6, 1e9);  // make links negligible
  const hnoc::Cluster cluster = builder.build();

  World::Options options;
  options.prof = telemetry::ProfMode::kFull;
  const auto result = World::run(
      cluster, {0, 1, 2},
      [](Proc& p) {
        Comm comm = p.world_comm();
        p.compute(100.0);
        comm.barrier();
      },
      options);
  ASSERT_NE(result.causal, nullptr);
  const CriticalPathReport report =
      telemetry::analyze_critical_path(*result.causal);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(top_blamed(report), "machine 2");
  // And the slow machine's share is decisive, not marginal.
  EXPECT_GT(report.machine_s.at(2), 0.9 * (100.0 / 5.0));
}

TEST(CausalSim, SlowLinkTopsTheBlameTable) {
  // Identical machines, but the 0 -> 1 link has a 2-second latency; the
  // ping-pong's transfer time dwarfs every compute interval.
  hnoc::ClusterBuilder builder;
  builder.add("a", 100.0).add("b", 100.0);
  builder.network(1e-6, 1e9);
  builder.link_override(0, 1, /*latency_s=*/2.0, /*bandwidth_bps=*/1e9);
  const hnoc::Cluster cluster = builder.build();

  World::Options options;
  options.prof = telemetry::ProfMode::kFull;
  const auto result = World::run(
      cluster, {0, 1},
      [](Proc& p) {
        Comm comm = p.world_comm();
        p.compute(1.0);
        if (p.rank() == 0) {
          comm.send_placeholder(1024, 1, 3);
          comm.recv_placeholder(1, 4);
        } else {
          comm.recv_placeholder(0, 3);
          comm.send_placeholder(1024, 0, 4);
        }
      },
      options);
  ASSERT_NE(result.causal, nullptr);
  const CriticalPathReport report =
      telemetry::analyze_critical_path(*result.causal);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(top_blamed(report), "link 0 -> 1");
  EXPECT_GT(report.link_s.at({0, 1}), 2.0);
}

TEST(CausalSim, DefaultRingModeLeavesTraceBitIdentical) {
  // The always-on ring log must be a pure observer: with HMPI_PROF unset,
  // clocks, stats, and the trace CSV match a profiling-off run exactly.
  ScopedEnv env("HMPI_PROF", nullptr);
  const hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  std::vector<int> placement(static_cast<std::size_t>(cluster.size()));
  for (int r = 0; r < cluster.size(); ++r)
    placement[static_cast<std::size_t>(r)] = r;

  auto run_once = [&](ProfMode prof) {
    World::Options options;
    options.prof = prof;
    return testing::run_with_engine(sim::SimEngine::kThread, cluster,
                                    placement, mixed_program, options);
  };
  const testing::EngineRun ring = run_once(ProfMode::kAuto);  // -> kRing
  const testing::EngineRun off = run_once(ProfMode::kOff);
  ASSERT_NE(ring.result.causal, nullptr);
  EXPECT_EQ(ring.result.causal->mode(), ProfMode::kRing);
  EXPECT_EQ(off.result.causal->mode(), ProfMode::kOff);
  testing::expect_identical_runs(ring, off);
}

TEST(CausalSim, RingTruncationReportsIncompleteWithGap) {
  // More events per rank than the ring holds: the walk must stop at the
  // horizon and account the missing prefix as a gap, never mis-telescope.
  const hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2);
  World::Options options;
  options.prof = telemetry::ProfMode::kRing;
  const auto result = World::run(
      cluster, {0, 1},
      [](Proc& p) {
        for (int i = 0; i < 2 * static_cast<int>(
                                CausalLog::kDefaultRingCapacity);
             ++i) {
          p.compute(1.0);
        }
      },
      options);
  ASSERT_NE(result.causal, nullptr);
  const CriticalPathReport report =
      telemetry::analyze_critical_path(*result.causal);
  EXPECT_FALSE(report.complete);
  EXPECT_GT(report.events_dropped, 0u);
  EXPECT_GT(report.gap_s, 0.0);
  EXPECT_EQ(report.makespan_s, result.makespan);
  EXPECT_DOUBLE_EQ(report.path_s + report.gap_s, report.makespan_s);
}

TEST(CausalSim, PerfettoExportIdenticalAcrossEnginesAndWorkers) {
  // The span-nesting contract: the full Perfetto document — tracer 'X'/'i'
  // events plus the causal flow arrows — is byte-identical under the thread
  // engine and the event engine at 1, 2, and 8 workers. mixed_program uses
  // only virtual-time kinds, so no wall-clock masking is needed.
  const hnoc::Cluster cluster = hnoc::testbeds::two_level(2, 3, 80.0);
  std::vector<int> placement(static_cast<std::size_t>(cluster.size()));
  for (int r = 0; r < cluster.size(); ++r)
    placement[static_cast<std::size_t>(r)] = r;

  auto export_once = [&](sim::SimEngine engine, int workers) {
    Tracer tracer;
    World::Options options;
    options.engine = engine;
    options.event_workers = workers;
    options.tracer = &tracer;
    options.prof = telemetry::ProfMode::kFull;
    const auto result = World::run(cluster, placement, mixed_program, options);
    auto events = to_chrome_events(tracer.events());
    auto flows = telemetry::causal_flow_events(*result.causal);
    events.insert(events.end(), flows.begin(), flows.end());
    std::ostringstream os;
    telemetry::write_chrome_trace(os, std::move(events));
    return os.str();
  };

  const std::string reference = export_once(sim::SimEngine::kThread, 1);
  EXPECT_FALSE(reference.empty());
  for (int workers : {1, 2, 8}) {
    EXPECT_EQ(reference, export_once(sim::SimEngine::kEvent, workers))
        << "event engine with " << workers << " workers";
  }
}

TEST(CausalSim, CrashLeavesAMarkInTheLog) {
  // A rank killed by the fault plan records a kMark/kCrash event from its
  // own timeline, so post-mortems can place the death on the virtual clock.
  const hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2);
  World::Options options;
  options.prof = telemetry::ProfMode::kFull;
  options.faults.crashes.push_back({.world_rank = 1, .time = 5.0});
  const auto result = World::run(
      cluster, {0, 1},
      [](Proc& p) {
        for (int i = 0; i < 100; ++i) p.compute(10.0);
      },
      options);
  ASSERT_NE(result.causal, nullptr);
  const auto events = result.causal->events_of(1);
  const auto mark = std::find_if(events.begin(), events.end(), [](const auto& e) {
    return e.kind == telemetry::CausalEvent::Kind::kMark &&
           (e.flags & telemetry::CausalEvent::kCrash) != 0;
  });
  ASSERT_NE(mark, events.end());
  EXPECT_GE(mark->t0, 5.0);
}

}  // namespace
}  // namespace hmpi::mp
