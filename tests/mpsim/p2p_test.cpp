#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"

namespace hmpi::mp {
namespace {

hnoc::Cluster uniform(int n) { return hnoc::testbeds::homogeneous(n, 100.0); }

World::Options fast_timeout() {
  World::Options o;
  o.deadlock_timeout_s = 1.0;
  return o;
}

TEST(P2p, SendRecvValueRoundTrip) {
  World::run_one_per_processor(uniform(2), [](Proc& p) {
    Comm comm = p.world_comm();
    if (p.rank() == 0) {
      comm.send_value(42, 1, 7);
    } else {
      Status s;
      const int v = comm.recv_value<int>(0, 7, &s);
      EXPECT_EQ(v, 42);
      EXPECT_EQ(s.source, 0);
      EXPECT_EQ(s.tag, 7);
      EXPECT_EQ(s.bytes, sizeof(int));
    }
  });
}

TEST(P2p, SendRecvSpan) {
  World::run_one_per_processor(uniform(2), [](Proc& p) {
    Comm comm = p.world_comm();
    std::vector<double> data{1.5, 2.5, 3.5};
    if (p.rank() == 0) {
      comm.send(std::span<const double>(data), 1, 0);
    } else {
      std::vector<double> out(3);
      comm.recv(std::span<double>(out), 0, 0);
      EXPECT_EQ(out, data);
    }
  });
}

TEST(P2p, TagsMatchSelectively) {
  World::run_one_per_processor(uniform(2), [](Proc& p) {
    Comm comm = p.world_comm();
    if (p.rank() == 0) {
      comm.send_value(1, 1, 10);
      comm.send_value(2, 1, 20);
    } else {
      // Receive in the opposite order of sending: tag matching must pick the
      // right message, not the first queued one.
      EXPECT_EQ(comm.recv_value<int>(0, 20), 2);
      EXPECT_EQ(comm.recv_value<int>(0, 10), 1);
    }
  });
}

TEST(P2p, NonOvertakingSameTag) {
  World::run_one_per_processor(uniform(2), [](Proc& p) {
    Comm comm = p.world_comm();
    if (p.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send_value(i, 1, 5);
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(comm.recv_value<int>(0, 5), i);
    }
  });
}

TEST(P2p, AnySourceReceivesFromEither) {
  World::run_one_per_processor(uniform(3), [](Proc& p) {
    Comm comm = p.world_comm();
    if (p.rank() != 0) {
      comm.send_value(p.rank(), 0, 3);
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        Status s;
        sum += comm.recv_value<int>(kAnySource, 3, &s);
        EXPECT_GE(s.source, 1);
        EXPECT_LE(s.source, 2);
      }
      EXPECT_EQ(sum, 3);
    }
  });
}

TEST(P2p, AnyTagReportsActualTag) {
  World::run_one_per_processor(uniform(2), [](Proc& p) {
    Comm comm = p.world_comm();
    if (p.rank() == 0) {
      comm.send_value(9, 1, 123);
    } else {
      Status s;
      comm.recv_value<int>(0, kAnyTag, &s);
      EXPECT_EQ(s.tag, 123);
    }
  });
}

TEST(P2p, SelfSendWorks) {
  World::run_one_per_processor(uniform(1), [](Proc& p) {
    Comm comm = p.world_comm();
    comm.send_value(7.5, 0, 1);
    EXPECT_DOUBLE_EQ(comm.recv_value<double>(0, 1), 7.5);
  });
}

TEST(P2p, ZeroByteMessage) {
  World::run_one_per_processor(uniform(2), [](Proc& p) {
    Comm comm = p.world_comm();
    if (p.rank() == 0) {
      comm.send_bytes({}, 1, 0);
    } else {
      Status s = comm.recv_bytes({}, 0, 0);
      EXPECT_EQ(s.bytes, 0u);
    }
  });
}

TEST(P2p, RecvBufferTooSmallThrows) {
  EXPECT_THROW(
      World::run_one_per_processor(
          uniform(2),
          [](Proc& p) {
            Comm comm = p.world_comm();
            if (p.rank() == 0) {
              std::array<int, 4> data{1, 2, 3, 4};
              comm.send(std::span<const int>(data), 1, 0);
            } else {
              int one = 0;
              comm.recv(std::span<int>(&one, 1), 0, 0);
            }
          },
          fast_timeout()),
      hmpi::InvalidArgument);
}

TEST(P2p, MissingMessageDeadlocks) {
  EXPECT_THROW(World::run_one_per_processor(
                   uniform(2),
                   [](Proc& p) {
                     if (p.rank() == 1) {
                       p.world_comm().recv_value<int>(0, 0);  // never sent
                     }
                   },
                   fast_timeout()),
               hmpi::DeadlockError);
}

TEST(P2p, AbortUnblocksPeers) {
  // Rank 0 throws; rank 1 is blocked in recv and must be released with an
  // MpError instead of hanging until the deadlock timeout of rank 1.
  World::Options o;
  o.deadlock_timeout_s = 30.0;
  try {
    World::run_one_per_processor(
        uniform(2),
        [](Proc& p) {
          if (p.rank() == 0) throw std::logic_error("boom");
          p.world_comm().recv_value<int>(0, 0);
        },
        o);
    FAIL() << "expected exception";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "boom");  // the original error wins
  }
}

TEST(P2p, IprobeSeesPendingMessage) {
  World::run_one_per_processor(uniform(2), [](Proc& p) {
    Comm comm = p.world_comm();
    if (p.rank() == 0) {
      comm.send_value(1, 1, 4);
      comm.send_value(2, 1, 4);  // synchronise via a second message
    } else {
      comm.recv_value<int>(0, 4);
      // After receiving the first, the second may or may not have arrived in
      // real time; wait for it via blocking probe-equivalent recv.
      EXPECT_EQ(comm.recv_value<int>(0, 4), 2);
      EXPECT_FALSE(comm.iprobe(0, 4));  // nothing left
    }
  });
}

TEST(P2p, IsendCompletesImmediately) {
  World::run_one_per_processor(uniform(2), [](Proc& p) {
    Comm comm = p.world_comm();
    if (p.rank() == 0) {
      const int v = 5;
      Request r = comm.isend(std::span<const int>(&v, 1), 1, 0);
      EXPECT_TRUE(r.done());
      r.wait();
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 0), 5);
    }
  });
}

TEST(P2p, IrecvWaitDelivers) {
  World::run_one_per_processor(uniform(2), [](Proc& p) {
    Comm comm = p.world_comm();
    if (p.rank() == 0) {
      comm.send_value(11, 1, 2);
    } else {
      int v = 0;
      Request r = comm.irecv(std::span<int>(&v, 1), 0, 2);
      EXPECT_FALSE(r.done());
      Status s = r.wait();
      EXPECT_EQ(v, 11);
      EXPECT_EQ(s.source, 0);
    }
  });
}

TEST(P2p, WaitAllCompletesMultipleIrecvs) {
  World::run_one_per_processor(uniform(3), [](Proc& p) {
    Comm comm = p.world_comm();
    if (p.rank() != 0) {
      comm.send_value(p.rank() * 10, 0, p.rank());
    } else {
      int a = 0, b = 0;
      std::array<Request, 2> reqs{comm.irecv(std::span<int>(&a, 1), 1, 1),
                                  comm.irecv(std::span<int>(&b, 1), 2, 2)};
      Request::wait_all(reqs);
      EXPECT_EQ(a, 10);
      EXPECT_EQ(b, 20);
    }
  });
}

TEST(P2p, StatsCountTraffic) {
  auto result = World::run_one_per_processor(uniform(2), [](Proc& p) {
    Comm comm = p.world_comm();
    if (p.rank() == 0) {
      std::array<double, 8> d{};
      comm.send(std::span<const double>(d), 1, 0);
    } else {
      std::array<double, 8> d{};
      comm.recv(std::span<double>(d), 0, 0);
    }
  });
  EXPECT_EQ(result.stats[0].msgs_sent, 1u);
  EXPECT_EQ(result.stats[0].bytes_sent, 64u);
  EXPECT_EQ(result.stats[1].msgs_received, 1u);
  EXPECT_EQ(result.stats[1].bytes_received, 64u);
}

TEST(P2p, InvalidRanksRejected) {
  EXPECT_THROW(World::run_one_per_processor(
                   uniform(2),
                   [](Proc& p) {
                     if (p.rank() == 0) p.world_comm().send_value(1, 5, 0);
                   },
                   fast_timeout()),
               hmpi::InvalidArgument);
}

TEST(P2p, NegativeUserTagRejected) {
  EXPECT_THROW(World::run_one_per_processor(
                   uniform(2),
                   [](Proc& p) {
                     if (p.rank() == 0) p.world_comm().send_value(1, 1, -5);
                   },
                   fast_timeout()),
               hmpi::InvalidArgument);
}

}  // namespace
}  // namespace hmpi::mp
