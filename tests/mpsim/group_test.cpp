#include "mpsim/group.hpp"

#include <gtest/gtest.h>

#include "hnoc/cluster.hpp"
#include "support/error.hpp"

namespace hmpi::mp {
namespace {

const std::vector<int> kA{0, 2, 4, 6};
const std::vector<int> kB{4, 5, 6, 7};

TEST(ProcessGroup, ConstructionAndAccessors) {
  ProcessGroup g(kA);
  EXPECT_EQ(g.size(), 4);
  EXPECT_FALSE(g.empty());
  EXPECT_EQ(g.world_rank(0), 0);
  EXPECT_EQ(g.world_rank(3), 6);
  EXPECT_EQ(g.rank_of(4), 2);
  EXPECT_EQ(g.rank_of(5), -1);
  EXPECT_TRUE(g.contains(2));
  EXPECT_FALSE(g.contains(1));
  EXPECT_THROW(g.world_rank(4), hmpi::InvalidArgument);
}

TEST(ProcessGroup, RejectsDuplicatesAndNegatives) {
  EXPECT_THROW(ProcessGroup({1, 1}), hmpi::InvalidArgument);
  EXPECT_THROW(ProcessGroup({0, -1}), hmpi::InvalidArgument);
}

TEST(ProcessGroup, InclPicksByPositionInOrder) {
  ProcessGroup g(kA);
  const int positions[] = {3, 0};
  ProcessGroup sub = g.incl(positions);
  EXPECT_EQ(sub.world_ranks(), (std::vector<int>{6, 0}));
  const int bad[] = {4};
  EXPECT_THROW(g.incl(bad), hmpi::InvalidArgument);
}

TEST(ProcessGroup, ExclDropsByPosition) {
  ProcessGroup g(kA);
  const int positions[] = {1, 2};
  EXPECT_EQ(g.excl(positions).world_ranks(), (std::vector<int>{0, 6}));
}

TEST(ProcessGroup, UnionKeepsFirstOrderThenAppends) {
  EXPECT_EQ(ProcessGroup(kA).set_union(ProcessGroup(kB)).world_ranks(),
            (std::vector<int>{0, 2, 4, 6, 5, 7}));
}

TEST(ProcessGroup, IntersectionKeepsFirstOrder) {
  EXPECT_EQ(ProcessGroup(kA).set_intersection(ProcessGroup(kB)).world_ranks(),
            (std::vector<int>{4, 6}));
  // Not symmetric in order.
  EXPECT_EQ(ProcessGroup(kB).set_intersection(ProcessGroup(kA)).world_ranks(),
            (std::vector<int>{4, 6}));
}

TEST(ProcessGroup, Difference) {
  EXPECT_EQ(ProcessGroup(kA).set_difference(ProcessGroup(kB)).world_ranks(),
            (std::vector<int>{0, 2}));
  EXPECT_EQ(ProcessGroup(kB).set_difference(ProcessGroup(kA)).world_ranks(),
            (std::vector<int>{5, 7}));
}

TEST(ProcessGroup, AlgebraIdentities) {
  ProcessGroup a(kA), b(kB), empty;
  EXPECT_EQ(a.set_union(empty), a);
  EXPECT_EQ(a.set_intersection(a), a);
  EXPECT_EQ(a.set_difference(a), empty);
  EXPECT_EQ(a.set_difference(empty), a);
  // |A u B| == |A| + |B| - |A n B|
  EXPECT_EQ(a.set_union(b).size(),
            a.size() + b.size() - a.set_intersection(b).size());
}

TEST(ProcessGroup, TranslateRanks) {
  ProcessGroup a(kA), b(kB);
  const int ranks[] = {0, 2, 3};  // world 0, 4, 6
  EXPECT_EQ(ProcessGroup::translate(a, ranks, b),
            (std::vector<int>{-1, 0, 2}));
}

TEST(ProcessGroup, CreateCommOverDerivedGroup) {
  // The paper's §2 recipe: take the communicator's group, derive a subgroup
  // with set operations, make a communicator from it.
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(6, 50.0);
  World::run_one_per_processor(cluster, [](Proc& p) {
    ProcessGroup world_group = ProcessGroup::of(p.world_comm());
    ASSERT_EQ(world_group.size(), 6);
    const int evens_positions[] = {0, 2, 4};
    ProcessGroup evens = world_group.incl(evens_positions);
    ProcessGroup odds = world_group.set_difference(evens);
    ProcessGroup mine = evens.contains(p.rank()) ? evens : odds;

    Comm comm = create_comm(p, mine);
    ASSERT_TRUE(comm.valid());
    EXPECT_EQ(comm.size(), 3);
    EXPECT_EQ(comm.rank(), mine.rank_of(p.rank()));
    int in = p.rank(), out = 0;
    comm.allreduce(std::span<const int>(&in, 1), std::span<int>(&out, 1),
                   [](int a, int b) { return a + b; });
    EXPECT_EQ(out, evens.contains(p.rank()) ? 0 + 2 + 4 : 1 + 3 + 5);
  });
}

TEST(ProcessGroup, CreateCommRequiresNonEmpty) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(1);
  World::run_one_per_processor(cluster, [](Proc& p) {
    ProcessGroup empty;
    EXPECT_THROW(create_comm(p, empty), hmpi::InvalidArgument);
  });
}

}  // namespace
}  // namespace hmpi::mp
