// Fault-injection semantics of the simulated world (docs/faults.md):
// crashes at virtual fault points, fail-fast receives against dead peers,
// link outages, deterministic message drop/delay, and the zero-cost-when-off
// guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"
#include "mpsim/trace.hpp"

namespace hmpi::mp {
namespace {

hnoc::Cluster uniform(int n) { return hnoc::testbeds::homogeneous(n, 100.0); }

World::Options fast_timeout() {
  World::Options o;
  o.deadlock_timeout_s = 1.0;
  return o;
}

TEST(FaultInjection, CrashBeforeSendRaisesPeerFailed) {
  World::Options options = fast_timeout();
  options.faults.crashes.push_back({1, 0.005});
  std::atomic<bool> saw_peer_failed{false};
  const auto result = World::run_one_per_processor(
      uniform(2),
      [&](Proc& p) {
        Comm comm = p.world_comm();
        if (p.rank() == 1) {
          p.compute(1.0);  // dies mid-computation at t=0.005 (never sends)
          comm.send_value(7, 0, 1);
        } else {
          try {
            comm.recv_value<int>(1, 1);
          } catch (const PeerFailedError& e) {
            saw_peer_failed.store(true);
            EXPECT_EQ(e.peer_world_rank(), 1);
            EXPECT_DOUBLE_EQ(e.failure_time(), 0.005);
          }
        }
      },
      options);
  EXPECT_TRUE(saw_peer_failed.load());
  EXPECT_EQ(result.failed_ranks, (std::vector<int>{1}));
}

TEST(FaultInjection, CrashAfterSendStillDeliversBufferedMessage) {
  World::Options options = fast_timeout();
  options.faults.crashes.push_back({1, 0.005});
  std::atomic<bool> got_value{false};
  std::atomic<bool> saw_peer_failed{false};
  World::run_one_per_processor(
      uniform(2),
      [&](Proc& p) {
        Comm comm = p.world_comm();
        if (p.rank() == 1) {
          comm.send_value(7, 0, 1);  // at t=0, before the crash
          p.compute(1.0);            // dies here
          comm.send_value(8, 0, 2);
        } else {
          got_value.store(comm.recv_value<int>(1, 1) == 7);
          try {
            comm.recv_value<int>(1, 2);
          } catch (const PeerFailedError&) {
            saw_peer_failed.store(true);
          }
        }
      },
      options);
  EXPECT_TRUE(got_value.load());
  EXPECT_TRUE(saw_peer_failed.load());
}

TEST(FaultInjection, PeerFailedRaisesFastNotAfterDeadlockTimeout) {
  World::Options options;  // default 30s deadlock timeout
  options.faults.crashes.push_back({1, 0.005});
  const auto wall_start = std::chrono::steady_clock::now();
  World::run_one_per_processor(
      uniform(2),
      [&](Proc& p) {
        if (p.rank() == 1) {
          p.compute(1.0);
        } else {
          EXPECT_THROW(p.world_comm().recv_value<int>(1, 1), PeerFailedError);
        }
      },
      options);
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  EXPECT_LT(wall_s, 2.0);  // O(ms) fail-fast, not the 30s timeout
}

TEST(FaultInjection, CrashEventRecordedInTrace) {
  Tracer tracer;
  World::Options options = fast_timeout();
  options.tracer = &tracer;
  options.faults.crashes.push_back({0, 0.25});
  World::run_one_per_processor(
      uniform(2), [](Proc& p) { p.compute(100.0); }, options);
  bool found = false;
  for (const TraceEvent& e : tracer.events()) {
    if (e.kind == TraceEvent::Kind::kCrash) {
      found = true;
      EXPECT_EQ(e.world_rank, 0);
      EXPECT_DOUBLE_EQ(e.start_time, 0.25);
    }
  }
  EXPECT_TRUE(found);
}

TEST(FaultInjection, LinkOutageDefersTransfer) {
  World::Options options = fast_timeout();
  // Directed link 0 -> 1 is down until t=5; the reply path is unaffected.
  options.faults.outages.push_back({0, 1, 0.0, 5.0});
  World::run_one_per_processor(
      uniform(2),
      [](Proc& p) {
        Comm comm = p.world_comm();
        if (p.rank() == 0) {
          comm.send_value(1, 1, 1);
        } else {
          Status s;
          comm.recv_value<int>(0, 1, &s);
          // Transfer starts when the outage lifts, not at t=0.
          EXPECT_GE(s.arrival_time, 5.0);
          EXPECT_GE(p.clock(), 5.0);
        }
      },
      options);
}

TEST(FaultInjection, AvailabilityCalendarDerivesFaults) {
  // A permanently-down machine crashes its process; every survivor observes
  // it through the normal fail-fast path.
  hnoc::Cluster cluster = hnoc::ClusterBuilder()
                              .add("up", 100.0)
                              .add("doomed", 100.0)
                              .availability(hnoc::Availability().down_from(0.005))
                              .build();
  const auto result = World::run_one_per_processor(
      cluster,
      [](Proc& p) {
        if (p.rank() == 1) {
          p.compute(1.0);
        } else {
          EXPECT_THROW(p.world_comm().recv_value<int>(1, 1), PeerFailedError);
        }
      },
      fast_timeout());
  EXPECT_EQ(result.failed_ranks, (std::vector<int>{1}));
}

TEST(FaultInjection, MessageDropsAreDeterministicUnderFixedSeed) {
  constexpr int kMessages = 40;
  FaultPlan plan;
  plan.drop_probability = 0.4;
  plan.seed = 12345;

  const auto run_once = [&](Tracer* tracer) {
    World::Options options = fast_timeout();
    options.faults = plan;
    options.tracer = tracer;
    return World::run_one_per_processor(
        uniform(2),
        [&](Proc& p) {
          Comm comm = p.world_comm();
          if (p.rank() == 0) {
            for (int i = 0; i < kMessages; ++i) comm.send_value(i, 1, 1);
          } else {
            // The survivor set is a pure function of (seed, src, dst, index),
            // so the receiver can predict exactly which messages arrive —
            // and non-overtaking delivery preserves their order.
            for (std::uint64_t i = 0; i < kMessages; ++i) {
              if (plan.drops_message(0, 1, i)) continue;
              EXPECT_EQ(comm.recv_value<int>(0, 1), static_cast<int>(i));
            }
          }
        },
        options);
  };

  Tracer first_trace;
  Tracer second_trace;
  const auto first = run_once(&first_trace);
  const auto second = run_once(&second_trace);
  EXPECT_EQ(first.clocks, second.clocks);  // byte-identical virtual times

  const auto dropped_indices = [](const Tracer& tracer) {
    std::vector<double> times;
    for (const TraceEvent& e : tracer.events()) {
      if (e.kind == TraceEvent::Kind::kDrop) times.push_back(e.start_time);
    }
    return times;
  };
  const auto drops = dropped_indices(first_trace);
  EXPECT_EQ(drops, dropped_indices(second_trace));
  EXPECT_GT(drops.size(), 0u);
  EXPECT_LT(drops.size(), static_cast<std::size_t>(kMessages));
}

TEST(FaultInjection, DelayedMessagesArriveLate) {
  World::Options options = fast_timeout();
  options.faults.delay_probability = 1.0;  // every user message delayed
  options.faults.delay_s = 2.0;
  World::run_one_per_processor(
      uniform(2),
      [](Proc& p) {
        Comm comm = p.world_comm();
        if (p.rank() == 0) {
          comm.send_value(1, 1, 1);
        } else {
          Status s;
          comm.recv_value<int>(0, 1, &s);
          EXPECT_GE(s.arrival_time, 2.0);
        }
      },
      options);
}

TEST(FaultInjection, ZeroCostWhenOff) {
  // The same workload with (a) no plan and (b) a plan whose faults never
  // fire must produce byte-identical virtual clocks.
  const auto workload = [](Proc& p) {
    Comm comm = p.world_comm();
    p.compute(3.0);
    const int next = (p.rank() + 1) % p.nprocs();
    const int prev = (p.rank() + p.nprocs() - 1) % p.nprocs();
    for (int i = 0; i < 5; ++i) {
      comm.send_value(p.rank() * 100 + i, next, 4);
      comm.recv_value<int>(prev, 4);
      p.compute(1.0);
    }
    comm.barrier();
  };

  const auto baseline =
      World::run_one_per_processor(uniform(4), workload, fast_timeout());

  World::Options armed = fast_timeout();
  armed.faults.crashes.push_back({0, 1e9});           // far beyond the run
  armed.faults.outages.push_back({0, 1, 1e9, 2e9});   // never overlaps
  armed.faults.seed = 7;
  const auto with_plan =
      World::run_one_per_processor(uniform(4), workload, armed);

  ASSERT_EQ(baseline.clocks.size(), with_plan.clocks.size());
  for (std::size_t i = 0; i < baseline.clocks.size(); ++i) {
    EXPECT_EQ(baseline.clocks[i], with_plan.clocks[i]) << "rank " << i;
  }
  EXPECT_EQ(baseline.makespan, with_plan.makespan);
  EXPECT_TRUE(with_plan.failed_ranks.empty());
}

TEST(FaultInjection, DeadlockErrorEnumeratesPendingState) {
  try {
    World::run_one_per_processor(
        uniform(2),
        [](Proc& p) {
          Comm comm = p.world_comm();
          if (p.rank() == 0) {
            comm.send_value(1, 1, 9);  // tag 9: never received
          } else {
            comm.recv_value<int>(0, 5);  // tag 5: never sent
          }
        },
        fast_timeout());
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pending state per rank"), std::string::npos) << what;
    EXPECT_NE(what.find("blocked recv(src=0, tag=5"), std::string::npos) << what;
    EXPECT_NE(what.find("unmatched incoming send"), std::string::npos) << what;
    EXPECT_NE(what.find("tag=9"), std::string::npos) << what;
  }
}

TEST(FaultInjection, PerReceiveTimeoutOverridesWorldTimeout) {
  World::Options options;  // default 30s deadlock timeout
  const auto wall_start = std::chrono::steady_clock::now();
  World::run_one_per_processor(
      uniform(2),
      [](Proc& p) {
        if (p.rank() == 0) {
          EXPECT_THROW(p.world_comm().recv_value<int>(
                           1, 1, nullptr, /*timeout_s=*/0.2),
                       DeadlockError);
        }
      },
      options);
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  EXPECT_LT(wall_s, 5.0);  // 0.2s override, not the 30s world default
}

TEST(FaultInjection, RevokedContextUnblocksReceiver) {
  World::run_one_per_processor(
      uniform(2),
      [](Proc& p) {
        Comm comm = p.world_comm();
        if (p.rank() == 0) {
          p.world().revoke_context(comm.context());
        } else {
          EXPECT_THROW(comm.recv_value<int>(0, 1), RevokedError);
        }
      },
      fast_timeout());
}

}  // namespace
}  // namespace hmpi::mp
