// Dual-engine differential suite: every program shape the simulator supports,
// run under the thread engine and the event engine and compared bit-for-bit
// (virtual clocks, stats, failed ranks, trace CSV) via differential.hpp.
//
// These are the pinning tests of the engine-equivalence contract in
// docs/simulator.md: heterogeneous p2p, every collective family, two-level
// topology-aware broadcast, fault plans (delay and crash/failover), the EM3D
// application, the HMPI runtime lifecycle, and the event engine's own
// worker-count invariance.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "apps/em3d/app.hpp"
#include "apps/em3d/parallel.hpp"
#include "hmpi/runtime.hpp"
#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"
#include "pmdl/model.hpp"

#include "differential.hpp"

namespace hmpi::mp {
namespace {

using testing::expect_engines_agree;
using testing::expect_identical_runs;
using testing::run_with_engine;

std::vector<int> identity_placement(int n) {
  std::vector<int> placement(static_cast<std::size_t>(n));
  std::iota(placement.begin(), placement.end(), 0);
  return placement;
}

// --- p2p over the paper's heterogeneous network ---------------------------

TEST(Differential, HeterogeneousP2pRing) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  const int n = cluster.size();
  expect_engines_agree(cluster, identity_placement(n), [n](Proc& p) {
    Comm comm = p.world_comm();
    const int next = (p.rank() + 1) % n;
    const int prev = (p.rank() + n - 1) % n;
    for (int round = 0; round < 5; ++round) {
      // Unequal compute so the ranks' clocks diverge and reconverge.
      p.compute(1.0 + 0.25 * p.rank());
      std::vector<double> out(64, p.rank() * 1000.0 + round);
      comm.send(std::span<const double>(out), next, round);
      std::vector<double> in(64, -1.0);
      comm.recv(std::span<double>(in), prev, round);
      EXPECT_DOUBLE_EQ(in[0], prev * 1000.0 + round);
    }
    comm.send_value(p.rank(), next, 99);
    EXPECT_EQ(comm.recv_value<int>(prev, 99), prev);
  });
}

TEST(Differential, NonblockingAndSendrecv) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_mm_network();
  const int n = cluster.size();
  expect_engines_agree(cluster, identity_placement(n), [n](Proc& p) {
    Comm comm = p.world_comm();
    const int partner = p.rank() ^ 1;
    if (partner < n) {
      std::vector<int> out{p.rank(), p.rank() * 2};
      std::vector<int> in(2, -1);
      comm.sendrecv(std::span<const int>(out), partner, 3,
                    std::span<int>(in), partner, 3);
      EXPECT_EQ(in[0], partner);
    }
    // Placeholder traffic (pure timing, no payload).
    const int next = (p.rank() + 1) % n;
    const int prev = (p.rank() + n - 1) % n;
    comm.send_placeholder(1 << 16, next, 7);
    comm.recv_placeholder(prev, 7);
  });
}

// --- collectives ----------------------------------------------------------

TEST(Differential, CollectiveSuite) {
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  const int n = cluster.size();
  expect_engines_agree(cluster, identity_placement(n), [n](Proc& p) {
    Comm comm = p.world_comm();
    comm.barrier();

    std::vector<int> data(8, p.rank() == 2 ? 42 : -1);
    comm.bcast(std::span<int>(data), 2);
    for (int v : data) EXPECT_EQ(v, 42);

    double in = static_cast<double>(p.rank() + 1);
    double out = 0.0;
    comm.allreduce(std::span<const double>(&in, 1), std::span<double>(&out, 1),
                   [](double a, double b) { return a + b; });
    EXPECT_DOUBLE_EQ(out, n * (n + 1) / 2.0);

    int mine = p.rank() * 3;
    std::vector<int> all(static_cast<std::size_t>(n), -1);
    comm.allgather(std::span<const int>(&mine, 1), std::span<int>(all));
    for (int i = 0; i < n; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i * 3);

    std::vector<long> rs_in(static_cast<std::size_t>(n), p.rank());
    std::vector<long> rs_out(1, -1);
    comm.reduce_scatter(std::span<const long>(rs_in), std::span<long>(rs_out),
                        [](long a, long b) { return a + b; });
    EXPECT_EQ(rs_out[0], static_cast<long>(n) * (n - 1) / 2);
  });
}

TEST(Differential, SubcommunicatorsAndSplit) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(8, 100.0);
  expect_engines_agree(cluster, identity_placement(8), [](Proc& p) {
    Comm world = p.world_comm();
    // Odd/even split, reversed key order inside each colour.
    Comm half = world.split(p.rank() % 2, -p.rank());
    int sum_in = p.rank();
    int sum_out = 0;
    half.allreduce(std::span<const int>(&sum_in, 1), std::span<int>(&sum_out, 1),
                   [](int a, int b) { return a + b; });
    EXPECT_EQ(sum_out, p.rank() % 2 == 0 ? 0 + 2 + 4 + 6 : 1 + 3 + 5 + 7);

    if (p.rank() == 1 || p.rank() == 4 || p.rank() == 6) {
      Comm trio = Comm::create_subcomm(p, {1, 4, 6});
      int v = p.rank() == 4 ? 17 : 0;
      trio.bcast_value(v, 1);  // root: world rank 4 is trio rank 1
      EXPECT_EQ(v, 17);
    }
  });
}

TEST(Differential, TwoLevelBcastOnTwoLevelCluster) {
  // Forcing kTwoLevel over a two-level cluster exercises the LAN-collapsed
  // schedule generation (coll::two_level_groups) identically in both engines.
  hnoc::Cluster cluster = hnoc::testbeds::two_level(3, 4, 80.0);
  World::Options options;
  options.coll.bcast = coll::BcastAlgo::kTwoLevel;
  options.coll.barrier = coll::BarrierAlgo::kTournament;
  expect_engines_agree(
      cluster, identity_placement(12),
      [](Proc& p) {
        Comm comm = p.world_comm();
        std::vector<double> payload(256, p.rank() == 0 ? 3.5 : 0.0);
        comm.bcast(std::span<double>(payload), 0);
        for (double v : payload) EXPECT_DOUBLE_EQ(v, 3.5);
        comm.barrier();
      },
      options);
}

// --- fault plans ----------------------------------------------------------

TEST(Differential, MessageDelayFaults) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(6, 100.0);
  World::Options options;
  options.faults.delay_probability = 0.5;
  options.faults.delay_s = 0.125;
  options.faults.seed = 2003;
  expect_engines_agree(
      cluster, identity_placement(6),
      [](Proc& p) {
        Comm comm = p.world_comm();
        const int n = p.nprocs();
        const int next = (p.rank() + 1) % n;
        const int prev = (p.rank() + n - 1) % n;
        for (int round = 0; round < 8; ++round) {
          comm.send_value(round * 10 + p.rank(), next, round);
          EXPECT_EQ(comm.recv_value<int>(prev, round), round * 10 + prev);
        }
      },
      options);
}

TEST(Differential, LinkOutageDefersTransfers) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(3, 100.0);
  World::Options options;
  options.faults.outages.push_back({0, 1, 0.0, 0.5});
  expect_engines_agree(
      cluster, identity_placement(3),
      [](Proc& p) {
        Comm comm = p.world_comm();
        if (p.rank() == 0) comm.send_value(11, 1, 1);
        if (p.rank() == 1) {
          EXPECT_EQ(comm.recv_value<int>(0, 1), 11);
        }
        comm.barrier();
      },
      options);
}

TEST(Differential, CrashFailoverRing) {
  // The EM3D-failover shape: rank 1 dies mid-ring at t=1.0. Its direct
  // receiver observes a fail-fast PeerFailedError; the remaining survivor is
  // starved by the stopped (but alive) peer and gets DeadlockError. Both
  // engines must agree on everything, including which ranks failed.
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(3, 100.0);
  World::Options options;
  options.deadlock_timeout_s = 1.0;
  options.faults.crashes.push_back({1, 1.0});
  std::atomic<int> failures{0};
  testing::EngineRun pinned = expect_engines_agree(
      cluster, identity_placement(3),
      [&](Proc& p) {
        Comm comm = p.world_comm();
        const int n = p.nprocs();
        const int next = (p.rank() + 1) % n;
        const int prev = (p.rank() + n - 1) % n;
        bool failed = false;
        try {
          for (int i = 0; i < 1000; ++i) {
            p.compute(1.0);  // rank 1's clock crosses t=1.0 in here
            comm.send_value(i, next, 1);
            comm.recv_value<int>(prev, 1);
          }
        } catch (const PeerFailedError&) {
          failed = true;
        } catch (const DeadlockError&) {
          failed = true;
        }
        EXPECT_TRUE(failed);
        failures.fetch_add(1);
      },
      options);
  EXPECT_EQ(pinned.result.failed_ranks, (std::vector<int>{1}));
  // 2 survivors per engine run; expect_engines_agree ran both engines once.
  EXPECT_EQ(failures.load(), 4);
}

// --- applications and the runtime stack -----------------------------------

apps::em3d::GeneratorConfig em3d_config() {
  apps::em3d::GeneratorConfig config;
  config.nodes_per_subbody = {40, 80, 24, 60};
  config.degree = 4;
  config.remote_fraction = 0.2;
  config.seed = 7;
  return config;
}

TEST(Differential, Em3dParallelRealMode) {
  apps::em3d::System system = apps::em3d::generate(em3d_config());
  const double expected = apps::em3d::serial_run(system, 2);
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  expect_engines_agree(cluster, {0, 6, 7, 8}, [&](Proc& p) {
    apps::em3d::ParallelResult result = apps::em3d::run_parallel(
        p.world_comm(), system, 2, apps::em3d::WorkMode::kReal);
    EXPECT_NEAR(result.checksum, expected, 1e-9 + 1e-12 * std::abs(expected));
  });
}

/// Compute-only model, same shape as runtime_test.cpp / observability_test.
pmdl::Model compute_model() {
  using pmdl::InstanceBuilder;
  using pmdl::ParamValue;
  using pmdl::ScheduleSink;
  return pmdl::Model::from_factory(
      "compute", 1, [](std::span<const ParamValue> params) {
        const auto& volumes = std::get<std::vector<long long>>(params[0]);
        InstanceBuilder b("compute");
        const auto p = static_cast<long long>(volumes.size());
        b.shape({p});
        for (long long a = 0; a < p; ++a) {
          b.node_volume(a,
                        static_cast<double>(volumes[static_cast<std::size_t>(a)]));
        }
        b.scheme([p](ScheduleSink& s) {
          s.par_begin();
          for (long long a = 0; a < p; ++a) {
            s.par_iter_begin();
            const long long c[1] = {a};
            s.compute(c, 100.0);
          }
          s.par_end();
        });
        return b.build();
      });
}

TEST(Differential, HmpiRuntimeLifecycle) {
  // Full runtime stack: recon benchmark, group creation (mapper + estimator
  // + collective tuner), a group collective, and teardown. This is the
  // deepest program shape in the repo — it exercises the process-local
  // storage layer (Runtime and telemetry spans per simulated process).
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  pmdl::Model model = compute_model();
  expect_engines_agree(cluster, identity_placement(cluster.size()),
                       [&](Proc& p) {
    hmpi::Runtime rt(p);
    rt.recon([](Proc& q) { q.compute(1.0); });
    auto group = rt.group_create(
        model, {pmdl::array(std::vector<long long>(
                   static_cast<std::size_t>(p.nprocs()), 10))});
    if (group.has_value()) {
      double in = 1.0, out = 0.0;
      group->comm().allreduce(std::span<const double>(&in, 1),
                              std::span<double>(&out, 1),
                              [](double a, double b) { return a + b; });
      EXPECT_DOUBLE_EQ(out, static_cast<double>(group->size()));
    }
  });
}

// --- the event engine against itself --------------------------------------

TEST(Differential, EventWorkerCountsAgree) {
  // Dispatch is globally sequential regardless of how many workers host the
  // fiber stacks, so W=1, W=2, and W=8 must be indistinguishable.
  hnoc::Cluster cluster = hnoc::testbeds::paper_em3d_network();
  const int n = cluster.size();
  auto body = [n](Proc& p) {
    Comm comm = p.world_comm();
    const int next = (p.rank() + 1) % n;
    const int prev = (p.rank() + n - 1) % n;
    for (int round = 0; round < 4; ++round) {
      p.compute(0.5 + 0.1 * p.rank());
      comm.send_value(p.rank() + round, next, round);
      comm.recv_value<int>(prev, round);
      comm.barrier();
    }
  };
  testing::EngineRun w1 = run_with_engine(sim::SimEngine::kEvent, cluster,
                                          identity_placement(n), body, {}, 1);
  testing::EngineRun w2 = run_with_engine(sim::SimEngine::kEvent, cluster,
                                          identity_placement(n), body, {}, 2);
  testing::EngineRun w8 = run_with_engine(sim::SimEngine::kEvent, cluster,
                                          identity_placement(n), body, {}, 8);
  expect_identical_runs(w1, w2);
  expect_identical_runs(w1, w8);
}

}  // namespace
}  // namespace hmpi::mp
