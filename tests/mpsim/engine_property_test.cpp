// Property test of the engine-equivalence contract: randomized simulated
// programs (p2p ring shifts, pair exchanges, collectives, compute/elapse,
// message-delay and crash fault plans) generated from a seed, run under the
// thread engine and the event engine at worker counts {1, 2, 8}, and compared
// bit-for-bit. On a mismatch the failing program is shrunk by greedy round
// removal before reporting, so the regression lands as a minimal script.
//
// Message drops are deliberately excluded: a dropped message turns a receive
// into a deadlock-timeout race, which is outside the deterministic-matching
// class the contract covers (docs/simulator.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"
#include "support/error.hpp"

#include "differential.hpp"

namespace hmpi::mp {
namespace {

using testing::run_with_engine;

struct Round {
  enum class Kind {
    kCompute,
    kElapse,
    kRingShift,
    kPairExchange,
    kBcast,
    kAllreduce,
    kAllgather,
    kBarrier,
  };
  Kind kind = Kind::kBarrier;
  int a = 0;     ///< Kind-specific integer (shift distance, root, ...).
  int bytes = 8; ///< Payload element count for message rounds.
};

struct Script {
  int nprocs = 2;
  std::vector<Round> rounds;
  bool delay_faults = false;
  bool crash_last_rank = false;
  double crash_time = 0.0;
  std::uint64_t fault_seed = 0;
};

const char* kind_name(Round::Kind k) {
  switch (k) {
    case Round::Kind::kCompute: return "compute";
    case Round::Kind::kElapse: return "elapse";
    case Round::Kind::kRingShift: return "ring_shift";
    case Round::Kind::kPairExchange: return "pair_exchange";
    case Round::Kind::kBcast: return "bcast";
    case Round::Kind::kAllreduce: return "allreduce";
    case Round::Kind::kAllgather: return "allgather";
    case Round::Kind::kBarrier: return "barrier";
  }
  return "?";
}

std::string describe(const Script& s) {
  std::ostringstream out;
  out << "nprocs=" << s.nprocs;
  if (s.delay_faults) out << " delay_faults(seed=" << s.fault_seed << ")";
  if (s.crash_last_rank) out << " crash(last@" << s.crash_time << ")";
  for (const Round& r : s.rounds) {
    out << "\n  " << kind_name(r.kind) << " a=" << r.a << " n=" << r.bytes;
  }
  return out.str();
}

Script generate(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Script s;
  s.nprocs = 2 + static_cast<int>(rng() % 5);  // 2..6
  const int rounds = 3 + static_cast<int>(rng() % 10);
  for (int i = 0; i < rounds; ++i) {
    Round r;
    r.kind = static_cast<Round::Kind>(rng() % 8);
    r.a = static_cast<int>(rng() % 64);
    r.bytes = 1 + static_cast<int>(rng() % 512);
    s.rounds.push_back(r);
  }
  if (rng() % 3 == 0) {
    s.delay_faults = true;
    s.fault_seed = rng();
  }
  if (rng() % 4 == 0) {
    s.crash_last_rank = true;
    // Scripts run a few virtual milliseconds; draw from [0.5ms, 10.5ms] so
    // the crash usually lands mid-program rather than after it ends.
    s.crash_time = 0.0005 + static_cast<double>(rng() % 100) / 10000.0;
  }
  return s;
}

/// Interprets one script round for one process. Every rank executes the same
/// script, so message patterns always match up.
void run_round(Proc& p, const Comm& comm, const Round& r, int tag) {
  const int n = p.nprocs();
  const int rank = p.rank();
  switch (r.kind) {
    case Round::Kind::kCompute:
      p.compute(0.05 + 0.01 * ((rank * 7 + r.a) % 5));
      break;
    case Round::Kind::kElapse:
      p.elapse(0.001 * (1 + r.a % 9));
      break;
    case Round::Kind::kRingShift: {
      const int d = 1 + r.a % (n - 1);
      const int dst = (rank + d) % n;
      const int src = (rank + n - d) % n;
      std::vector<double> out(static_cast<std::size_t>(r.bytes),
                              rank * 1.5 + r.a);
      std::vector<double> in(static_cast<std::size_t>(r.bytes));
      comm.send(std::span<const double>(out), dst, tag);
      comm.recv(std::span<double>(in), src, tag);
      break;
    }
    case Round::Kind::kPairExchange: {
      const int partner = rank ^ 1;
      if (partner < n) {
        std::vector<int> out(static_cast<std::size_t>(r.bytes), rank);
        std::vector<int> in(static_cast<std::size_t>(r.bytes));
        comm.sendrecv(std::span<const int>(out), partner, tag,
                      std::span<int>(in), partner, tag);
      }
      break;
    }
    case Round::Kind::kBcast: {
      std::vector<double> data(static_cast<std::size_t>(r.bytes),
                               rank == r.a % n ? 2.5 : 0.0);
      comm.bcast(std::span<double>(data), r.a % n);
      break;
    }
    case Round::Kind::kAllreduce: {
      std::vector<double> in(static_cast<std::size_t>(r.bytes % 64 + 1),
                             rank + 0.5);
      std::vector<double> out(in.size());
      comm.allreduce(std::span<const double>(in), std::span<double>(out),
                     [](double a, double b) { return a + b; });
      break;
    }
    case Round::Kind::kAllgather: {
      const int per = r.bytes % 16 + 1;
      std::vector<int> mine(static_cast<std::size_t>(per), rank);
      std::vector<int> all(static_cast<std::size_t>(per * n));
      comm.allgather(std::span<const int>(mine), std::span<int>(all));
      break;
    }
    case Round::Kind::kBarrier:
      comm.barrier();
      break;
  }
}

World::Options options_for(const Script& s) {
  World::Options options;
  // Crash scripts starve survivors blocked on stopped-but-alive peers; the
  // thread engine resolves those only via the real-time deadlock timeout, so
  // keep it short there (the event engine detects the stall structurally).
  options.deadlock_timeout_s = s.crash_last_rank ? 0.75 : 5.0;
  if (s.delay_faults) {
    options.faults.delay_probability = 0.4;
    options.faults.delay_s = 0.02;
    options.faults.seed = s.fault_seed;
  }
  if (s.crash_last_rank) {
    options.faults.crashes.push_back({s.nprocs - 1, s.crash_time});
  }
  return options;
}

testing::EngineRun run_script(const Script& s, sim::SimEngine engine,
                              int workers) {
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(s.nprocs, 100.0);
  std::vector<int> placement(static_cast<std::size_t>(s.nprocs));
  for (int i = 0; i < s.nprocs; ++i) placement[static_cast<std::size_t>(i)] = i;
  auto body = [&s](Proc& p) {
    Comm comm = p.world_comm();
    // A crashed peer surfaces as PeerFailedError on direct receivers and as
    // DeadlockError on survivors transitively starved by a stopped (but
    // alive) peer; both leave the virtual state untouched, so the engines
    // stop each rank at the same round with the same clocks and stats.
    // ProcessKilledError must NOT be caught: it is the kill-unwinding of the
    // crashed rank itself.
    try {
      int tag = 1;
      for (const Round& r : s.rounds) run_round(p, comm, r, tag++);
    } catch (const PeerFailedError&) {
    } catch (const RevokedError&) {
    } catch (const DeadlockError&) {
    }
  };
  return run_with_engine(engine, cluster, std::move(placement), body,
                         options_for(s), workers);
}

/// Non-asserting comparison; returns "" when the runs are bit-identical.
std::string diff_runs(const testing::EngineRun& a, const testing::EngineRun& b) {
  std::ostringstream out;
  if (a.threw != b.threw) {
    out << "threw: " << a.threw << " (" << a.error << ") vs " << b.threw
        << " (" << b.error << ")";
    return out.str();
  }
  // Agreed-upon aborts tear the world down at real-time-racy points; the
  // partial traces/stats are not comparable (see differential.hpp).
  if (a.threw) return "";
  if (a.result.clocks != b.result.clocks) return "clocks differ";
  if (a.result.makespan != b.result.makespan) return "makespan differs";
  if (a.result.failed_ranks != b.result.failed_ranks)
    return "failed_ranks differ";
  if (a.result.stats.size() != b.result.stats.size()) return "stats size";
  for (std::size_t r = 0; r < a.result.stats.size(); ++r) {
    const Stats& x = a.result.stats[r];
    const Stats& y = b.result.stats[r];
    if (x.msgs_sent != y.msgs_sent || x.bytes_sent != y.bytes_sent ||
        x.msgs_received != y.msgs_received ||
        x.bytes_received != y.bytes_received ||
        x.compute_units != y.compute_units ||
        x.compute_time != y.compute_time || x.wait_time != y.wait_time) {
      out << "stats of rank " << r << " differ";
      return out.str();
    }
  }
  if (a.trace_csv != b.trace_csv) return "trace CSV differs";
  return "";
}

/// Runs the script on both engines (event at `workers`) and diffs.
std::string check_script(const Script& s, int workers) {
  testing::EngineRun t = run_script(s, sim::SimEngine::kThread, 1);
  testing::EngineRun e = run_script(s, sim::SimEngine::kEvent, workers);
  return diff_runs(t, e);
}

/// Greedy round-removal shrink: keeps any single-round deletion that still
/// reproduces a mismatch, until no deletion does.
Script shrink(Script s, int workers) {
  bool progressed = true;
  while (progressed && !s.rounds.empty()) {
    progressed = false;
    for (std::size_t i = 0; i < s.rounds.size(); ++i) {
      Script candidate = s;
      candidate.rounds.erase(candidate.rounds.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (!check_script(candidate, workers).empty()) {
        s = std::move(candidate);
        progressed = true;
        break;
      }
    }
  }
  return s;
}

class EnginePropertyP : public ::testing::TestWithParam<int> {};

TEST_P(EnginePropertyP, RandomProgramsMatchAcrossEngines) {
  const int workers = GetParam();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Script s = generate(seed);
    std::string mismatch = check_script(s, workers);
    if (!mismatch.empty()) {
      Script minimal = shrink(s, workers);
      ADD_FAILURE() << "engines disagree (" << mismatch << ") at seed " << seed
                    << ", workers=" << workers
                    << "\nminimal failing script:\n" << describe(minimal);
      return;  // one counterexample is enough; don't spam shrink runs
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, EnginePropertyP,
                         ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace hmpi::mp
