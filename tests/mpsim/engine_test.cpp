// Unit tests of the event engine's public contracts (docs/simulator.md):
// env-var resolution of engine/worker/stack knobs, the deterministic
// tie-break rule for simultaneous events (lowest world rank runs first), and
// the engine's deadlock diagnosis parity with the thread engine.
#include "mpsim/engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "hnoc/cluster.hpp"
#include "mpsim/comm.hpp"
#include "support/error.hpp"

#include "differential.hpp"

namespace hmpi::mp {
namespace {

/// Scoped setenv/unsetenv (tests in this binary run single-threaded).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(EngineResolve, ExplicitChoiceIgnoresEnv) {
  ScopedEnv env("HMPI_SIM_ENGINE", "event");
  EXPECT_EQ(sim::resolve_engine(sim::SimEngine::kThread),
            sim::SimEngine::kThread);
  EXPECT_EQ(sim::resolve_engine(sim::SimEngine::kEvent),
            sim::SimEngine::kEvent);
}

TEST(EngineResolve, AutoReadsHmpiSimEngine) {
  {
    ScopedEnv env("HMPI_SIM_ENGINE", nullptr);
    EXPECT_EQ(sim::resolve_engine(sim::SimEngine::kAuto),
              sim::SimEngine::kThread);
  }
  {
    ScopedEnv env("HMPI_SIM_ENGINE", "event");
    EXPECT_EQ(sim::resolve_engine(sim::SimEngine::kAuto),
              sim::SimEngine::kEvent);
  }
  {
    ScopedEnv env("HMPI_SIM_ENGINE", "fiber");
    EXPECT_EQ(sim::resolve_engine(sim::SimEngine::kAuto),
              sim::SimEngine::kEvent);
  }
  {
    ScopedEnv env("HMPI_SIM_ENGINE", "thread");
    EXPECT_EQ(sim::resolve_engine(sim::SimEngine::kAuto),
              sim::SimEngine::kThread);
  }
}

TEST(EngineResolve, WorkersAndStackDefaultsAndEnv) {
  {
    ScopedEnv w("HMPI_SIM_WORKERS", nullptr);
    ScopedEnv s("HMPI_SIM_STACK_KB", nullptr);
    EXPECT_EQ(sim::resolve_workers(0), 1);
    EXPECT_EQ(sim::resolve_workers(4), 4);
    EXPECT_EQ(sim::resolve_stack_bytes(0), 512u * 1024u);
    EXPECT_EQ(sim::resolve_stack_bytes(1 << 20), std::size_t{1} << 20);
  }
  {
    ScopedEnv w("HMPI_SIM_WORKERS", "8");
    ScopedEnv s("HMPI_SIM_STACK_KB", "256");
    EXPECT_EQ(sim::resolve_workers(0), 8);
    EXPECT_EQ(sim::resolve_stack_bytes(0), 256u * 1024u);
  }
}

TEST(EngineTieBreak, AnySourceReceivesLowerRankFirst) {
  // The pinned determinism contract: when several fibers are runnable at the
  // same virtual time, the event engine dispatches the lowest world rank
  // first. Ranks 1 and 2 send to rank 0 at identical virtual clocks over
  // identical links, so rank 1's message is always delivered first and a
  // kAnySource receiver matches it first. (Under the thread engine this
  // program is a host-scheduling race — exactly the class the differential
  // contract excludes — so the pin is event-engine-only, and repeated to
  // catch accidental dependence on heap insertion order.)
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(3, 100.0);
  World::Options options;
  options.engine = sim::SimEngine::kEvent;
  for (int repeat = 0; repeat < 10; ++repeat) {
    std::vector<int> order;
    World::run_one_per_processor(
        cluster,
        [&](Proc& p) {
          Comm comm = p.world_comm();
          if (p.rank() == 0) {
            for (int i = 0; i < 2; ++i) {
              Status status;
              comm.recv_value<int>(kAnySource, 5, &status);
              order.push_back(status.source);
            }
          } else {
            comm.send_value(p.rank() * 10, 0, 5);
          }
        },
        options);
    EXPECT_EQ(order, (std::vector<int>{1, 2})) << "repeat " << repeat;
  }
}

TEST(EngineTieBreak, SimultaneousComputeFinishIsRankOrdered) {
  // Same contract through the trace: equal-duration computes started at t=0
  // produce trace events sorted by (virtual time, world rank) in both
  // engines, byte-identically.
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(4, 100.0);
  testing::expect_engines_agree(cluster, {0, 1, 2, 3}, [](Proc& p) {
    p.compute(2.0);
    p.world_comm().barrier();
  });
}

TEST(EngineTieBreak, SharedLinkContentionIsDeterministic) {
  // Several processes per machine all competing for the same directed links.
  // Under the thread engine, reservation order on a shared link is a
  // host-scheduling race; the event engine arbitrates by virtual ready time
  // (ties by rank), so repeated runs are bit-identical — the strictly
  // stronger determinism guarantee the event engine adds.
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(3, 100.0);
  std::vector<int> placement{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2};
  World::Options options;
  options.engine = sim::SimEngine::kEvent;
  auto run_once = [&] {
    return testing::run_with_engine(
        sim::SimEngine::kEvent, cluster, placement, [](Proc& p) {
          Comm comm = p.world_comm();
          const int n = p.nprocs();
          // Every rank floods rank (r+5)%n — many senders per link.
          comm.send_placeholder(4096, (p.rank() + 5) % n, 1);
          comm.recv_placeholder((p.rank() + n - 5) % n, 1);
          comm.send_placeholder(512, (p.rank() + 7) % n, 2);
          comm.recv_placeholder((p.rank() + n - 7) % n, 2);
        });
  };
  testing::EngineRun first = run_once();
  testing::EngineRun second = run_once();
  testing::expect_identical_runs(first, second);
}

TEST(EngineDeadlock, EventEngineDiagnosesStalledReceive) {
  // A receive nobody will ever satisfy. The thread engine diagnoses this
  // after a real-time timeout; the event engine detects it structurally (no
  // runnable fiber) and must raise the same error type without waiting.
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2, 100.0);
  World::Options options;
  options.engine = sim::SimEngine::kEvent;
  options.deadlock_timeout_s = 0.2;
  EXPECT_THROW(World::run_one_per_processor(
                   cluster,
                   [](Proc& p) {
                     if (p.rank() == 0) {
                       p.world_comm().recv_value<int>(1, 1);  // never sent
                     }
                   },
                   options),
               DeadlockError);
}

TEST(EngineStacks, FiberStackSizeIsConfigurable) {
  // A deliberately deep (but bounded) recursion inside each fiber, with an
  // enlarged stack. Exercises the guard-paged stack allocation path.
  hnoc::Cluster cluster = hnoc::testbeds::homogeneous(2, 100.0);
  World::Options options;
  options.engine = sim::SimEngine::kEvent;
  options.fiber_stack_bytes = 2 * 1024 * 1024;
  World::run_one_per_processor(
      cluster,
      [](Proc& p) {
        // ~100 frames x ~4 KiB of locals: comfortably inside 2 MiB, well
        // outside a tiny stack.
        struct Recur {
          static int deep(int depth) {
            volatile char pad[4096];
            pad[0] = static_cast<char>(depth);
            if (depth == 0) return pad[0];
            return deep(depth - 1) + 1;
          }
        };
        EXPECT_EQ(Recur::deep(100), 100);
        p.world_comm().barrier();
      },
      options);
}

}  // namespace
}  // namespace hmpi::mp
