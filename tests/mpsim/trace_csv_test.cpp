// Tracer export formats: the stable CSV contract (header, field order, kind
// names, the kMapperSearch legacy column mapping) and the Chrome trace_event
// JSON view of the same events (docs/observability.md).
#include "mpsim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "telemetry/chrome_trace.hpp"
#include "telemetry/json.hpp"

namespace hmpi::mp {
namespace {

constexpr char kHeader[] =
    "kind,world_rank,processor,peer,tag,context,bytes,units,start,end";

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(TraceCsv, EmptyTracerWritesHeaderOnly) {
  Tracer tracer;
  std::ostringstream os;
  tracer.write_csv(os);
  EXPECT_EQ(os.str(), std::string(kHeader) + "\n");
}

TEST(TraceCsv, FieldOrderMatchesHeader) {
  Tracer tracer;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kSend;
  e.world_rank = 2;
  e.processor = 3;
  e.peer = 1;
  e.tag = 7;
  e.context = 4;
  e.bytes = 1024;
  e.units = 0.0;
  e.start_time = 1.5;
  e.end_time = 2.5;
  tracer.record(e);
  const auto lines = lines_of([&] {
    std::ostringstream os;
    tracer.write_csv(os);
    return os.str();
  }());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], kHeader);
  EXPECT_EQ(lines[1], "send,2,3,1,7,4,1024,0,1.5,2.5");
}

TEST(TraceCsv, EventsAreSortedByStartTime) {
  Tracer tracer;
  TraceEvent late;
  late.kind = TraceEvent::Kind::kCompute;
  late.world_rank = 0;
  late.start_time = 9.0;
  TraceEvent early;
  early.kind = TraceEvent::Kind::kRecv;
  early.world_rank = 1;
  early.start_time = 1.0;
  tracer.record(late);
  tracer.record(early);
  std::ostringstream os;
  tracer.write_csv(os);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1].substr(0, 5), "recv,");
  EXPECT_EQ(lines[2].substr(0, 8), "compute,");
}

TEST(TraceCsv, KindNamesAreStable) {
  EXPECT_STREQ(kind_name(TraceEvent::Kind::kSend), "send");
  EXPECT_STREQ(kind_name(TraceEvent::Kind::kRecv), "recv");
  EXPECT_STREQ(kind_name(TraceEvent::Kind::kCompute), "compute");
  EXPECT_STREQ(kind_name(TraceEvent::Kind::kCrash), "crash");
  EXPECT_STREQ(kind_name(TraceEvent::Kind::kDrop), "drop");
  EXPECT_STREQ(kind_name(TraceEvent::Kind::kDelay), "delay");
  EXPECT_STREQ(kind_name(TraceEvent::Kind::kLinkBlocked), "link_blocked");
  EXPECT_STREQ(kind_name(TraceEvent::Kind::kSuspect), "suspect");
  EXPECT_STREQ(kind_name(TraceEvent::Kind::kRecover), "recover");
  EXPECT_STREQ(kind_name(TraceEvent::Kind::kMapperSearch), "mapper_search");
  EXPECT_STREQ(kind_name(TraceEvent::Kind::kEstCompile), "est_compile");
}

TEST(TraceCsv, EstCompilePacksOpsAndSecondsIntoLegacyColumns) {
  // Same convention as mapper_search: the honest payload is
  // TraceEvent::compile; the CSV packs plan ops into bytes and compile
  // seconds into units.
  Tracer tracer;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kEstCompile;
  e.world_rank = 0;
  e.processor = 0;
  e.compile.ops = 512;
  e.compile.seconds = 0.25;
  e.start_time = 1.0;
  e.end_time = 1.0;
  tracer.record(e);
  std::ostringstream os;
  tracer.write_csv(os);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "est_compile,0,0,-1,0,0,512,0.25,1,1");

  std::ostringstream chrome;
  tracer.write_chrome_json(chrome);
  std::string error;
  const auto doc = telemetry::parse_json(chrome.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  bool saw_compile = false;
  for (const telemetry::JsonValue& ev : doc->find("traceEvents")->array) {
    if (ev.find("name")->string != "est_compile") continue;
    saw_compile = true;
    EXPECT_EQ(ev.find("ph")->string, "i");  // instant: zero virtual time
    EXPECT_DOUBLE_EQ(ev.find("args")->find("ops")->number, 512.0);
    EXPECT_DOUBLE_EQ(ev.find("args")->find("seconds")->number, 0.25);
  }
  EXPECT_TRUE(saw_compile);
}

TEST(TraceCsv, MapperSearchKeepsLegacyColumnEncoding) {
  // The honest payload lives in TraceEvent::search; the CSV keeps the
  // historical packing (threads in peer, hit-rate percent in tag,
  // evaluations in bytes, wall seconds in units) for existing consumers.
  Tracer tracer;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kMapperSearch;
  e.world_rank = 0;
  e.processor = 0;
  e.search.evaluations = 250;
  e.search.hit_rate = 0.75;
  e.search.threads = 4;
  e.search.wall_seconds = 0.5;
  e.start_time = 3.0;
  e.end_time = 3.0;
  tracer.record(e);
  std::ostringstream os;
  tracer.write_csv(os);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "mapper_search,0,0,4,75,0,250,0.5,3,3");
}

TEST(TraceCsv, ChromeJsonIsValidAndCarriesSearchArgs) {
  Tracer tracer;
  TraceEvent compute;
  compute.kind = TraceEvent::Kind::kCompute;
  compute.world_rank = 1;
  compute.processor = 1;
  compute.units = 50.0;
  compute.start_time = 0.5;
  compute.end_time = 1.0;
  tracer.record(compute);
  TraceEvent search;
  search.kind = TraceEvent::Kind::kMapperSearch;
  search.world_rank = 0;
  search.processor = 0;
  search.search.evaluations = 9;
  search.search.hit_rate = 1.0;
  search.start_time = 2.0;
  search.end_time = 2.0;
  tracer.record(search);

  std::ostringstream os;
  tracer.write_chrome_json(os);
  std::string error;
  const auto doc = telemetry::parse_json(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const telemetry::JsonValue* trace = doc->find("traceEvents");
  ASSERT_NE(trace, nullptr);
  ASSERT_TRUE(trace->is_array());

  bool saw_compute = false;
  bool saw_search = false;
  for (const telemetry::JsonValue& ev : trace->array) {
    const std::string& name = ev.find("name")->string;
    if (name == "compute") {
      saw_compute = true;
      EXPECT_EQ(ev.find("ph")->string, "X");
      EXPECT_DOUBLE_EQ(ev.find("pid")->number, telemetry::kVirtualPid);
      EXPECT_DOUBLE_EQ(ev.find("tid")->number, 1.0);
      EXPECT_DOUBLE_EQ(ev.find("ts")->number, 0.5e6);
      EXPECT_DOUBLE_EQ(ev.find("dur")->number, 0.5e6);
      EXPECT_DOUBLE_EQ(ev.find("args")->find("units")->number, 50.0);
    }
    if (name == "mapper_search") {
      saw_search = true;
      EXPECT_EQ(ev.find("ph")->string, "i");  // instant: zero virtual time
      EXPECT_DOUBLE_EQ(ev.find("args")->find("evaluations")->number, 9.0);
      EXPECT_DOUBLE_EQ(ev.find("args")->find("hit_rate")->number, 1.0);
    }
  }
  EXPECT_TRUE(saw_compute);
  EXPECT_TRUE(saw_search);
}

}  // namespace
}  // namespace hmpi::mp
