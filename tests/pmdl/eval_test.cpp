// White-box tests of PMDL expression evaluation (C arithmetic semantics)
// via tiny models whose node volumes exercise the expression in question.
#include <gtest/gtest.h>

#include "pmdl/model.hpp"
#include "support/error.hpp"

namespace hmpi::pmdl {
namespace {

/// Evaluates `expr` (over parameters a, b bound to the given values) as the
/// node volume of a one-processor model and returns the result.
double eval_with(const std::string& expr, long long a, long long b) {
  // Offset by a constant so that negative expression results survive the
  // node-volume non-negativity check.
  Model m = Model::from_source(
      "algorithm E(int a, int b) { coord I=1; node { 1: bench*((" + expr +
      ") + 100000); }; }");
  return m.instantiate({scalar(a), scalar(b)}).node_volume(0) - 100000.0;
}

TEST(Eval, IntegerArithmetic) {
  EXPECT_DOUBLE_EQ(eval_with("a + b", 3, 4), 7.0);
  EXPECT_DOUBLE_EQ(eval_with("a - b", 3, 4), -1.0);
  EXPECT_DOUBLE_EQ(eval_with("a * b", 3, 4), 12.0);
}

TEST(Eval, IntegerDivisionTruncates) {
  // C semantics: 7 / 2 == 3 — the language is a C dialect, and the paper's
  // expressions like d[I]/k and 100/n rely on this.
  EXPECT_DOUBLE_EQ(eval_with("a / b", 7, 2), 3.0);
  EXPECT_DOUBLE_EQ(eval_with("a / b", 100, 9), 11.0);
}

TEST(Eval, Modulo) {
  EXPECT_DOUBLE_EQ(eval_with("a % b", 7, 3), 1.0);
  EXPECT_DOUBLE_EQ(eval_with("a % b", 9, 3), 0.0);
}

TEST(Eval, DivisionByZeroThrows) {
  EXPECT_THROW(eval_with("a / b", 1, 0), PmdlError);
  EXPECT_THROW(eval_with("a % b", 1, 0), PmdlError);
}

TEST(Eval, Comparisons) {
  EXPECT_DOUBLE_EQ(eval_with("a < b", 1, 2), 1.0);
  EXPECT_DOUBLE_EQ(eval_with("a > b", 1, 2), 0.0);
  EXPECT_DOUBLE_EQ(eval_with("a <= b", 2, 2), 1.0);
  EXPECT_DOUBLE_EQ(eval_with("a >= b", 1, 2), 0.0);
  EXPECT_DOUBLE_EQ(eval_with("a == b", 2, 2), 1.0);
  EXPECT_DOUBLE_EQ(eval_with("a != b", 2, 2), 0.0);
}

TEST(Eval, LogicalOperators) {
  EXPECT_DOUBLE_EQ(eval_with("a && b", 1, 0), 0.0);
  EXPECT_DOUBLE_EQ(eval_with("a && b", 2, 3), 1.0);
  EXPECT_DOUBLE_EQ(eval_with("a || b", 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(eval_with("a || b", 0, 5), 1.0);
  EXPECT_DOUBLE_EQ(eval_with("!a", 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(eval_with("!a", 7, 0), 0.0);
}

TEST(Eval, ShortCircuitPreventsDivisionByZero) {
  // b == 0, so a != 0 && 1/b would crash without short-circuiting.
  EXPECT_DOUBLE_EQ(eval_with("(a != 0) && (1 / b)", 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(eval_with("(a == 0) || (1 / b)", 0, 0), 1.0);
}

TEST(Eval, UnaryMinus) {
  EXPECT_DOUBLE_EQ(eval_with("-a + b", 3, 10), 7.0);
  EXPECT_DOUBLE_EQ(eval_with("-(a - b)", 3, 10), 7.0);
}

TEST(Eval, SizeofBuiltins) {
  EXPECT_DOUBLE_EQ(eval_with("sizeof(double)", 0, 0), 8.0);
  EXPECT_DOUBLE_EQ(eval_with("sizeof(int)", 0, 0), 4.0);
  EXPECT_DOUBLE_EQ(eval_with("sizeof(float)", 0, 0), 4.0);
}

TEST(Eval, PrecedenceMixedExpression) {
  // 2 + 3 * 4 - 10 / 5 = 2 + 12 - 2 = 12
  EXPECT_DOUBLE_EQ(eval_with("2 + a * 4 - b / 5", 3, 10), 12.0);
}

TEST(Eval, ArrayIndexing) {
  Model m = Model::from_source(
      "algorithm E(int p, int d[p]) { coord I=p; node { 1: bench*(d[I]); }; }");
  auto inst = m.instantiate({scalar(3), array({10, 20, 30})});
  EXPECT_DOUBLE_EQ(inst.node_volume(0), 10.0);
  EXPECT_DOUBLE_EQ(inst.node_volume(1), 20.0);
  EXPECT_DOUBLE_EQ(inst.node_volume(2), 30.0);
}

TEST(Eval, MultiDimArrayIndexing) {
  Model m = Model::from_source(
      "algorithm E(int p, int dep[p][p]) { coord I=p;"
      " node { 1: bench*(dep[I][1]); }; }");
  // dep = [[1,2],[3,4]] row-major.
  auto inst = m.instantiate({scalar(2), array({1, 2, 3, 4})});
  EXPECT_DOUBLE_EQ(inst.node_volume(0), 2.0);
  EXPECT_DOUBLE_EQ(inst.node_volume(1), 4.0);
}

TEST(Eval, ArrayIndexOutOfRangeThrows) {
  Model m = Model::from_source(
      "algorithm E(int p, int d[p]) { coord I=p; node { 1: bench*(d[p]); }; }");
  EXPECT_THROW(m.instantiate({scalar(2), array({1, 2})}), PmdlError);
}

TEST(Eval, UndeclaredIdentifierRejectedAtCompileTime) {
  // Semantic analysis catches this at from_source, before any instantiation.
  EXPECT_THROW(Model::from_source(
                   "algorithm E(int p) { coord I=p; node { 1: bench*(nosuch); }; }"),
               PmdlError);
}

TEST(Eval, TooManySubscriptsRejectedAtCompileTime) {
  EXPECT_THROW(
      Model::from_source("algorithm E(int p, int d[p]) { coord I=p;"
                         " node { 1: bench*(d[0][0]); }; }"),
      PmdlError);
}

TEST(Eval, SubscriptOnScalarRejectedAtCompileTime) {
  EXPECT_THROW(Model::from_source(
                   "algorithm E(int p) { coord I=p; node { 1: bench*(p[0]); }; }"),
               PmdlError);
}

}  // namespace
}  // namespace hmpi::pmdl
