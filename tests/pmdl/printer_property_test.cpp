// Property test of the printer <-> parser round trip: generate a random
// well-formed model source, print its parse, re-parse the print, and assert
// the two compile to semantically identical models — same instantiation
// aggregates and the same scheme activation stream — plus the canonical-form
// fixed point (printing the re-parse is byte-identical).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pmdl/model.hpp"
#include "pmdl/parser.hpp"
#include "pmdl/printer.hpp"
#include "pmdl_test_util.hpp"
#include "support/rng.hpp"

namespace hmpi::pmdl {
namespace {

using support::Rng;
using testing::RecordingSink;

/// Random arithmetic expression over `terms`, guaranteed well-formed and
/// non-negative for non-negative terms (operators are + and * only).
std::string expr(Rng& rng, int depth, std::span<const char* const> terms) {
  if (depth == 0 || rng.next_below(3) == 0) {
    if (rng.next_below(2) == 0) {
      return std::to_string(rng.next_in(1, 9));
    }
    return terms[rng.next_below(terms.size())];
  }
  const char* op = rng.next_below(2) == 0 ? "+" : "*";
  return "(" + expr(rng, depth - 1, terms) + op + expr(rng, depth - 1, terms) +
         ")";
}

/// One random scheme statement drawn from a pool of shapes that are valid
/// for any p >= 1 (loop bodies guard their own coordinate arithmetic).
std::string scheme_statement(Rng& rng) {
  switch (rng.next_below(5)) {
    case 0:
      return "    for (k = 0; k < p; k++) (100/p)%%[k];\n";
    case 1:
      return "    par (k = 0; k < p; k++) (" +
             std::to_string(rng.next_in(10, 100)) + "/p)%%[k];\n";
    case 2:
      return "    for (k = 0; k < p; k++) if (k > 0) (100/p)%%[k-1]->[k];\n";
    case 3:
      return "    par (k = 0; k < p; k++) par (j = 0; j < p; j++) "
             "if (k != j) (100/(p*p))%%[k]->[j];\n";
    default:
      return "    if (p % 2 == 0) " + std::to_string(rng.next_in(10, 90)) +
             "%%[0]; else " + std::to_string(rng.next_in(10, 90)) +
             "%%[p-1];\n";
  }
}

/// A random well-formed 1-D model: random node/link volume expressions and
/// a random scheme built from the statement pool above.
std::string random_source(std::uint64_t seed) {
  Rng rng(seed);
  static constexpr const char* kNodeTerms[] = {"I", "p"};
  static constexpr const char* kLinkTerms[] = {"I", "K", "p",
                                               "sizeof(double)"};
  std::string src = "algorithm Rnd(int p) {\n  coord I=p;\n";
  src += "  node { I>=0: bench*(" + expr(rng, 2, kNodeTerms) + "); };\n";
  src += "  link (K=p) { I!=K";
  if (rng.next_below(2) == 0) src += " && (I+K) % 2 == 0";
  src += ": length*(" + expr(rng, 2, kLinkTerms) + ") [I]->[K]; };\n";
  src += "  parent[0];\n  scheme {\n    int k, j;\n";
  const int statements = static_cast<int>(rng.next_in(1, 4));
  for (int s = 0; s < statements; ++s) src += scheme_statement(rng);
  src += "  };\n};\n";
  return src;
}

bool same_events(const RecordingSink::Event& a, const RecordingSink::Event& b) {
  return a.kind == b.kind && a.src == b.src && a.dst == b.dst &&
         a.percent == b.percent;
}

/// parse -> print -> re-parse must preserve every observable of the model:
/// instantiation aggregates and the scheme activation stream, at several
/// problem sizes; and the canonical form must be a fixed point.
void expect_semantic_round_trip(const std::string& source) {
  const auto parsed = parse(source);
  const std::string printed = to_source(*parsed);
  const auto reparsed = parse(printed);
  EXPECT_EQ(printed, to_source(*reparsed))
      << "canonical form is not a fixed point for:\n"
      << source;

  const Model original = Model::from_source(source);
  const Model round_tripped = Model::from_source(printed);
  for (long long p : {1, 3, 4}) {
    const std::vector<ParamValue> params{scalar(p)};
    const ModelInstance a = original.instantiate(params);
    const ModelInstance b = round_tripped.instantiate(params);
    EXPECT_EQ(a.shape(), b.shape()) << source;
    EXPECT_EQ(a.node_volumes(), b.node_volumes()) << source;
    EXPECT_EQ(a.link_bytes(), b.link_bytes()) << source;
    EXPECT_EQ(a.parent_index(), b.parent_index()) << source;
    ASSERT_EQ(a.has_scheme(), b.has_scheme()) << source;
    if (a.has_scheme()) {
      RecordingSink sa, sb;
      a.run_scheme(sa);
      b.run_scheme(sb);
      ASSERT_EQ(sa.events.size(), sb.events.size()) << source;
      for (std::size_t i = 0; i < sa.events.size(); ++i) {
        EXPECT_TRUE(same_events(sa.events[i], sb.events[i]))
            << "event " << i << " diverges for p=" << p << ":\n"
            << source;
      }
    }
  }
}

TEST(PrinterProperty, RandomModelsRoundTripSemantically) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_semantic_round_trip(random_source(seed));
  }
}

TEST(PrinterProperty, PaperModelsRoundTripSemantically) {
  // The hand-written fixtures go through the same, stronger check the
  // random models get (printer_test.cpp only compares aggregates).
  const auto parsed = parse(testing::em3d_source());
  const std::string printed = to_source(*parsed);
  const Model original = Model::from_source(testing::em3d_source());
  const Model round_tripped = Model::from_source(printed);
  const std::vector<ParamValue> params{
      scalar(3), scalar(10), array({20, 35, 40}),
      array({0, 5, 0, 5, 0, 7, 0, 7, 0})};
  const ModelInstance a = original.instantiate(params);
  const ModelInstance b = round_tripped.instantiate(params);
  RecordingSink sa, sb;
  a.run_scheme(sa);
  b.run_scheme(sb);
  ASSERT_EQ(sa.events.size(), sb.events.size());
  for (std::size_t i = 0; i < sa.events.size(); ++i) {
    EXPECT_TRUE(same_events(sa.events[i], sb.events[i])) << "event " << i;
  }
}

}  // namespace
}  // namespace hmpi::pmdl
