// Shared fixtures for PMDL tests: the paper's model texts (Figures 4 and 7)
// and a ScheduleSink that records the activation stream.
#pragma once

#include <string>
#include <vector>

#include "pmdl/model.hpp"

namespace hmpi::pmdl::testing {

/// The EM3D performance model, verbatim from the paper's Figure 4.
inline const char* em3d_source() {
  return R"(
algorithm Em3d(int p, int k, int d[p], int dep[p][p]) {
  coord I=p;
  node {I>=0: bench*(d[I]/k);};
  link (L=p) {
    I>=0 && I!=L && (dep[I][L] > 0) :
      length*(dep[I][L]*sizeof(double)) [L]->[I];
  };
  parent[0];
  scheme {
    int current, owner, remote;
    par (owner = 0; owner < p; owner++)
        par (remote = 0; remote < p; remote++)
             if ((owner != remote) && (dep[owner][remote] > 0))
                100%%[remote]->[owner];
    par (current = 0; current < p; current++) 100%%[current];
  };
};
)";
}

/// The matrix-multiplication performance model, following the paper's
/// Figure 7 (with the obvious typos fixed: `h[m][m][m][m]` dimensions and
/// the B-volume width index per the accompanying text).
inline const char* parallel_axb_source() {
  return R"(
typedef struct {int I; int J;} Processor;

algorithm ParallelAxB(int m, int r, int n, int l, int w[m],
                      int h[m][m][m][m])
{
  coord I=m, J=m;
  node {I>=0 && J>=0: bench*(w[J]*(h[I][J][I][J])*(n/l)*(n/l)*n);};
  link (K=m, L=m)
  {
    I>=0 && J>=0 && I!=K :
      length*(w[J]*(h[I][J][I][J])*(n/l)*(n/l)*(r*r)*sizeof(double))
              [I, J] -> [K, J];
    I>=0 && J>=0 && J!=L && ((h[I][J][K][L]) > 0) :
      length*(w[J]*(h[I][J][K][L])*(n/l)*(n/l)*(r*r)*sizeof(double))
              [I, J] -> [K, L];
  };
  parent[0,0];
  scheme
  {
    int k;
    Processor Root, Receiver, Current;
    for(k = 0; k < n; k++)
    {
      int Acolumn = k%l, Arow;
      int Brow = k%l, Bcolumn;
      par(Arow = 0; Arow < l; )
      {
        GetProcessor(Arow, Acolumn, m, h, w, &Root);
        par(Receiver.I = 0; Receiver.I < m; Receiver.I++)
          par(Receiver.J = 0; Receiver.J < m; Receiver.J++)
             if((Root.I != Receiver.I || Root.J != Receiver.J) &&
                Root.J != Receiver.J)
               if((h[Root.I][Root.J][Receiver.I][Receiver.J]) > 0)
                 (100/(w[Root.J]*(n/l)))%%
                        [Root.I, Root.J] -> [Receiver.I, Receiver.J];
        Arow += h[Root.I][Root.J][Root.I][Root.J];
      }
      par(Bcolumn = 0; Bcolumn < l; )
      {
        GetProcessor(Brow, Bcolumn, m, h, w, &Root);
        par(Receiver.I = 0; Receiver.I < m; Receiver.I++)
          if(Root.I != Receiver.I)
             (100/((h[Root.I][Root.J][Root.I][Root.J])*(n/l))) %%
                   [Root.I, Root.J] -> [Receiver.I, Root.J];
        Bcolumn += w[Root.J];
      }
      par(Current.I = 0; Current.I < m; Current.I++)
        par(Current.J = 0; Current.J < m; Current.J++)
           (100/n) %% [Current.I, Current.J];
    }
  };
};
)";
}

/// Records every sink callback in order, for asserting on scheme replays.
class RecordingSink : public ScheduleSink {
 public:
  struct Event {
    enum Kind { kCompute, kTransfer, kParBegin, kParIterBegin, kParEnd } kind;
    std::vector<long long> src;
    std::vector<long long> dst;
    double percent = 0.0;
  };

  void compute(std::span<const long long> coords, double percent) override {
    events.push_back({Event::kCompute,
                      std::vector<long long>(coords.begin(), coords.end()),
                      {},
                      percent});
  }
  void transfer(std::span<const long long> src, std::span<const long long> dst,
                double percent) override {
    events.push_back({Event::kTransfer,
                      std::vector<long long>(src.begin(), src.end()),
                      std::vector<long long>(dst.begin(), dst.end()),
                      percent});
  }
  void par_begin() override { events.push_back({Event::kParBegin, {}, {}, 0}); }
  void par_iter_begin() override {
    events.push_back({Event::kParIterBegin, {}, {}, 0});
  }
  void par_end() override { events.push_back({Event::kParEnd, {}, {}, 0}); }

  std::size_t count(Event::Kind kind) const {
    std::size_t n = 0;
    for (const Event& e : events) {
      if (e.kind == kind) ++n;
    }
    return n;
  }

  std::vector<Event> events;
};

}  // namespace hmpi::pmdl::testing
