#include "pmdl/printer.hpp"

#include <gtest/gtest.h>

#include "pmdl/model.hpp"
#include "pmdl/parser.hpp"
#include "pmdl_test_util.hpp"

namespace hmpi::pmdl {
namespace {

/// Round-trip stability: print(parse(x)) must re-parse, and printing the
/// re-parse must be byte-identical (the canonical form is a fixed point).
void expect_round_trip(const char* source) {
  auto first = parse(source);
  const std::string printed = to_source(*first);
  auto second = parse(printed);
  EXPECT_EQ(printed, to_source(*second)) << "canonical form is not stable for:\n"
                                         << source;
}

TEST(Printer, RoundTripsTheMinimalModel) {
  expect_round_trip("algorithm A(int p) { coord I=p; }");
}

TEST(Printer, RoundTripsThePaperModels) {
  expect_round_trip(pmdl::testing::em3d_source());
  expect_round_trip(pmdl::testing::parallel_axb_source());
}

TEST(Printer, RoundTripPreservesSemantics) {
  // The reprinted EM3D model must produce identical instances.
  auto original = parse(pmdl::testing::em3d_source());
  Model from_print = Model::from_source(to_source(*original));
  Model from_text = Model::from_source(pmdl::testing::em3d_source());

  const std::vector<ParamValue> params{
      scalar(3), scalar(10), array({20, 35, 40}),
      array({0, 5, 0, 5, 0, 7, 0, 7, 0})};
  auto a = from_text.instantiate(params);
  auto b = from_print.instantiate(params);
  EXPECT_EQ(a.node_volumes(), b.node_volumes());
  EXPECT_EQ(a.link_bytes(), b.link_bytes());
  EXPECT_EQ(a.parent_index(), b.parent_index());
}

TEST(Printer, RendersSections) {
  auto algo = parse(R"(
    typedef struct {int I; int J;} P;
    algorithm A(int m, int w[m]) {
      coord I=m, J=m;
      node { I>=0: bench*(w[J]); };
      link (K=m) { I!=K: length*(w[I]*8) [I,J]->[K,J]; };
      parent[0,0];
      scheme {
        int k;
        for (k = 0; k < m; k++)
          if (k % 2 == 0) (100/m)%%[k, 0]; else (100/m)%%[0, k]->[k, 0];
      };
    })");
  const std::string text = to_source(*algo);
  EXPECT_NE(text.find("typedef struct {int I; int J; } P;"), std::string::npos);
  EXPECT_NE(text.find("algorithm A(int m, int w[m])"), std::string::npos);
  EXPECT_NE(text.find("coord I=m, J=m;"), std::string::npos);
  EXPECT_NE(text.find("bench*("), std::string::npos);
  EXPECT_NE(text.find("length*("), std::string::npos);
  EXPECT_NE(text.find("parent[0, 0];"), std::string::npos);
  EXPECT_NE(text.find("scheme"), std::string::npos);
  EXPECT_NE(text.find("else"), std::string::npos);
}

TEST(Printer, FullyParenthesisesExpressions) {
  auto algo = parse("algorithm A(int a, int b) { coord I=1;"
                    " node { 1: bench*(a + b * 2); }; }");
  const std::string text = to_source(*algo);
  // a + (b * 2), preserving precedence explicitly.
  EXPECT_NE(text.find("(a + (b * 2))"), std::string::npos);
}

TEST(Printer, RendersParLoopsAndCalls) {
  auto algo = parse(R"(
    typedef struct {int I;} P;
    algorithm A(int m, int w[m]) {
      coord I=m;
      scheme {
        int i;
        P Root;
        par (i = 0; i < m; ) { Get(i, w, &Root); i += w[Root.I]; }
      };
    })");
  const std::string text = to_source(*algo);
  EXPECT_NE(text.find("par (i = 0; (i < m); )"), std::string::npos);
  EXPECT_NE(text.find("Get(i, w, &Root);"), std::string::npos);
  EXPECT_NE(text.find("i += w[Root.I];"), std::string::npos);
  expect_round_trip(R"(
    typedef struct {int I;} P;
    algorithm A(int m, int w[m]) {
      coord I=m;
      scheme {
        int i;
        P Root;
        par (i = 0; i < m; ) { Get(i, w, &Root); i += w[Root.I]; }
      };
    })");
}

}  // namespace
}  // namespace hmpi::pmdl
