#include "pmdl/lexer.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace hmpi::pmdl {
namespace {

std::vector<Tok> kinds(std::string_view src) {
  std::vector<Tok> out;
  for (const Token& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEnd) {
  auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, Tok::kEnd);
}

TEST(Lexer, Keywords) {
  EXPECT_EQ(kinds("algorithm coord node link parent scheme"),
            (std::vector<Tok>{Tok::kAlgorithm, Tok::kCoord, Tok::kNode,
                              Tok::kLink, Tok::kParent, Tok::kScheme, Tok::kEnd}));
  EXPECT_EQ(kinds("par for if else int bench length sizeof typedef struct"),
            (std::vector<Tok>{Tok::kPar, Tok::kFor, Tok::kIf, Tok::kElse,
                              Tok::kInt, Tok::kBench, Tok::kLength, Tok::kSizeof,
                              Tok::kTypedef, Tok::kStruct, Tok::kEnd}));
}

TEST(Lexer, IdentifiersAndLiterals) {
  auto tokens = lex("Em3d x_1 42 007");
  EXPECT_EQ(tokens[0].kind, Tok::kIdent);
  EXPECT_EQ(tokens[0].text, "Em3d");
  EXPECT_EQ(tokens[1].text, "x_1");
  EXPECT_EQ(tokens[2].kind, Tok::kIntLit);
  EXPECT_EQ(tokens[2].int_value, 42);
  EXPECT_EQ(tokens[3].int_value, 7);
}

TEST(Lexer, PercentPercentVsPercent) {
  EXPECT_EQ(kinds("a %% b % c"),
            (std::vector<Tok>{Tok::kIdent, Tok::kPercent2, Tok::kIdent,
                              Tok::kPercent, Tok::kIdent, Tok::kEnd}));
}

TEST(Lexer, ArrowVsMinus) {
  EXPECT_EQ(kinds("a->b a-b a--"),
            (std::vector<Tok>{Tok::kIdent, Tok::kArrow, Tok::kIdent, Tok::kIdent,
                              Tok::kMinus, Tok::kIdent, Tok::kIdent,
                              Tok::kMinusMinus, Tok::kEnd}));
}

TEST(Lexer, ComparisonOperators) {
  EXPECT_EQ(kinds("== != <= >= < > ="),
            (std::vector<Tok>{Tok::kEq, Tok::kNe, Tok::kLe, Tok::kGe, Tok::kLt,
                              Tok::kGt, Tok::kAssign, Tok::kEnd}));
}

TEST(Lexer, CompoundAssignAndIncrement) {
  EXPECT_EQ(kinds("+= -= ++ --"),
            (std::vector<Tok>{Tok::kPlusAssign, Tok::kMinusAssign,
                              Tok::kPlusPlus, Tok::kMinusMinus, Tok::kEnd}));
}

TEST(Lexer, LogicalOperators) {
  EXPECT_EQ(kinds("&& || ! &"),
            (std::vector<Tok>{Tok::kAndAnd, Tok::kOrOr, Tok::kNot, Tok::kAmp,
                              Tok::kEnd}));
}

TEST(Lexer, LineCommentSkipped) {
  EXPECT_EQ(kinds("a // comment to end of line\nb"),
            (std::vector<Tok>{Tok::kIdent, Tok::kIdent, Tok::kEnd}));
}

TEST(Lexer, BlockCommentSkipped) {
  EXPECT_EQ(kinds("a /* multi\nline */ b"),
            (std::vector<Tok>{Tok::kIdent, Tok::kIdent, Tok::kEnd}));
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(lex("a /* oops"), PmdlError);
}

TEST(Lexer, PositionsAreTracked) {
  auto tokens = lex("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(Lexer, UnknownCharacterThrowsWithPosition) {
  try {
    lex("a\n@");
    FAIL() << "expected PmdlError";
  } catch (const PmdlError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 1);
  }
}

TEST(Lexer, ActivationStatementTokens) {
  // The shape used throughout the paper: (100/n)%%[I,J]->[K,L];
  EXPECT_EQ(kinds("(100/n)%%[I,J]->[K,L];"),
            (std::vector<Tok>{Tok::kLParen, Tok::kIntLit, Tok::kSlash,
                              Tok::kIdent, Tok::kRParen, Tok::kPercent2,
                              Tok::kLBracket, Tok::kIdent, Tok::kComma,
                              Tok::kIdent, Tok::kRBracket, Tok::kArrow,
                              Tok::kLBracket, Tok::kIdent, Tok::kComma,
                              Tok::kIdent, Tok::kRBracket, Tok::kSemicolon,
                              Tok::kEnd}));
}

}  // namespace
}  // namespace hmpi::pmdl
