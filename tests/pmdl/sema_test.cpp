#include "pmdl/sema.hpp"

#include <gtest/gtest.h>

#include "pmdl/parser.hpp"
#include "pmdl_test_util.hpp"
#include "support/error.hpp"

namespace hmpi::pmdl {
namespace {

void expect_valid(const char* source) {
  EXPECT_NO_THROW(validate(*parse(source))) << source;
}

void expect_invalid(const char* source, const char* what) {
  try {
    validate(*parse(source));
    FAIL() << "expected PmdlError (" << what << ") for: " << source;
  } catch (const PmdlError& e) {
    EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(Sema, AcceptsThePaperModels) {
  expect_valid(pmdl::testing::em3d_source());
  expect_valid(pmdl::testing::parallel_axb_source());
}

TEST(Sema, DuplicateParameterRejected) {
  expect_invalid("algorithm A(int p, int p) { coord I=p; }", "redefinition");
}

TEST(Sema, ArrayDimensionMustReferenceEarlierParams) {
  expect_invalid("algorithm A(int d[q], int q) { coord I=q; }", "undeclared");
  expect_valid("algorithm A(int q, int d[q]) { coord I=q; }");
}

TEST(Sema, CoordShadowingParamRejected) {
  // Coord variables live in a nested scope but must not collide with each
  // other.
  expect_invalid("algorithm A(int p) { coord I=p, I=p; }", "redefinition");
}

TEST(Sema, UnknownIdentifierInNodeRejected) {
  expect_invalid("algorithm A(int p) { coord I=p; node { I>=0: bench*(x); }; }",
                 "undeclared");
}

TEST(Sema, CoordNotVisibleInScheme) {
  // The scheme addresses processors via locals/params, not coord variables.
  expect_invalid("algorithm A(int p) { coord I=p; scheme { 100%%[I]; }; }",
                 "undeclared");
}

TEST(Sema, LinkIteratorVisibleOnlyInLink) {
  expect_valid(R"(algorithm A(int p, int d[p][p]) {
    coord I=p;
    link (L=p) { I!=L: length*(d[I][L]) [L]->[I]; };
  })");
  expect_invalid(R"(algorithm A(int p) {
    coord I=p;
    link (L=p) { I!=L: length*(1) [L]->[I]; };
    node { L>=0: bench*(1); };
  })",
                 "undeclared");
}

TEST(Sema, LinkEndpointArityChecked) {
  expect_invalid(R"(algorithm A(int m) {
    coord I=m, J=m;
    link { 1: length*(8) [I]->[J]; };
  })",
                 "coordinate");
}

TEST(Sema, ParentArityChecked) {
  expect_invalid("algorithm A(int m) { coord I=m, J=m; parent[0]; }",
                 "coordinate");
  expect_valid("algorithm A(int m) { coord I=m, J=m; parent[0, 0]; }");
}

TEST(Sema, ActivationArityChecked) {
  expect_invalid(R"(algorithm A(int m) {
    coord I=m, J=m;
    scheme { 100%%[0]; };
  })",
                 "coordinate");
}

TEST(Sema, LoopWithoutConditionRejected) {
  expect_invalid(R"(algorithm A(int p) {
    coord I=p;
    scheme { int i; par (i = 0; ; i++) 100%%[i]; };
  })",
                 "condition");
}

TEST(Sema, AssignToArrayRejected) {
  expect_invalid(R"(algorithm A(int p, int d[p]) {
    coord I=p;
    scheme { d = 3; };
  })",
                 "assignable");
}

TEST(Sema, MemberOnNonStructRejected) {
  expect_invalid(R"(algorithm A(int p) {
    coord I=p;
    scheme { int x; x.I = 0; };
  })",
                 "non-struct");
}

TEST(Sema, UnknownStructFieldRejected) {
  expect_invalid(R"(
    typedef struct {int I; int J;} Processor;
    algorithm A(int p) {
      coord I=p;
      scheme { Processor P; P.K = 0; };
    })",
                 "no field");
}

TEST(Sema, UnknownDeclTypeRejected) {
  // An undeclared type name is not recognised as a declaration starter, so
  // this is rejected by the parser already (still a PmdlError with position).
  EXPECT_THROW(parse(R"(algorithm A(int p) {
    coord I=p;
    scheme { Widget w; };
  })"),
               PmdlError);
}

TEST(Sema, StructInitialiserRejected) {
  expect_invalid(R"(
    typedef struct {int I;} S;
    algorithm A(int p) { coord I=p; scheme { S s = 3; }; })",
                 "initialiser");
}

TEST(Sema, DuplicateStructFieldRejected) {
  expect_invalid(
      "typedef struct {int I; int I;} S; algorithm A(int p) { coord I=p; }",
      "duplicate field");
}

TEST(Sema, SchemeLocalsScopeToTheirBlock) {
  expect_invalid(R"(algorithm A(int p) {
    coord I=p;
    scheme {
      if (p > 0) { int x; x = 1; }
      x = 2;
    };
  })",
                 "undeclared");
}

TEST(Sema, AddressOfUndeclaredRejected) {
  expect_invalid(R"(algorithm A(int p) {
    coord I=p;
    scheme { F(&nothing); };
  })",
                 "undeclared");
}

TEST(Sema, SizeofUnknownTypeRejected) {
  expect_invalid(
      "algorithm A(int p) { coord I=p; node { 1: bench*(sizeof(Widget)); }; }",
      "sizeof");
}

TEST(Sema, ErrorCarriesSourcePosition) {
  try {
    validate(*parse("algorithm A(int p) {\n  coord I=p;\n  node { 1: bench*(zz); };\n}"));
    FAIL();
  } catch (const PmdlError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

}  // namespace
}  // namespace hmpi::pmdl
