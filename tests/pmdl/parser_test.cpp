#include "pmdl/parser.hpp"

#include <gtest/gtest.h>

#include "pmdl_test_util.hpp"
#include "support/error.hpp"

namespace hmpi::pmdl {
namespace {

TEST(Parser, MinimalAlgorithm) {
  auto algo = parse("algorithm A(int p) { coord I=p; }");
  EXPECT_EQ(algo->name, "A");
  ASSERT_EQ(algo->params.size(), 1u);
  EXPECT_EQ(algo->params[0].name, "p");
  EXPECT_TRUE(algo->params[0].dims.empty());
  ASSERT_EQ(algo->coords.size(), 1u);
  EXPECT_EQ(algo->coords[0].name, "I");
  EXPECT_FALSE(algo->scheme);
  EXPECT_TRUE(algo->parent_coords.empty());
}

TEST(Parser, ArrayParameters) {
  auto algo = parse("algorithm A(int p, int d[p], int dep[p][p]) { coord I=p; }");
  ASSERT_EQ(algo->params.size(), 3u);
  EXPECT_EQ(algo->params[1].dims.size(), 1u);
  EXPECT_EQ(algo->params[2].dims.size(), 2u);
}

TEST(Parser, TwoDimensionalCoord) {
  auto algo = parse("algorithm A(int m) { coord I=m, J=m; }");
  ASSERT_EQ(algo->coords.size(), 2u);
  EXPECT_EQ(algo->coords[1].name, "J");
}

TEST(Parser, NodeSection) {
  auto algo = parse(
      "algorithm A(int p) { coord I=p; node { I>=0: bench*(I+1); }; }");
  ASSERT_EQ(algo->node_clauses.size(), 1u);
  EXPECT_TRUE(algo->node_clauses[0].cond);
  EXPECT_TRUE(algo->node_clauses[0].volume);
}

TEST(Parser, LinkSectionWithIterators) {
  auto algo = parse(R"(
    algorithm A(int p, int dep[p][p]) {
      coord I=p;
      link (L=p) { I!=L: length*(dep[I][L]) [L]->[I]; };
    })");
  ASSERT_EQ(algo->link_iters.size(), 1u);
  EXPECT_EQ(algo->link_iters[0].name, "L");
  ASSERT_EQ(algo->link_clauses.size(), 1u);
  EXPECT_EQ(algo->link_clauses[0].src_coords.size(), 1u);
  EXPECT_EQ(algo->link_clauses[0].dst_coords.size(), 1u);
}

TEST(Parser, ParentSection) {
  auto algo = parse("algorithm A(int m) { coord I=m, J=m; parent[0,0]; }");
  EXPECT_EQ(algo->parent_coords.size(), 2u);
}

TEST(Parser, SchemeStatements) {
  auto algo = parse(R"(
    algorithm A(int p) {
      coord I=p;
      scheme {
        int i;
        par (i = 0; i < p; i++) 100%%[i];
        for (i = 0; i < p; i++)
          if (i > 0) 50%%[i]->[0]; else 25%%[0];
      };
    })");
  ASSERT_TRUE(algo->scheme);
  ASSERT_EQ(algo->scheme->body.size(), 3u);
  EXPECT_EQ(algo->scheme->body[0]->kind, ast::StmtKind::kDecl);
  EXPECT_EQ(algo->scheme->body[1]->kind, ast::StmtKind::kPar);
  EXPECT_EQ(algo->scheme->body[2]->kind, ast::StmtKind::kFor);
  const ast::Stmt& if_stmt = *algo->scheme->body[2]->loop_body;
  EXPECT_EQ(if_stmt.kind, ast::StmtKind::kIf);
  EXPECT_EQ(if_stmt.then_branch->kind, ast::StmtKind::kComm);
  EXPECT_EQ(if_stmt.else_branch->kind, ast::StmtKind::kComp);
}

TEST(Parser, TypedefStruct) {
  auto algo = parse(R"(
    typedef struct {int I; int J;} Processor;
    algorithm A(int m) {
      coord I=m;
      scheme { Processor P; P.I = 0; };
    })");
  ASSERT_EQ(algo->structs.size(), 1u);
  EXPECT_EQ(algo->structs[0].name, "Processor");
  EXPECT_EQ(algo->structs[0].fields, (std::vector<std::string>{"I", "J"}));
  EXPECT_EQ(algo->scheme->body[0]->kind, ast::StmtKind::kDecl);
  EXPECT_EQ(algo->scheme->body[0]->decl_type, "Processor");
}

TEST(Parser, EmptyStructRejected) {
  EXPECT_THROW(parse("typedef struct {} P; algorithm A(int m) { coord I=m; }"),
               PmdlError);
}

TEST(Parser, MissingCoordRejected) {
  EXPECT_THROW(parse("algorithm A(int p) { }"), PmdlError);
}

TEST(Parser, DuplicateSchemeRejected) {
  EXPECT_THROW(parse(R"(
    algorithm A(int p) { coord I=p; scheme { }; scheme { }; })"),
               PmdlError);
}

TEST(Parser, SyntaxErrorCarriesPosition) {
  try {
    parse("algorithm A(int p) {\n coord I=; }");
    FAIL() << "expected PmdlError";
  } catch (const PmdlError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_GT(e.column(), 0);
  }
}

TEST(Parser, CallWithAddressOfArgument) {
  auto algo = parse(R"(
    typedef struct {int I; int J;} Processor;
    algorithm A(int m) {
      coord I=m;
      scheme {
        Processor Root;
        GetProcessor(0, m, &Root);
      };
    })");
  const ast::Stmt& call_stmt = *algo->scheme->body[1];
  ASSERT_EQ(call_stmt.kind, ast::StmtKind::kExpr);
  ASSERT_EQ(call_stmt.expr->kind, ast::ExprKind::kCall);
  EXPECT_EQ(call_stmt.expr->name, "GetProcessor");
  ASSERT_EQ(call_stmt.expr->args.size(), 3u);
  EXPECT_EQ(call_stmt.expr->args[2]->kind, ast::ExprKind::kAddressOf);
}

TEST(Parser, OperatorPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3).
  auto algo = parse(R"(
    algorithm A(int p) { coord I=p; node { 1: bench*(1 + 2 * 3); }; })");
  const ast::Expr& volume = *algo->node_clauses[0].volume;
  ASSERT_EQ(volume.kind, ast::ExprKind::kBinary);
  EXPECT_EQ(volume.op, Tok::kPlus);
  EXPECT_EQ(volume.rhs->op, Tok::kStar);
}

TEST(Parser, ChainedIndexingAndMember) {
  auto algo = parse(R"(
    typedef struct {int I; int J;} Processor;
    algorithm A(int m, int h[m][m]) {
      coord I=m;
      scheme {
        Processor Root;
        int x;
        x = h[Root.I][Root.J];
      };
    })");
  SUCCEED();
}

TEST(Parser, PaperFigure4Parses) {
  auto algo = parse(pmdl::testing::em3d_source());
  EXPECT_EQ(algo->name, "Em3d");
  EXPECT_EQ(algo->params.size(), 4u);
  EXPECT_EQ(algo->coords.size(), 1u);
  EXPECT_EQ(algo->node_clauses.size(), 1u);
  EXPECT_EQ(algo->link_clauses.size(), 1u);
  EXPECT_EQ(algo->parent_coords.size(), 1u);
  ASSERT_TRUE(algo->scheme);
}

TEST(Parser, PaperFigure7Parses) {
  auto algo = parse(pmdl::testing::parallel_axb_source());
  EXPECT_EQ(algo->name, "ParallelAxB");
  EXPECT_EQ(algo->params.size(), 6u);
  EXPECT_EQ(algo->coords.size(), 2u);
  EXPECT_EQ(algo->link_iters.size(), 2u);
  EXPECT_EQ(algo->link_clauses.size(), 2u);
  ASSERT_EQ(algo->structs.size(), 1u);
  ASSERT_TRUE(algo->scheme);
}

TEST(Parser, TrailingGarbageRejected) {
  EXPECT_THROW(parse("algorithm A(int p) { coord I=p; } garbage"), PmdlError);
}

}  // namespace
}  // namespace hmpi::pmdl
