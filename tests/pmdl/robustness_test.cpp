// Robustness of the PMDL front end on unusual-but-valid programs and on a
// second tier of malformed ones.
#include <gtest/gtest.h>

#include "pmdl/model.hpp"
#include "pmdl_test_util.hpp"
#include "support/error.hpp"

namespace hmpi::pmdl {
namespace {

using pmdl::testing::RecordingSink;
using Event = RecordingSink::Event;

TEST(Robustness, CommentsEverywhere) {
  Model m = Model::from_source(R"(
    // leading comment
    algorithm /* inline */ A(int p /* param */) {
      coord I=p; // trailing
      /* block
         spanning lines */
      node { I>=0: bench*(1 /* one */); };
    };
  )");
  EXPECT_EQ(m.name(), "A");
  EXPECT_DOUBLE_EQ(m.instantiate({scalar(2)}).node_volume(1), 1.0);
}

TEST(Robustness, DeeplyNestedParLoops) {
  Model m = Model::from_source(R"(
    algorithm A(int n) {
      coord I=n;
      scheme {
        int a, b, c;
        par (a = 0; a < 2; a++)
          par (b = 0; b < 2; b++)
            par (c = 0; c < 2; c++)
              if (a + b + c < n) 10%%[a + b + c];
      };
    })");
  auto inst = m.instantiate({scalar(4)});
  RecordingSink sink;
  inst.run_scheme(sink);
  EXPECT_EQ(sink.count(Event::kCompute), 8u);
  EXPECT_EQ(sink.count(Event::kParBegin), 1u + 2u + 4u);
}

TEST(Robustness, ElseIfChain) {
  Model m = Model::from_source(R"(
    algorithm A(int p) {
      coord I=p;
      scheme {
        int i;
        for (i = 0; i < p; i++)
          if (i == 0) 10%%[i];
          else if (i == 1) 20%%[i];
          else 30%%[i];
      };
    })");
  auto inst = m.instantiate({scalar(3)});
  RecordingSink sink;
  inst.run_scheme(sink);
  ASSERT_EQ(sink.count(Event::kCompute), 3u);
  EXPECT_DOUBLE_EQ(sink.events[0].percent, 10.0);
  EXPECT_DOUBLE_EQ(sink.events[1].percent, 20.0);
  EXPECT_DOUBLE_EQ(sink.events[2].percent, 30.0);
}

TEST(Robustness, OverlappingNodeClausesFirstWins) {
  Model m = Model::from_source(R"(
    algorithm A(int p) {
      coord I=p;
      node {
        I % 2 == 0: bench*(100);
        I >= 0:     bench*(1);
        I >= 0:     bench*(999);
      };
    })");
  auto inst = m.instantiate({scalar(4)});
  EXPECT_DOUBLE_EQ(inst.node_volume(0), 100.0);
  EXPECT_DOUBLE_EQ(inst.node_volume(1), 1.0);
  EXPECT_DOUBLE_EQ(inst.node_volume(2), 100.0);
}

TEST(Robustness, LinkWithoutIteratorVariables) {
  Model m = Model::from_source(R"(
    algorithm A(int p) {
      coord I=p;
      link { I > 0: length*(64) [I]->[0]; };
    })");
  auto inst = m.instantiate({scalar(3)});
  EXPECT_EQ(inst.link_bytes().size(), 2u);
  EXPECT_DOUBLE_EQ(inst.link_bytes().at({1, 0}), 64.0);
  EXPECT_DOUBLE_EQ(inst.link_bytes().at({2, 0}), 64.0);
}

TEST(Robustness, OmittedParentDefaultsToOrigin) {
  Model m = Model::from_source("algorithm A(int m) { coord I=m, J=m; }");
  EXPECT_EQ(m.instantiate({scalar(3)}).parent_index(), 0);
}

TEST(Robustness, ThreeDimensionalCoordinates) {
  Model m = Model::from_source(R"(
    algorithm A(int a, int b, int c) {
      coord I=a, J=b, K=c;
      node { I+J+K >= 0: bench*(I*100 + J*10 + K); };
      parent[1, 0, 1];
    })");
  auto inst = m.instantiate({scalar(2), scalar(3), scalar(2)});
  EXPECT_EQ(inst.size(), 12);
  EXPECT_EQ(inst.parent_index(), 7);  // ((1*3)+0)*2 + 1
  const long long coords[3] = {1, 2, 1};
  EXPECT_DOUBLE_EQ(inst.node_volume(static_cast<int>(inst.flatten(coords))), 121.0);
}

TEST(Robustness, SelfLinkClausesAreDropped) {
  // A clause that evaluates to src == dst defines no link (self transfers
  // are free in the model).
  Model m = Model::from_source(R"(
    algorithm A(int p) {
      coord I=p;
      link (J=p) { I >= 0: length*(8) [I]->[J]; };
    })");
  auto inst = m.instantiate({scalar(2)});
  EXPECT_EQ(inst.link_bytes().count({0, 0}), 0u);
  EXPECT_EQ(inst.link_bytes().count({1, 1}), 0u);
  EXPECT_EQ(inst.link_bytes().size(), 2u);
}

TEST(Robustness, MalformedProgramsSecondTier) {
  // Each throws a PmdlError rather than crashing or hanging.
  const char* broken[] = {
      "",                                              // empty
      "algorithm",                                     // truncated
      "algorithm A(int p) { coord I=p;",               // unclosed brace
      "algorithm A(int p) { coord I=p; node { 1: bench(3); }; }",  // no '*'
      "algorithm A(int p) { coord I=p; link { 1: length*(8) [0]; }; }",  // no dst
      "algorithm A(int p) { coord I=p; scheme { 100%%; }; }",  // no coords
      "algorithm A(int p) { coord I=p; scheme { par (;;) 100%%[0]; }; }",
      "algorithm A(int p, int p2, ) { coord I=p; }",   // trailing comma
      "typedef struct {int I;} ; algorithm A(int p) { coord I=p; }",  // no name
  };
  for (const char* source : broken) {
    EXPECT_THROW(Model::from_source(source), PmdlError) << source;
  }
}

TEST(Robustness, HugeButBoundedInstantiation) {
  // 64 abstract processors with a dense link matrix: instantiation stays
  // well-behaved (this is beyond any sensible HNOC, not beyond the code).
  Model m = Model::from_source(R"(
    algorithm A(int p) {
      coord I=p;
      node { I>=0: bench*(I+1); };
      link (J=p) { I != J: length*(8) [I]->[J]; };
    })");
  auto inst = m.instantiate({scalar(64)});
  EXPECT_EQ(inst.size(), 64);
  EXPECT_EQ(inst.link_bytes().size(), 64u * 63u);
}

}  // namespace
}  // namespace hmpi::pmdl
