#include "pmdl/model.hpp"

#include <gtest/gtest.h>

#include "pmdl_test_util.hpp"
#include "support/error.hpp"

namespace hmpi::pmdl {
namespace {

using pmdl::testing::RecordingSink;
using Event = RecordingSink::Event;

// --- EM3D (paper Figure 4) ---------------------------------------------------

ModelInstance em3d_instance() {
  Model m = Model::from_source(pmdl::testing::em3d_source());
  // p=3 subbodies, benchmark computes k=10 nodes, d node counts,
  // dep[I][L] = nodal values subbody I needs from subbody L.
  return m.instantiate(
      {scalar(3), scalar(10), array({20, 35, 40}),
       array({0, 5, 0,
              5, 0, 7,
              0, 7, 0})});
}

TEST(Em3dModel, ShapeAndParent) {
  auto inst = em3d_instance();
  EXPECT_EQ(inst.shape(), (std::vector<long long>{3}));
  EXPECT_EQ(inst.size(), 3);
  EXPECT_EQ(inst.parent_index(), 0);
  EXPECT_EQ(inst.model_name(), "Em3d");
}

TEST(Em3dModel, NodeVolumesAreDOverK) {
  auto inst = em3d_instance();
  EXPECT_DOUBLE_EQ(inst.node_volume(0), 2.0);  // 20/10
  EXPECT_DOUBLE_EQ(inst.node_volume(1), 3.0);  // 35/10 (C integer division)
  EXPECT_DOUBLE_EQ(inst.node_volume(2), 4.0);  // 40/10
}

TEST(Em3dModel, LinkVolumesFollowDepMatrix) {
  auto inst = em3d_instance();
  const auto& links = inst.link_bytes();
  ASSERT_EQ(links.size(), 4u);
  // dep[I][L] values are received by I from L: bytes = dep * sizeof(double).
  EXPECT_DOUBLE_EQ(links.at({1, 0}), 40.0);  // dep[0][1]=5 -> [1]->[0]
  EXPECT_DOUBLE_EQ(links.at({0, 1}), 40.0);  // dep[1][0]=5
  EXPECT_DOUBLE_EQ(links.at({2, 1}), 56.0);  // dep[1][2]=7
  EXPECT_DOUBLE_EQ(links.at({1, 2}), 56.0);  // dep[2][1]=7
  EXPECT_EQ(links.count({2, 0}), 0u);        // dep[0][2]=0: no link
}

TEST(Em3dModel, SchemeReplaysOneIteration) {
  auto inst = em3d_instance();
  ASSERT_TRUE(inst.has_scheme());
  RecordingSink sink;
  inst.run_scheme(sink);
  // One transfer per dep>0 pair, all at 100%.
  EXPECT_EQ(sink.count(Event::kTransfer), 4u);
  // One compute per subbody at 100%.
  EXPECT_EQ(sink.count(Event::kCompute), 3u);
  for (const auto& e : sink.events) {
    if (e.kind == Event::kTransfer || e.kind == Event::kCompute) {
      EXPECT_DOUBLE_EQ(e.percent, 100.0);
    }
  }
  // par structure: outer comm par + nested per owner (3) + compute par.
  EXPECT_EQ(sink.count(Event::kParBegin), 5u);
  EXPECT_EQ(sink.count(Event::kParEnd), 5u);
}

// --- ParallelAxB (paper Figure 7) ---------------------------------------------

/// GetProcessor: maps (row, col) of an r-block inside a generalised block to
/// the grid coordinates of the abstract processor owning it (cumulative
/// widths/heights walk, as in the paper's heterogeneous distribution).
void get_processor(std::vector<Value>& args) {
  ASSERT_EQ(args.size(), 6u);
  const long long row = as_int(args[0]);
  const long long col = as_int(args[1]);
  const long long m = as_int(args[2]);
  const auto& h = std::get<ArrayRef>(args[3]);
  const auto& w = std::get<ArrayRef>(args[4]);
  auto& root = std::get<StructVal>(args[5]);

  auto w_at = [&](long long j) { return w.data->data[static_cast<std::size_t>(j)]; };
  auto h_diag = [&](long long i, long long j) {
    const auto idx = ((i * m + j) * m + i) * m + j;
    return h.data->data[static_cast<std::size_t>(idx)];
  };

  long long j = 0, acc = w_at(0);
  while (col >= acc && j + 1 < m) acc += w_at(++j);
  long long i = 0, hacc = h_diag(0, j);
  while (row >= hacc && i + 1 < m) hacc += h_diag(++i, j);
  root.fields[0] = i;
  root.fields[1] = j;
}

ModelInstance axb_instance() {
  Model m = Model::from_source(pmdl::testing::parallel_axb_source());
  m.register_native("GetProcessor", get_processor);
  // m=2 grid, r=2 blocks, n=4 blocks per matrix side, l=2 generalised block,
  // homogeneous partition: w = {1,1}, h[I][J][K][L] = 1 everywhere.
  std::vector<long long> h(16, 1);
  return m.instantiate({scalar(2), scalar(2), scalar(4), scalar(2),
                        array({1, 1}), array(h)});
}

TEST(AxbModel, ShapeAndParent) {
  auto inst = axb_instance();
  EXPECT_EQ(inst.shape(), (std::vector<long long>{2, 2}));
  EXPECT_EQ(inst.size(), 4);
  EXPECT_EQ(inst.parent_index(), 0);
}

TEST(AxbModel, NodeVolumes) {
  auto inst = axb_instance();
  // w[J]*h*(n/l)^2*n = 1*1*4*4 = 16 benchmark units each.
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(inst.node_volume(i), 16.0);
}

TEST(AxbModel, LinkVolumesCoverAllPairs) {
  auto inst = axb_instance();
  const auto& links = inst.link_bytes();
  // All 12 directed pairs get w*h*(n/l)^2*r^2*8 = 1*1*4*4*8 = 128 bytes.
  ASSERT_EQ(links.size(), 12u);
  for (const auto& [pair, bytes] : links) {
    EXPECT_NE(pair.first, pair.second);
    EXPECT_DOUBLE_EQ(bytes, 128.0);
  }
}

TEST(AxbModel, SchemeEventCounts) {
  auto inst = axb_instance();
  RecordingSink sink;
  inst.run_scheme(sink);
  // Per step k (n=4 steps): A-pivot roots (2) each send to the 2 processors
  // of the other column -> 4; B-pivot roots (2) each send to the 1 other
  // processor of their column -> 2; computes: 4.
  EXPECT_EQ(sink.count(Event::kTransfer), 4u * (4u + 2u));
  EXPECT_EQ(sink.count(Event::kCompute), 4u * 4u);
}

TEST(AxbModel, SchemePercentages) {
  auto inst = axb_instance();
  RecordingSink sink;
  inst.run_scheme(sink);
  for (const auto& e : sink.events) {
    if (e.kind == Event::kCompute) {
      EXPECT_DOUBLE_EQ(e.percent, 25.0);  // 100/n, n=4
    } else if (e.kind == Event::kTransfer) {
      EXPECT_DOUBLE_EQ(e.percent, 50.0);  // 100/(1*(n/l)) = 100/2
    }
  }
}

TEST(AxbModel, UnregisteredNativeThrows) {
  Model m = Model::from_source(pmdl::testing::parallel_axb_source());
  std::vector<long long> h(16, 1);
  auto inst = m.instantiate({scalar(2), scalar(2), scalar(4), scalar(2),
                             array({1, 1}), array(h)});
  RecordingSink sink;
  EXPECT_THROW(inst.run_scheme(sink), PmdlError);
}

// --- generic model behaviour ---------------------------------------------------

TEST(Model, ParamCountMismatchThrows) {
  Model m = Model::from_source("algorithm A(int p) { coord I=p; }");
  EXPECT_THROW(m.instantiate({}), PmdlError);
  EXPECT_THROW(m.instantiate({scalar(1), scalar(2)}), PmdlError);
}

TEST(Model, ScalarArrayMismatchThrows) {
  Model m = Model::from_source("algorithm A(int p, int d[p]) { coord I=p; }");
  EXPECT_THROW(m.instantiate({scalar(2), scalar(5)}), PmdlError);
  EXPECT_THROW(m.instantiate({array({1}), array({1, 2})}), PmdlError);
}

TEST(Model, ArraySizeMismatchThrows) {
  Model m = Model::from_source("algorithm A(int p, int d[p]) { coord I=p; }");
  EXPECT_THROW(m.instantiate({scalar(3), array({1, 2})}), PmdlError);
}

TEST(Model, NonPositiveCoordExtentThrows) {
  Model m = Model::from_source("algorithm A(int p) { coord I=p; }");
  EXPECT_THROW(m.instantiate({scalar(0)}), PmdlError);
  EXPECT_THROW(m.instantiate({scalar(-2)}), PmdlError);
}

TEST(Model, NoMatchingNodeClauseMeansZeroVolume) {
  Model m = Model::from_source(
      "algorithm A(int p) { coord I=p; node { I>0: bench*(5); }; }");
  auto inst = m.instantiate({scalar(2)});
  EXPECT_DOUBLE_EQ(inst.node_volume(0), 0.0);
  EXPECT_DOUBLE_EQ(inst.node_volume(1), 5.0);
}

TEST(Model, FirstMatchingNodeClauseWins) {
  Model m = Model::from_source(
      "algorithm A(int p) { coord I=p;"
      " node { I==0: bench*(1); I>=0: bench*(2); }; }");
  auto inst = m.instantiate({scalar(2)});
  EXPECT_DOUBLE_EQ(inst.node_volume(0), 1.0);
  EXPECT_DOUBLE_EQ(inst.node_volume(1), 2.0);
}

TEST(Model, FlattenUnflattenRoundTrip) {
  Model m = Model::from_source("algorithm A(int a, int b) { coord I=a, J=b; }");
  auto inst = m.instantiate({scalar(3), scalar(4)});
  for (long long i = 0; i < 12; ++i) {
    EXPECT_EQ(inst.flatten(inst.unflatten(i)), i);
  }
  const long long coords[2] = {2, 3};
  EXPECT_EQ(inst.flatten(coords), 11);
  EXPECT_THROW(inst.unflatten(12), hmpi::InvalidArgument);
}

TEST(Model, SchemeParStructure) {
  Model m = Model::from_source(R"(
    algorithm A(int p) {
      coord I=p;
      scheme { int i; par (i = 0; i < p; i++) 100%%[i]; };
    })");
  auto inst = m.instantiate({scalar(3)});
  RecordingSink sink;
  inst.run_scheme(sink);
  std::vector<Event::Kind> expected{
      Event::kParBegin, Event::kParIterBegin, Event::kCompute,
      Event::kParIterBegin, Event::kCompute, Event::kParIterBegin,
      Event::kCompute, Event::kParEnd};
  ASSERT_EQ(sink.events.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(sink.events[i].kind, expected[i]) << "event " << i;
  }
}

TEST(Model, SchemeLoopVariableMutationInBody) {
  // `par (i = 0; i < 4; )` with `i += 2` in the body (Figure 7's A-pivot
  // walk pattern): the loop variable persists across par iterations.
  Model m = Model::from_source(R"(
    algorithm A(int p) {
      coord I=p;
      scheme {
        int i;
        par (i = 0; i < 4; ) { 100%%[i]; i += 2; }
      };
    })");
  auto inst = m.instantiate({scalar(4)});
  RecordingSink sink;
  inst.run_scheme(sink);
  ASSERT_EQ(sink.count(Event::kCompute), 2u);
  EXPECT_EQ(sink.events[2].src, (std::vector<long long>{0}));
  EXPECT_EQ(sink.events[4].src, (std::vector<long long>{2}));
}

TEST(Model, SchemeCoordinateOutOfRangeThrows) {
  Model m = Model::from_source(R"(
    algorithm A(int p) { coord I=p; scheme { 100%%[p]; }; })");
  auto inst = m.instantiate({scalar(2)});
  RecordingSink sink;
  EXPECT_THROW(inst.run_scheme(sink), PmdlError);
}

TEST(Model, RunawayLoopIsCaught) {
  Model m = Model::from_source(R"(
    algorithm A(int p) {
      coord I=p;
      scheme { int i; for (i = 0; i >= 0; ) i += 0; };
    })");
  auto inst = m.instantiate({scalar(1)});
  RecordingSink sink;
  EXPECT_THROW(inst.run_scheme(sink), PmdlError);
}

TEST(Model, MissingSchemeThrowsOnReplay) {
  Model m = Model::from_source("algorithm A(int p) { coord I=p; }");
  auto inst = m.instantiate({scalar(1)});
  EXPECT_FALSE(inst.has_scheme());
  RecordingSink sink;
  EXPECT_THROW(inst.run_scheme(sink), PmdlError);
}

TEST(Model, SchemeReplayIsRepeatable) {
  // Scheme state (locals) must not leak between replays.
  auto inst = em3d_instance();
  RecordingSink a, b;
  inst.run_scheme(a);
  inst.run_scheme(b);
  EXPECT_EQ(a.events.size(), b.events.size());
}

// --- InstanceBuilder & factory models ------------------------------------------

TEST(InstanceBuilder, BuildsCompleteInstance) {
  auto inst = InstanceBuilder("manual")
                  .shape({2, 2})
                  .node_volume(0, 10.0)
                  .node_volume(3, 5.0)
                  .link(0, 1, 64.0)
                  .link(0, 1, 32.0)  // lower value does not overwrite
                  .parent(1)
                  .scheme([](ScheduleSink& sink) {
                    const long long c[2] = {0, 0};
                    sink.compute(c, 100.0);
                  })
                  .build();
  EXPECT_EQ(inst.size(), 4);
  EXPECT_DOUBLE_EQ(inst.node_volume(0), 10.0);
  EXPECT_DOUBLE_EQ(inst.node_volume(1), 0.0);
  EXPECT_DOUBLE_EQ(inst.link_bytes().at({0, 1}), 64.0);
  EXPECT_EQ(inst.parent_index(), 1);
  RecordingSink sink;
  inst.run_scheme(sink);
  EXPECT_EQ(sink.count(Event::kCompute), 1u);
}

TEST(InstanceBuilder, Validation) {
  EXPECT_THROW(InstanceBuilder("x").build(), hmpi::InvalidArgument);
  EXPECT_THROW(InstanceBuilder("x").node_volume(0, 1.0), hmpi::InvalidArgument);
  InstanceBuilder b("x");
  b.shape({2});
  EXPECT_THROW(b.link(0, 0, 8.0), hmpi::InvalidArgument);  // self link
  EXPECT_THROW(b.node_volume(5, 1.0), hmpi::InvalidArgument);
  EXPECT_THROW(b.parent(2), hmpi::InvalidArgument);
}

TEST(Model, SummaryDescribesTheInstance) {
  auto inst = em3d_instance();
  const std::string text = inst.summary();
  EXPECT_NE(text.find("model Em3d"), std::string::npos);
  EXPECT_NE(text.find("shape (3)"), std::string::npos);
  EXPECT_NE(text.find("parent #0"), std::string::npos);
  EXPECT_NE(text.find("scheme present"), std::string::npos);
  EXPECT_NE(text.find("node #1 [1]: 3 units"), std::string::npos);
  EXPECT_NE(text.find("link #1 -> #0: 40 bytes"), std::string::npos);
  EXPECT_NE(text.find("totals: 9 units"), std::string::npos);
}

TEST(Model, FactoryModelsProduceInstances) {
  Model m = Model::from_factory("fact", 1, [](std::span<const ParamValue> ps) {
    const long long p = std::get<long long>(ps[0]);
    InstanceBuilder b("fact");
    b.shape({p});
    for (int i = 0; i < p; ++i) b.node_volume(i, 1.0 + i);
    return b.build();
  });
  EXPECT_EQ(m.param_count(), 1u);
  auto inst = m.instantiate({scalar(3)});
  EXPECT_EQ(inst.size(), 3);
  EXPECT_DOUBLE_EQ(inst.node_volume(2), 3.0);
}

}  // namespace
}  // namespace hmpi::pmdl
